"""Benchmark harness for the parallel batch-synthesis service.

Times one full batch over the Table-I MCNC circuits at 1 and 4 workers
(the acceptance comparison for the throughput layer) and attaches the
unified op-cache hit rates per circuit as extra_info.  A final check
asserts the service's determinism contract: the serialized report must
be byte-identical regardless of worker count.

Run standalone (``python benchmarks/bench_batch.py [--quick]``) to
measure the serving fast paths instead: cold pool spawn-per-batch
versus a reused :class:`~repro.flows.WarmPoolManager` pool, the
content-hash result-cache lookup that answers an identical
resubmission without synthesizing at all, sharded throughput (the same
job set through a :class:`~repro.serve.ShardDispatcher` with 1 vs 3
backends), journal replay startup (restarting a server on a journal
holding >= 50 finished jobs), and the retry-overhead row (the same
fault-free batch with the deadline/retry machinery and an armed but
quiescent fault plan, which must stay byte-identical).  Results land
in ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from repro.bdd import CACHE_POLICIES
from repro.benchgen.registry import benchmark_keys
from repro.flows import BatchConfig, WarmPoolManager, run_batch

try:
    from conftest import run_once
except ImportError:  # standalone: pytest-benchmark plumbing not needed
    run_once = None

#: The paper's MCNC rows — the suite the batch acceptance criterion uses.
MCNC_KEYS = benchmark_keys("mcnc")

#: Serialized reports per worker count, compared by the determinism check.
_REPORTS: dict[int, str] = {}


def _run(workers: int):
    return run_batch(MCNC_KEYS, BatchConfig(flow="bds-maj", workers=workers))


@pytest.mark.parametrize("workers", [1, 4])
def bench_batch_mcnc(benchmark, workers):
    report = run_once(benchmark, _run, workers)
    _REPORTS[workers] = report.to_json()
    summary = report.summary()
    benchmark.extra_info.update(
        workers=workers,
        circuits=summary["circuits"],
        ok=summary["ok"],
        total_nodes=summary["total_nodes"],
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        elapsed_seconds=round(report.elapsed_seconds, 3),
        summed_synthesis_seconds=round(report.total_seconds, 3),
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


@pytest.mark.parametrize("policy", list(CACHE_POLICIES))
def bench_batch_cache_policy(benchmark, policy):
    """Hit-rate comparison row for the eviction policies (fifo / lru /
    2random) under capacity pressure: a deliberately small cache forces
    evictions so the policies actually differ."""
    report = run_once(
        benchmark,
        run_batch,
        ["alu2", "f51m", "vda"],
        BatchConfig(flow="bds-maj", cache_policy=policy, cache_capacity=1 << 10),
    )
    summary = report.summary()
    benchmark.extra_info.update(
        cache_policy=policy,
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        cache_evictions=summary["cache_evictions"],
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


def bench_batch_determinism_check(benchmark):
    """Byte-identical reports for 1 vs 4 workers (runs the missing
    configuration itself if the parametrized runs were filtered out)."""

    def check():
        for workers in (1, 4):
            if workers not in _REPORTS:
                _REPORTS[workers] = _run(workers).to_json()
        return _REPORTS[1] == _REPORTS[4]

    assert run_once(benchmark, check)


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_batch_mcnc = bench_batch_mcnc
test_batch_cache_policy = bench_batch_cache_policy
test_batch_determinism_check = bench_batch_determinism_check


# --------------------------------------------------------------------------
# Standalone warm-serving benchmark (``python benchmarks/bench_batch.py``)
# --------------------------------------------------------------------------

DEFAULT_SERVE_CIRCUITS = ("alu2", "f51m", "vda")


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def bench_warm_serving(
    circuits: list[str], workers: int, repeats: int
) -> dict:
    """Cold-vs-warm pool latency plus the result-cache fast path.

    Every path must stay byte-identical to the first cold run — the
    warm layers are latency optimizations, never different answers.
    """
    config = BatchConfig(flow="bds-maj", workers=workers)

    cold_runs: list[float] = []
    expected = None
    for _ in range(repeats):
        report, seconds = _timed(lambda: run_batch(circuits, config))
        cold_runs.append(seconds)
        expected = expected or report.to_json()
        assert report.to_json() == expected

    manager = WarmPoolManager()
    warm_runs: list[float] = []
    try:
        # First acquisition spawns (cold); the repeats reuse the parked
        # pool, which is the serving steady state being measured.
        report, first_warm = _timed(
            lambda: run_batch(circuits, config, pool=manager)
        )
        assert report.to_json() == expected
        for _ in range(repeats):
            report, seconds = _timed(
                lambda: run_batch(circuits, config, pool=manager)
            )
            warm_runs.append(seconds)
            assert report.to_json() == expected
        pool_stats = manager.stats()
    finally:
        manager.drain()

    # The result-cache fast path: an identical resubmission is answered
    # by key computation + LRU lookup, no synthesis at all.
    from repro.api import InputItem
    from repro.serve import ResultCache, submission_key

    items = [InputItem(name=name) for name in circuits]
    cache = ResultCache()
    cache.put(submission_key(items, config), report)
    cached, lookup_seconds = _timed(
        lambda: cache.get(submission_key(items, config))
    )
    assert cached is not None and cached.to_json() == expected

    cold_mean = statistics.mean(cold_runs)
    warm_mean = statistics.mean(warm_runs)
    return {
        "circuits": list(circuits),
        "workers": workers,
        "repeats": repeats,
        "cold_pool_seconds": [round(s, 4) for s in cold_runs],
        "warm_first_seconds": round(first_warm, 4),
        "warm_pool_seconds": [round(s, 4) for s in warm_runs],
        "cold_pool_mean_seconds": round(cold_mean, 4),
        "warm_pool_mean_seconds": round(warm_mean, 4),
        "warm_speedup": round(cold_mean / warm_mean, 3),
        "cache_hit_seconds": round(lookup_seconds, 6),
        "cache_hit_speedup": round(cold_mean / lookup_seconds, 1),
        "pool_stats": pool_stats,
        "byte_identical": True,
    }


def bench_shared_store(
    circuits: list[str], workers: int, repeats: int
) -> dict:
    """The shared-vs-private build row: materializing the arena-hot
    cones in a worker, private copy-on-miss rebuild versus the writable
    shared unique table.

    The PR 6 arena is read-only: every worker copies the hot cones out
    of the snapshot into its *own* private manager, so a pool duplicates
    the same construction ``workers`` times (O(workers x nodes)).  With
    a :class:`~repro.bdd.SharedNodeStore` the first build lands the
    cones in shared memory once; a parked worker's subsequent
    materializations are find-or-create hits against its warm view — no
    allocations, no refcounting, same canonical edges.  Rows:

    * ``private_rebuild`` — fresh private manager per materialization
      (what every worker pays today, every time).
    * ``shared_first_build`` — the one-time construction that populates
      the store.
    * ``shared_attach`` — a brand-new worker's first materialization
      through a cold view (shared-memory probes; reported, not gated).
    * ``shared_hot`` — the parked-worker steady state the serve layer
      runs in.  CI asserts ``shared_hot <= private_rebuild``.
    """
    from repro.bdd import BDD, BddArena, SharedNodeStore
    from repro.benchgen import build_benchmark
    from repro.network import global_bdds

    manager = BDD([])
    roots: dict[str, int] = {}
    for name in circuits:
        network = build_benchmark(name)
        manager, edges = global_bdds(network, mgr=manager, max_nodes=500_000)
        for output, edge in edges.items():
            roots[f"{name}/{output}"] = edge
    arena = BddArena.publish(manager, roots)
    names = manager.var_names
    store = SharedNodeStore.create(names)

    def materialize(target: BDD) -> dict[str, int]:
        binding = arena.binding(target)
        return {key: binding.copy(key) for key in arena.roots}

    runs = max(repeats, 2) * max(workers, 1)
    try:
        reference, first_build = _timed(
            lambda: materialize(BDD(names, store=store))
        )

        private_runs: list[float] = []
        for _ in range(runs):
            edges, seconds = _timed(lambda: materialize(BDD(names)))
            private_runs.append(seconds)
            assert set(edges) == set(reference)

        def cold_attach() -> dict[str, int]:
            view = SharedNodeStore.attach(store.handle())
            try:
                return materialize(BDD(names, store=view))
            finally:
                view.close()

        attach_runs: list[float] = []
        for _ in range(runs):
            edges, seconds = _timed(cold_attach)
            attach_runs.append(seconds)
            assert edges == reference  # global canonicity, cold view

        shared_runs: list[float] = []
        for _ in range(runs):
            edges, seconds = _timed(
                lambda: materialize(BDD(names, store=store))
            )
            shared_runs.append(seconds)
            assert edges == reference  # same edge integers every time
        counters = store.counters()
    finally:
        arena.unlink()
        store.unlink()

    private_mean = statistics.mean(private_runs)
    shared_mean = statistics.mean(shared_runs)
    return {
        "circuits": list(circuits),
        "workers": workers,
        "materializations": runs,
        "arena_nodes": counters["nodes"],
        "private_rebuild_seconds": [round(s, 5) for s in private_runs],
        "shared_first_build_seconds": round(first_build, 5),
        "shared_attach_mean_seconds": round(statistics.mean(attach_runs), 5),
        "shared_hot_seconds": [round(s, 5) for s in shared_runs],
        "private_mean_seconds": round(private_mean, 5),
        "shared_mean_seconds": round(shared_mean, 5),
        "shared_speedup": round(private_mean / shared_mean, 3),
        "duplicated_construction_avoided_seconds": round(
            max(workers, 1) * private_mean - shared_mean * max(workers, 1), 5
        ),
        "store": {
            key: counters[key]
            for key in ("nodes", "capacity", "hits", "misses", "contention")
        },
        "canonical_edges_identical": True,
    }


def bench_retry_overhead(
    circuits: list[str], workers: int, repeats: int
) -> dict:
    """Cost of the fault-tolerant dispatch path on a fault-free batch.

    The guarded run arms everything robustness adds — a per-circuit
    deadline (generous enough never to fire), the retry budget, and an
    installed fault plan whose rules never match — against the plain
    configuration.  The contract: same bytes, negligible overhead.
    """
    from repro.faults import FaultPlan, install_plan

    plain = BatchConfig(flow="bds-maj", workers=workers)
    guarded = BatchConfig(
        flow="bds-maj", workers=workers, circuit_timeout=600.0, max_retries=2
    )
    quiescent = FaultPlan.from_json(
        json.dumps(
            {
                "seed": 7,
                "faults": [
                    {
                        "site": "batch.worker",
                        "action": "kill",
                        "match": "bench-no-such-circuit:",
                    }
                ],
            }
        )
    )

    plain_runs: list[float] = []
    expected = None
    for _ in range(repeats):
        report, seconds = _timed(lambda: run_batch(circuits, plain))
        plain_runs.append(seconds)
        expected = expected or report.to_json()
        assert report.to_json() == expected

    guarded_runs: list[float] = []
    try:
        for _ in range(repeats):
            install_plan(quiescent)
            report, seconds = _timed(lambda: run_batch(circuits, guarded))
            guarded_runs.append(seconds)
            assert report.to_json() == expected
    finally:
        install_plan(None)

    plain_mean = statistics.mean(plain_runs)
    guarded_mean = statistics.mean(guarded_runs)
    return {
        "circuits": list(circuits),
        "workers": workers,
        "repeats": repeats,
        "plain_seconds": [round(s, 4) for s in plain_runs],
        "guarded_seconds": [round(s, 4) for s in guarded_runs],
        "plain_mean_seconds": round(plain_mean, 4),
        "guarded_mean_seconds": round(guarded_mean, 4),
        "overhead_percent": round((guarded_mean / plain_mean - 1.0) * 100, 2),
        "byte_identical": True,
    }


async def _http_json(
    host: str, port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict]:
    """One ``Connection: close`` request on the bench's own tiny client
    (blocking clients would stall the dispatcher's event loop)."""
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Connection: close\r\nContent-Length: {len(payload)}\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split(None, 2)[1])
        while (await reader.readline()) not in (b"\r\n", b"\n", b""):
            pass
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, json.loads(raw)


async def _poll_done(host: str, port: int, job_id: str) -> dict:
    while True:
        _status, payload = await _http_json(host, port, "GET", f"/jobs/{job_id}")
        if payload["status"] in ("done", "error", "cancelled"):
            return payload
        await asyncio.sleep(0.05)


def bench_sharded_throughput(
    circuits: list[str], variants: int = 3
) -> dict:
    """Wall-clock for the same job set through the shard dispatcher at
    1 backend vs 3 — same jobs, same consistent-hash routing, more
    hardware.  Each circuit is submitted at ``variants`` distinct cache
    capacities (a report-affecting knob), so every submission is a
    distinct cache key spreading over the ring; a uniform mix of
    fast circuits keeps the wall-clock parallelizable instead of
    dominated by one heavyweight.  The speedup is still bounded by how
    evenly the hashes land (reported as ``routed``)."""
    from repro.serve import ShardDispatcher

    submissions = [
        {"circuits": [key], "cache_capacity": 2000 + variant}
        for variant in range(variants)
        for key in circuits
    ]

    async def one(backends: int) -> dict:
        dispatcher = ShardDispatcher(
            backends=backends, port=0, backend_concurrency=1
        )
        host, port = await dispatcher.start()
        try:
            started = time.perf_counter()
            ids = []
            for body in submissions:
                status, payload = await _http_json(
                    host, port, "POST", "/jobs", body
                )
                assert status == 202, payload
                ids.append(payload["id"])
            for job_id in ids:
                final = await _poll_done(host, port, job_id)
                assert final["status"] == "done", final
            elapsed = time.perf_counter() - started
            _status, metrics = await _http_json(host, port, "GET", "/metrics")
            routed = [shard["routed"] for shard in metrics["shards"]]
        finally:
            await dispatcher.shutdown()
        return {"backends": backends, "seconds": round(elapsed, 4), "routed": routed}

    rows = [asyncio.run(one(backends)) for backends in (1, 3)]
    import os

    return {
        "circuits": list(circuits),
        "jobs": len(submissions),
        # The speedup ceiling: backends are processes, so they only run
        # concurrently when the machine has cores for them.
        "cpus": os.cpu_count(),
        "runs": rows,
        "speedup_3_backends": round(rows[0]["seconds"] / rows[1]["seconds"], 3),
    }


def bench_replay_startup(jobs: int = 50) -> dict:
    """Startup cost of replaying a journal holding ``jobs`` finished
    jobs (distinct cache keys, so every one rehydrates its own result-
    cache entry), spot-checking the byte-identity contract."""
    from repro.api import InputItem
    from repro.serve import JobRequest, JobStore, SynthesisService, submission_key
    from repro.serve.journal import JobJournal

    report = run_batch(["alu2"], BatchConfig(flow="bds-maj"))
    expected = report.to_json()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "jobs.journal"
        journal = JobJournal(path, fsync=False)
        journal.open()
        store = JobStore(journal=journal)
        items = [InputItem(name="alu2")]
        for index in range(jobs):
            # Distinct cache keys without distinct synthesis runs: the
            # cache capacity is a report-affecting (hence key-affecting)
            # knob, so each job rehydrates its own entry on replay.
            request = JobRequest(circuits=("alu2",), cache_capacity=2000 + index)
            job = store.create(request, items)
            job.cache_key = submission_key(items, request.batch_config())
            job.finish(report)
        journal.close()
        journal_bytes = path.stat().st_size

        async def restart() -> tuple[float, int, int, bool]:
            service = SynthesisService(port=0, journal_path=path)
            started = time.perf_counter()
            await service.start()
            seconds = time.perf_counter() - started
            replayed = len(service.last_replay.jobs)
            entries = service.result_cache.stats()["entries"]
            identical = (
                service.store.get("job-000001").report.to_json() == expected
            )
            await service.shutdown()
            return seconds, replayed, entries, identical

        seconds, replayed, entries, identical = asyncio.run(restart())
    assert replayed == jobs and identical
    return {
        "jobs": jobs,
        "journal_bytes": journal_bytes,
        "replay_seconds": round(seconds, 4),
        "jobs_per_second": round(jobs / seconds, 1),
        "rehydrated_cache_entries": entries,
        "byte_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        default=",".join(DEFAULT_SERVE_CIRCUITS),
        help="comma-separated registry keys (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="pool size for every run (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per path (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: default circuits, 2 repeats",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    circuits = [key for key in args.circuits.split(",") if key]
    repeats = 2 if args.quick else args.repeats
    # Fast, similarly-sized circuits: the sharding win is parallelism
    # over many uniform jobs, not one heavyweight that serializes.
    shard_circuits = ["alu2", "f51m", "vda", "misex3"]
    shard_variants = 2 if args.quick else 3

    entry = bench_warm_serving(circuits, args.workers, repeats)
    print(
        f"cold pool {entry['cold_pool_mean_seconds'] * 1000:8.1f}ms  "
        f"warm pool {entry['warm_pool_mean_seconds'] * 1000:8.1f}ms  "
        f"speedup {entry['warm_speedup']}x  "
        f"cache hit {entry['cache_hit_seconds'] * 1000:.2f}ms"
    )
    sharded = bench_sharded_throughput(shard_circuits, variants=shard_variants)
    print(
        f"sharded   {sharded['runs'][0]['seconds']:8.2f}s @ 1 backend  "
        f"{sharded['runs'][1]['seconds']:8.2f}s @ 3 backends  "
        f"speedup {sharded['speedup_3_backends']}x"
    )
    replay = bench_replay_startup()
    print(
        f"replay    {replay['jobs']} jobs in {replay['replay_seconds'] * 1000:.1f}ms "
        f"({replay['jobs_per_second']} jobs/s, "
        f"{replay['rehydrated_cache_entries']} cache entries rehydrated)"
    )
    retry = bench_retry_overhead(circuits, args.workers, repeats)
    print(
        f"retries   plain {retry['plain_mean_seconds'] * 1000:8.1f}ms  "
        f"guarded {retry['guarded_mean_seconds'] * 1000:8.1f}ms  "
        f"overhead {retry['overhead_percent']}%"
    )
    shared = bench_shared_store(circuits, args.workers, repeats)
    print(
        f"store     private {shared['private_mean_seconds'] * 1000:8.1f}ms  "
        f"shared {shared['shared_mean_seconds'] * 1000:8.1f}ms  "
        f"speedup {shared['shared_speedup']}x  "
        f"({shared['store']['nodes']} shared nodes, "
        f"{shared['store']['hits']} hits)"
    )

    results = {
        "warm_serving": entry,
        "sharded_throughput": sharded,
        "replay_startup": replay,
        "retry_overhead": retry,
        "shared_store": shared,
    }
    with open(args.output, "w") as sink:
        json.dump(results, sink, indent=2, sort_keys=True)
        sink.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
