"""Benchmark harness for the parallel batch-synthesis service.

Times one full batch over the Table-I MCNC circuits at 1 and 4 workers
(the acceptance comparison for the throughput layer) and attaches the
unified op-cache hit rates per circuit as extra_info.  A final check
asserts the service's determinism contract: the serialized report must
be byte-identical regardless of worker count.
"""

from __future__ import annotations

import pytest

from repro.bdd import CACHE_POLICIES
from repro.benchgen.registry import benchmark_keys
from repro.flows import BatchConfig, run_batch

from conftest import run_once

#: The paper's MCNC rows — the suite the batch acceptance criterion uses.
MCNC_KEYS = benchmark_keys("mcnc")

#: Serialized reports per worker count, compared by the determinism check.
_REPORTS: dict[int, str] = {}


def _run(workers: int):
    return run_batch(MCNC_KEYS, BatchConfig(flow="bds-maj", workers=workers))


@pytest.mark.parametrize("workers", [1, 4])
def bench_batch_mcnc(benchmark, workers):
    report = run_once(benchmark, _run, workers)
    _REPORTS[workers] = report.to_json()
    summary = report.summary()
    benchmark.extra_info.update(
        workers=workers,
        circuits=summary["circuits"],
        ok=summary["ok"],
        total_nodes=summary["total_nodes"],
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        elapsed_seconds=round(report.elapsed_seconds, 3),
        summed_synthesis_seconds=round(report.total_seconds, 3),
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


@pytest.mark.parametrize("policy", list(CACHE_POLICIES))
def bench_batch_cache_policy(benchmark, policy):
    """Hit-rate comparison row for the eviction policies (fifo / lru /
    2random) under capacity pressure: a deliberately small cache forces
    evictions so the policies actually differ."""
    report = run_once(
        benchmark,
        run_batch,
        ["alu2", "f51m", "vda"],
        BatchConfig(flow="bds-maj", cache_policy=policy, cache_capacity=1 << 10),
    )
    summary = report.summary()
    benchmark.extra_info.update(
        cache_policy=policy,
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        cache_evictions=summary["cache_evictions"],
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


def bench_batch_determinism_check(benchmark):
    """Byte-identical reports for 1 vs 4 workers (runs the missing
    configuration itself if the parametrized runs were filtered out)."""

    def check():
        for workers in (1, 4):
            if workers not in _REPORTS:
                _REPORTS[workers] = _run(workers).to_json()
        return _REPORTS[1] == _REPORTS[4]

    assert run_once(benchmark, check)


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_batch_mcnc = bench_batch_mcnc
test_batch_cache_policy = bench_batch_cache_policy
test_batch_determinism_check = bench_batch_determinism_check
