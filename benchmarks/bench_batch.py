"""Benchmark harness for the parallel batch-synthesis service.

Times one full batch over the Table-I MCNC circuits at 1 and 4 workers
(the acceptance comparison for the throughput layer) and attaches the
unified op-cache hit rates per circuit as extra_info.  A final check
asserts the service's determinism contract: the serialized report must
be byte-identical regardless of worker count.

Run standalone (``python benchmarks/bench_batch.py [--quick]``) to
measure the warm-serving fast paths instead: cold pool spawn-per-batch
versus a reused :class:`~repro.flows.WarmPoolManager` pool, plus the
content-hash result-cache lookup that answers an identical
resubmission without synthesizing at all.  Results land in
``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import pytest

from repro.bdd import CACHE_POLICIES
from repro.benchgen.registry import benchmark_keys
from repro.flows import BatchConfig, WarmPoolManager, run_batch

try:
    from conftest import run_once
except ImportError:  # standalone: pytest-benchmark plumbing not needed
    run_once = None

#: The paper's MCNC rows — the suite the batch acceptance criterion uses.
MCNC_KEYS = benchmark_keys("mcnc")

#: Serialized reports per worker count, compared by the determinism check.
_REPORTS: dict[int, str] = {}


def _run(workers: int):
    return run_batch(MCNC_KEYS, BatchConfig(flow="bds-maj", workers=workers))


@pytest.mark.parametrize("workers", [1, 4])
def bench_batch_mcnc(benchmark, workers):
    report = run_once(benchmark, _run, workers)
    _REPORTS[workers] = report.to_json()
    summary = report.summary()
    benchmark.extra_info.update(
        workers=workers,
        circuits=summary["circuits"],
        ok=summary["ok"],
        total_nodes=summary["total_nodes"],
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        elapsed_seconds=round(report.elapsed_seconds, 3),
        summed_synthesis_seconds=round(report.total_seconds, 3),
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


@pytest.mark.parametrize("policy", list(CACHE_POLICIES))
def bench_batch_cache_policy(benchmark, policy):
    """Hit-rate comparison row for the eviction policies (fifo / lru /
    2random) under capacity pressure: a deliberately small cache forces
    evictions so the policies actually differ."""
    report = run_once(
        benchmark,
        run_batch,
        ["alu2", "f51m", "vda"],
        BatchConfig(flow="bds-maj", cache_policy=policy, cache_capacity=1 << 10),
    )
    summary = report.summary()
    benchmark.extra_info.update(
        cache_policy=policy,
        cache_hit_rate=round(summary["cache_hit_rate"], 4),
        cache_evictions=summary["cache_evictions"],
        per_circuit_hit_rates={
            c.benchmark: round(float(c.cache["hit_rate"]), 4)
            for c in report.ok_circuits
        },
    )
    assert summary["failed"] == 0


def bench_batch_determinism_check(benchmark):
    """Byte-identical reports for 1 vs 4 workers (runs the missing
    configuration itself if the parametrized runs were filtered out)."""

    def check():
        for workers in (1, 4):
            if workers not in _REPORTS:
                _REPORTS[workers] = _run(workers).to_json()
        return _REPORTS[1] == _REPORTS[4]

    assert run_once(benchmark, check)


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_batch_mcnc = bench_batch_mcnc
test_batch_cache_policy = bench_batch_cache_policy
test_batch_determinism_check = bench_batch_determinism_check


# --------------------------------------------------------------------------
# Standalone warm-serving benchmark (``python benchmarks/bench_batch.py``)
# --------------------------------------------------------------------------

DEFAULT_SERVE_CIRCUITS = ("alu2", "f51m", "vda")


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def bench_warm_serving(
    circuits: list[str], workers: int, repeats: int
) -> dict:
    """Cold-vs-warm pool latency plus the result-cache fast path.

    Every path must stay byte-identical to the first cold run — the
    warm layers are latency optimizations, never different answers.
    """
    config = BatchConfig(flow="bds-maj", workers=workers)

    cold_runs: list[float] = []
    expected = None
    for _ in range(repeats):
        report, seconds = _timed(lambda: run_batch(circuits, config))
        cold_runs.append(seconds)
        expected = expected or report.to_json()
        assert report.to_json() == expected

    manager = WarmPoolManager()
    warm_runs: list[float] = []
    try:
        # First acquisition spawns (cold); the repeats reuse the parked
        # pool, which is the serving steady state being measured.
        report, first_warm = _timed(
            lambda: run_batch(circuits, config, pool=manager)
        )
        assert report.to_json() == expected
        for _ in range(repeats):
            report, seconds = _timed(
                lambda: run_batch(circuits, config, pool=manager)
            )
            warm_runs.append(seconds)
            assert report.to_json() == expected
        pool_stats = manager.stats()
    finally:
        manager.drain()

    # The result-cache fast path: an identical resubmission is answered
    # by key computation + LRU lookup, no synthesis at all.
    from repro.api import InputItem
    from repro.serve import ResultCache, submission_key

    items = [InputItem(name=name) for name in circuits]
    cache = ResultCache()
    cache.put(submission_key(items, config), report)
    cached, lookup_seconds = _timed(
        lambda: cache.get(submission_key(items, config))
    )
    assert cached is not None and cached.to_json() == expected

    cold_mean = statistics.mean(cold_runs)
    warm_mean = statistics.mean(warm_runs)
    return {
        "circuits": list(circuits),
        "workers": workers,
        "repeats": repeats,
        "cold_pool_seconds": [round(s, 4) for s in cold_runs],
        "warm_first_seconds": round(first_warm, 4),
        "warm_pool_seconds": [round(s, 4) for s in warm_runs],
        "cold_pool_mean_seconds": round(cold_mean, 4),
        "warm_pool_mean_seconds": round(warm_mean, 4),
        "warm_speedup": round(cold_mean / warm_mean, 3),
        "cache_hit_seconds": round(lookup_seconds, 6),
        "cache_hit_speedup": round(cold_mean / lookup_seconds, 1),
        "pool_stats": pool_stats,
        "byte_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        default=",".join(DEFAULT_SERVE_CIRCUITS),
        help="comma-separated registry keys (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="pool size for every run (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per path (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: default circuits, 2 repeats",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    circuits = [key for key in args.circuits.split(",") if key]
    repeats = 2 if args.quick else args.repeats

    entry = bench_warm_serving(circuits, args.workers, repeats)
    print(
        f"cold pool {entry['cold_pool_mean_seconds'] * 1000:8.1f}ms  "
        f"warm pool {entry['warm_pool_mean_seconds'] * 1000:8.1f}ms  "
        f"speedup {entry['warm_speedup']}x  "
        f"cache hit {entry['cache_hit_seconds'] * 1000:.2f}ms"
    )

    with open(args.output, "w") as sink:
        json.dump(entry, sink, indent=2, sort_keys=True)
        sink.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
