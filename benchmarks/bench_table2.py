"""Benchmark harness regenerating Table II (mapped area / gates / delay).

One timed run per (benchmark, flow); the Table II metrics land in
extra_info.  The aggregate test asserts the paper's headline ordering:
BDS-MAJ produces the smallest average area, beating BDS-PGA and ABC
clearly and the DC-like flow narrowly.

Set ``BENCH_TABLE2_FULL=0`` to restrict the sweep to a representative
subset (cuts wall-clock roughly in half for iterative runs).
"""

from __future__ import annotations

import os

import pytest

from repro.benchgen import BENCHMARKS, build_benchmark
from repro.experiments.table2 import FLOW_ORDER, _flow_config
from repro.flows import FLOWS

from conftest import run_once

FULL = os.environ.get("BENCH_TABLE2_FULL", "1") != "0"
SUBSET = [
    "alu2",
    "c1355",
    "f51m",
    "vda",
    "bigkey",
    "wallace16",
    "cla64",
    "mac16",
    "add4x16",
]
KEYS = list(BENCHMARKS) if FULL else SUBSET

_RESULTS: dict[tuple[str, str], tuple[float, int, float]] = {}


def _synthesize(network, flow_name: str):
    flow = FLOWS[flow_name]
    config = _flow_config(flow_name, quick=False, verify=False)
    return flow(network, config)


@pytest.mark.parametrize("key", KEYS)
@pytest.mark.parametrize("flow_name", FLOW_ORDER)
def test_table2_synthesis(benchmark, key, flow_name):
    network = build_benchmark(key)
    result = run_once(benchmark, _synthesize, network, flow_name)
    row = result.table2_row()
    _RESULTS[(key, flow_name)] = row
    area, gates, delay = row
    benchmark.extra_info.update(
        benchmark_name=BENCHMARKS[key].display,
        flow=flow_name,
        area_um2=area,
        gate_count=gates,
        delay_ns=delay,
        maj_cells=result.mapped.cell_histogram().get("maj3", 0),
    )
    assert gates > 0
    if flow_name != "bds-maj":
        assert result.mapped.cell_histogram().get("maj3", 0) == 0


def test_table2_headline_claims(benchmark):
    def aggregate():
        for key in KEYS:
            for flow_name in FLOW_ORDER:
                if (key, flow_name) not in _RESULTS:
                    network = build_benchmark(key)
                    _RESULTS[(key, flow_name)] = _synthesize(
                        network, flow_name
                    ).table2_row()
        means = {}
        for flow_name in FLOW_ORDER:
            rows = [_RESULTS[(key, flow_name)] for key in KEYS]
            means[flow_name] = (
                sum(r[0] for r in rows) / len(rows),
                sum(r[2] for r in rows) / len(rows),
            )
        return means

    means = run_once(benchmark, aggregate)
    area = {flow: mean[0] for flow, mean in means.items()}
    delay = {flow: mean[1] for flow, mean in means.items()}
    benchmark.extra_info.update(
        mean_area={k: round(v, 2) for k, v in area.items()},
        mean_delay={k: round(v, 3) for k, v in delay.items()},
        area_vs_abc_pct=round((1 - area["bds-maj"] / area["abc"]) * 100, 1),
        area_vs_bds_pct=round((1 - area["bds-maj"] / area["bds-pga"]) * 100, 1),
        area_vs_dc_pct=round((1 - area["bds-maj"] / area["dc"]) * 100, 1),
        paper="area: -28.8% vs ABC, -26.4% vs BDS, -6.0% vs DC",
    )
    # Paper shape: BDS-MAJ has the smallest average area of all flows
    # and beats its own majority-free variant on delay as well.
    assert area["bds-maj"] == min(area.values())
    assert area["bds-maj"] < area["bds-pga"]
    assert area["bds-maj"] < area["abc"]
    assert delay["bds-maj"] <= delay["bds-pga"] * 1.05
