"""Ablation benches for the design choices DESIGN.md calls out.

The paper fixes several heuristic constants "by extensive simulations":
global sizing factor k = 1.6, local k = 1.5, 5 balancing iterations,
plus the implicit choices of m-dominator candidate cap and the
MAJ-aware cell library.  Each bench sweeps one knob on a MAJ-rich
benchmark and records the quality impact.
"""

from __future__ import annotations

import pytest

from repro.benchgen import multiply_accumulate
from repro.core import EngineConfig, MajorityConfig, MDominatorConfig
from repro.flows import BdsFlowConfig, bds_optimize, bdsmaj_flow
from repro.mapping import nand_only_library

from conftest import run_once


def mac_network():
    return multiply_accumulate(6, name="mac6")


def total_nodes(network, engine_config: EngineConfig) -> dict[str, int]:
    config = BdsFlowConfig(engine=engine_config)
    _, counts, _ = bds_optimize(network, config)
    return counts


@pytest.mark.parametrize("global_k", [1.0, 1.3, 1.6, 2.0, 3.0])
def test_ablation_global_sizing_factor(benchmark, global_k):
    """Paper: global k = 1.6.  Too small accepts useless radix-3 splits,
    too large rejects profitable ones."""
    network = mac_network()
    engine = EngineConfig(global_k=global_k)
    counts = run_once(benchmark, total_nodes, network, engine)
    benchmark.extra_info.update(
        global_k=global_k, total=sum(counts.values()), maj=counts["maj"]
    )
    assert sum(counts.values()) > 0


@pytest.mark.parametrize("iterations", [0, 1, 5, 10])
def test_ablation_balance_iterations(benchmark, iterations):
    """Paper: 5 cyclic balancing iterations (Section IV.B)."""
    network = mac_network()
    engine = EngineConfig(
        majority=MajorityConfig(max_balance_iterations=iterations)
    )
    counts = run_once(benchmark, total_nodes, network, engine)
    benchmark.extra_info.update(
        iterations=iterations, total=sum(counts.values()), maj=counts["maj"]
    )


@pytest.mark.parametrize("max_candidates", [1, 3, 5, 10])
def test_ablation_mdominator_cap(benchmark, max_candidates):
    """Section III.F: tighter candidate selection trades quality for
    runtime; the default cap keeps the search near-linear."""
    network = mac_network()
    engine = EngineConfig(
        majority=MajorityConfig(mdominator=MDominatorConfig(max_candidates=max_candidates))
    )
    counts = run_once(benchmark, total_nodes, network, engine)
    benchmark.extra_info.update(
        max_candidates=max_candidates, total=sum(counts.values()), maj=counts["maj"]
    )


def test_ablation_balancing_off_vs_on(benchmark):
    """The gamma-phase must never hurt: with balancing disabled the
    decomposed network is at least as large."""

    def run():
        network = mac_network()
        off = total_nodes(
            network, EngineConfig(majority=MajorityConfig(max_balance_iterations=0))
        )
        on = total_nodes(network, EngineConfig())
        return off, on

    off, on = run_once(benchmark, run)
    benchmark.extra_info.update(total_off=sum(off.values()), total_on=sum(on.values()))
    assert sum(on.values()) <= sum(off.values())


def test_ablation_nand_only_library(benchmark):
    """Direct assignment needs the MAJ/XOR cells: mapping the BDS-MAJ
    result onto a NAND/NOR/INV-only library forfeits the area edge."""

    def run():
        network = mac_network()
        full = bdsmaj_flow(network)
        slim_config = BdsFlowConfig(library=nand_only_library())
        slim = bdsmaj_flow(network, slim_config)
        return full, slim

    full, slim = run_once(benchmark, run)
    benchmark.extra_info.update(
        area_full_library=round(full.timing.area, 2),
        area_nand_only=round(slim.timing.area, 2),
        maj_cells_full=full.mapped.cell_histogram().get("maj3", 0),
    )
    assert slim.mapped.cell_histogram().get("maj3", 0) == 0
    assert full.timing.area < slim.timing.area
