"""Benchmark: the in-place sifting engine and its dynamic-reordering
extensions vs the rebuild-based baseline.

For each benchmark circuit this harness partitions the network exactly
like the BDS flows do, picks the largest supernode BDDs, and reorders
each one four ways from the same starting order:

* ``rebuild`` — :func:`repro.bdd.reorder.sift_rebuild`, the historical
  transfer-based sifter (one full reconstruction per candidate
  position);
* ``inplace`` — :meth:`repro.bdd.BDD.sift`, the in-place engine
  (adjacent level swaps over per-level subtables);
* ``converge`` — :meth:`repro.bdd.BDD.sift_converge`, passes repeated
  to a fixpoint (asserted: final sizes ≤ the single in-place pass on
  every supernode — each pass only ever backtracks to the best seen);
* ``groups`` — :meth:`repro.bdd.BDD.sift_groups`, symmetric variables
  detected by cofactor equality and sifted as contiguous blocks.

The rebuild/in-place searches use the same visit order and tie-breaks,
so those final sizes must agree (asserted: in-place ≤ rebuild).  The
report also carries a ``dynamic_rescue`` section: a separated-order
comparator whose static construction raises ``BddSizeExceeded`` under
the node budget but completes under ``reorder="dynamic"``
(growth-triggered sifting during construction) — the evidence row for
the batch layer's dynamic policy.  Results are written to
``BENCH_reorder.json``.

Run directly (no pytest needed — CI's perf-smoke job does)::

    python benchmarks/bench_reorder.py --quick --output BENCH_reorder.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bdd.reorder import reorder, sift_rebuild
from repro.flows.bds import BdsFlowConfig
from repro.network import LogicNetwork, partition_with_bdds
from repro.network.bdds import BddSizeExceeded, supernode_bdd

#: The acceptance circuits (the paper rows the ≥5× criterion names).
DEFAULT_CIRCUITS = ("alu2", "f51m", "vda")

#: Dynamic-rescue scenario: comparator pairs and the node budget the
#: separated construction order blows through.
RESCUE_PAIRS = 8
RESCUE_BUDGET = 60


def bench_circuit(key: str, top: int) -> dict:
    """Reorder the ``top`` largest supernodes of ``key`` four ways."""
    from repro.benchgen import build_benchmark

    partitions = partition_with_bdds(
        build_benchmark(key), BdsFlowConfig().partition
    )
    partitions.sort(key=lambda entry: -entry[1].size(entry[2]))
    supernodes = []
    rebuild_seconds = inplace_seconds = 0.0
    converge_seconds = groups_seconds = 0.0
    for supernode, mgr, root in partitions[:top]:
        size_before = mgr.size(root)
        num_vars = mgr.num_vars

        # Clone the starting order before the in-place pass mutates it,
        # so converge and group sifting search from the same start.
        converge_mgr, (converge_root,) = reorder(mgr, [root], list(mgr.var_names))
        groups_mgr, (groups_root,) = reorder(mgr, [root], list(mgr.var_names))

        start = time.perf_counter()
        rebuilt_mgr, (rebuilt_root,) = sift_rebuild(mgr, [root])
        rebuild_elapsed = time.perf_counter() - start
        rebuild_size = rebuilt_mgr.size(rebuilt_root)

        start = time.perf_counter()
        result = mgr.sift([root])
        inplace_elapsed = time.perf_counter() - start
        inplace_size = mgr.size(root)

        start = time.perf_counter()
        converge_result = converge_mgr.sift_converge([converge_root])
        converge_elapsed = time.perf_counter() - start
        converge_size = converge_mgr.size(converge_root)

        start = time.perf_counter()
        symmetry = groups_mgr.symmetry_groups(groups_root)
        groups_result = groups_mgr.sift_groups([groups_root], groups=symmetry)
        groups_elapsed = time.perf_counter() - start
        groups_size = groups_mgr.size(groups_root)

        if inplace_size > rebuild_size:
            raise AssertionError(
                f"{key}/{supernode.output}: in-place sift ended at "
                f"{inplace_size} nodes, rebuild baseline at {rebuild_size}"
            )
        if converge_size > inplace_size:
            raise AssertionError(
                f"{key}/{supernode.output}: converge sift ended at "
                f"{converge_size} nodes, single pass at {inplace_size}"
            )
        rebuild_seconds += rebuild_elapsed
        inplace_seconds += inplace_elapsed
        converge_seconds += converge_elapsed
        groups_seconds += groups_elapsed
        supernodes.append(
            {
                "output": supernode.output,
                "vars": num_vars,
                "size_before": size_before,
                "rebuild": {
                    "seconds": round(rebuild_elapsed, 6),
                    "size": rebuild_size,
                },
                "inplace": {
                    "seconds": round(inplace_elapsed, 6),
                    "size": inplace_size,
                    "swaps": result.swaps,
                    "changed": result.changed,
                },
                "converge": {
                    "seconds": round(converge_elapsed, 6),
                    "size": converge_size,
                    "swaps": converge_result.swaps,
                    "passes": converge_result.passes,
                },
                "groups": {
                    "seconds": round(groups_elapsed, 6),
                    "size": groups_size,
                    "swaps": groups_result.swaps,
                    "symmetric_groups": sum(
                        1 for group in symmetry if len(group) > 1
                    ),
                },
            }
        )
    return {
        "circuit": key,
        "supernodes": supernodes,
        "rebuild_seconds": round(rebuild_seconds, 6),
        "inplace_seconds": round(inplace_seconds, 6),
        "converge_seconds": round(converge_seconds, 6),
        "groups_seconds": round(groups_seconds, 6),
        "speedup": round(rebuild_seconds / inplace_seconds, 2)
        if inplace_seconds
        else None,
        "nodes_before": sum(s["size_before"] for s in supernodes),
        "nodes_rebuild": sum(s["rebuild"]["size"] for s in supernodes),
        "nodes_inplace": sum(s["inplace"]["size"] for s in supernodes),
        "nodes_converge": sum(s["converge"]["size"] for s in supernodes),
        "nodes_groups": sum(s["groups"]["size"] for s in supernodes),
    }


def separated_comparator(pairs: int) -> LogicNetwork:
    """``y = OR_i (a_i & b_i)`` with the pathological separated fanin
    order baked in (exponential BDD under the construction order,
    linear once interleaved)."""
    net = LogicNetwork("sepcmp")
    names = [f"a{i}" for i in range(pairs)] + [f"b{i}" for i in range(pairs)]
    for name in names:
        net.add_input(name)
    rows = []
    for i in range(pairs):
        row = ["-"] * (2 * pairs)
        row[i] = "1"
        row[pairs + i] = "1"
        rows.append("".join(row))
    net.add_node("y", names, rows)
    net.add_output("y")
    return net


def bench_dynamic_rescue(pairs: int = RESCUE_PAIRS, budget: int = RESCUE_BUDGET) -> dict:
    """The ``reorder="dynamic"`` evidence row: a build that raises
    ``BddSizeExceeded`` statically but completes with growth-triggered
    sifting armed."""
    net = separated_comparator(pairs)
    static_outcome = "completed"
    try:
        supernode_bdd(net, "y", {"y"}, list(net.inputs), max_nodes=budget)
    except BddSizeExceeded:
        static_outcome = "BddSizeExceeded"
    if static_outcome != "BddSizeExceeded":
        raise AssertionError(
            f"separated comparator ({pairs} pairs) no longer exceeds the "
            f"{budget}-node budget statically — pick a tighter scenario"
        )
    start = time.perf_counter()
    mgr, root = supernode_bdd(
        net, "y", {"y"}, list(net.inputs), max_nodes=budget, dynamic_reorder=True
    )
    elapsed = time.perf_counter() - start
    mgr.gc([root])
    return {
        "circuit": f"separated-comparator-{pairs}",
        "budget": budget,
        "static": static_outcome,
        "dynamic": {
            "completed": True,
            "seconds": round(elapsed, 6),
            "live_nodes": mgr.live_nodes(),
            "size": mgr.size(root),
            "reorderings": mgr.reorderings,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated registry keys (default: %(default)s)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=8,
        help="largest supernodes sifted per circuit (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: only the 3 default circuits, top 4 supernodes",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless every circuit's rebuild/inplace speedup "
        "reaches this factor",
    )
    parser.add_argument(
        "--output",
        default="BENCH_reorder.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        circuits, top = list(DEFAULT_CIRCUITS), 4
    else:
        circuits = [key for key in args.circuits.split(",") if key]
        top = args.top

    results = []
    for key in circuits:
        entry = bench_circuit(key, top)
        results.append(entry)
        print(
            f"{key:10s} rebuild {entry['rebuild_seconds'] * 1000:8.1f}ms  "
            f"inplace {entry['inplace_seconds'] * 1000:7.1f}ms  "
            f"speedup {entry['speedup']}x  "
            f"sizes {entry['nodes_before']} -> {entry['nodes_inplace']} "
            f"(rebuild {entry['nodes_rebuild']}, "
            f"converge {entry['nodes_converge']}, "
            f"groups {entry['nodes_groups']})",
            flush=True,
        )

    rescue = bench_dynamic_rescue()
    print(
        f"{rescue['circuit']:24s} budget {rescue['budget']}: "
        f"static {rescue['static']}, dynamic completed at "
        f"{rescue['dynamic']['size']} nodes "
        f"({rescue['dynamic']['reorderings']} mid-build reorders)",
        flush=True,
    )

    payload = {
        "schema": "bdsmaj-bench-reorder/v2",
        "top_supernodes_per_circuit": top,
        "circuits": results,
        "dynamic_rescue": rescue,
        "total_rebuild_seconds": round(
            sum(r["rebuild_seconds"] for r in results), 6
        ),
        "total_inplace_seconds": round(
            sum(r["inplace_seconds"] for r in results), 6
        ),
        "total_converge_seconds": round(
            sum(r["converge_seconds"] for r in results), 6
        ),
        "total_groups_seconds": round(
            sum(r["groups_seconds"] for r in results), 6
        ),
    }
    total_inplace = payload["total_inplace_seconds"]
    payload["total_speedup"] = (
        round(payload["total_rebuild_seconds"] / total_inplace, 2)
        if total_inplace
        else None
    )
    with open(args.output, "w") as sink:
        json.dump(payload, sink, indent=2, sort_keys=True)
        sink.write("\n")
    print(f"wrote {args.output}: total speedup {payload['total_speedup']}x")

    if args.min_speedup is not None:
        slow = [
            r["circuit"]
            for r in results
            if r["speedup"] is not None and r["speedup"] < args.min_speedup
        ]
        if slow:
            print(
                f"FAIL: speedup below {args.min_speedup}x on {slow}",
                file=sys.stderr,
            )
            return 1
    return 0


def bench_reorder_inplace_vs_rebuild(benchmark):
    """pytest-benchmark harness row (the CI perf-smoke job runs this
    module as a script instead; see ``main``)."""
    from conftest import run_once

    results = run_once(
        benchmark, lambda: [bench_circuit(key, 4) for key in DEFAULT_CIRCUITS]
    )
    for entry in results:
        assert entry["nodes_inplace"] <= entry["nodes_rebuild"], entry
        assert entry["nodes_converge"] <= entry["nodes_inplace"], entry
    benchmark.extra_info.update(
        speedups={r["circuit"]: r["speedup"] for r in results},
        sizes={
            r["circuit"]: (r["nodes_before"], r["nodes_inplace"]) for r in results
        },
    )


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_reorder_inplace_vs_rebuild = bench_reorder_inplace_vs_rebuild


if __name__ == "__main__":
    raise SystemExit(main())
