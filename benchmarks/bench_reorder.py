"""Benchmark: in-place sifting engine vs the rebuild-based baseline.

For each benchmark circuit this harness partitions the network exactly
like the BDS flows do, picks the largest supernode BDDs, and sifts each
one twice from the same starting order:

* ``rebuild`` — :func:`repro.bdd.reorder.sift_rebuild`, the historical
  transfer-based sifter (one full reconstruction per candidate
  position);
* ``inplace`` — :meth:`repro.bdd.BDD.sift`, the in-place engine
  (adjacent level swaps over per-level subtables).

Both searches use the same visit order and tie-breaks, so the final
sizes must agree (asserted: in-place ≤ rebuild on every supernode); the
difference is wall-clock.  Results — the before/after size trajectory
and the per-circuit speedup — are written to ``BENCH_reorder.json``.

Run directly (no pytest needed — CI's perf-smoke job does)::

    python benchmarks/bench_reorder.py --quick --output BENCH_reorder.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bdd.reorder import sift_rebuild
from repro.flows.bds import BdsFlowConfig
from repro.network import partition_with_bdds

#: The acceptance circuits (the paper rows the ≥5× criterion names).
DEFAULT_CIRCUITS = ("alu2", "f51m", "vda")


def bench_circuit(key: str, top: int) -> dict:
    """Sift the ``top`` largest supernodes of ``key`` both ways."""
    from repro.benchgen import build_benchmark

    partitions = partition_with_bdds(
        build_benchmark(key), BdsFlowConfig().partition
    )
    partitions.sort(key=lambda entry: -entry[1].size(entry[2]))
    supernodes = []
    rebuild_seconds = inplace_seconds = 0.0
    for supernode, mgr, root in partitions[:top]:
        size_before = mgr.size(root)
        num_vars = mgr.num_vars

        start = time.perf_counter()
        rebuilt_mgr, (rebuilt_root,) = sift_rebuild(mgr, [root])
        rebuild_elapsed = time.perf_counter() - start
        rebuild_size = rebuilt_mgr.size(rebuilt_root)

        start = time.perf_counter()
        result = mgr.sift([root])
        inplace_elapsed = time.perf_counter() - start
        inplace_size = mgr.size(root)

        if inplace_size > rebuild_size:
            raise AssertionError(
                f"{key}/{supernode.output}: in-place sift ended at "
                f"{inplace_size} nodes, rebuild baseline at {rebuild_size}"
            )
        rebuild_seconds += rebuild_elapsed
        inplace_seconds += inplace_elapsed
        supernodes.append(
            {
                "output": supernode.output,
                "vars": num_vars,
                "size_before": size_before,
                "rebuild": {
                    "seconds": round(rebuild_elapsed, 6),
                    "size": rebuild_size,
                },
                "inplace": {
                    "seconds": round(inplace_elapsed, 6),
                    "size": inplace_size,
                    "swaps": result.swaps,
                    "changed": result.changed,
                },
            }
        )
    return {
        "circuit": key,
        "supernodes": supernodes,
        "rebuild_seconds": round(rebuild_seconds, 6),
        "inplace_seconds": round(inplace_seconds, 6),
        "speedup": round(rebuild_seconds / inplace_seconds, 2)
        if inplace_seconds
        else None,
        "nodes_before": sum(s["size_before"] for s in supernodes),
        "nodes_rebuild": sum(s["rebuild"]["size"] for s in supernodes),
        "nodes_inplace": sum(s["inplace"]["size"] for s in supernodes),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        default=",".join(DEFAULT_CIRCUITS),
        help="comma-separated registry keys (default: %(default)s)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=8,
        help="largest supernodes sifted per circuit (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: only the 3 default circuits, top 4 supernodes",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless every circuit's rebuild/inplace speedup "
        "reaches this factor",
    )
    parser.add_argument(
        "--output",
        default="BENCH_reorder.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        circuits, top = list(DEFAULT_CIRCUITS), 4
    else:
        circuits = [key for key in args.circuits.split(",") if key]
        top = args.top

    results = []
    for key in circuits:
        entry = bench_circuit(key, top)
        results.append(entry)
        print(
            f"{key:10s} rebuild {entry['rebuild_seconds'] * 1000:8.1f}ms  "
            f"inplace {entry['inplace_seconds'] * 1000:7.1f}ms  "
            f"speedup {entry['speedup']}x  "
            f"sizes {entry['nodes_before']} -> {entry['nodes_inplace']} "
            f"(rebuild {entry['nodes_rebuild']})",
            flush=True,
        )

    payload = {
        "schema": "bdsmaj-bench-reorder/v1",
        "top_supernodes_per_circuit": top,
        "circuits": results,
        "total_rebuild_seconds": round(
            sum(r["rebuild_seconds"] for r in results), 6
        ),
        "total_inplace_seconds": round(
            sum(r["inplace_seconds"] for r in results), 6
        ),
    }
    total_inplace = payload["total_inplace_seconds"]
    payload["total_speedup"] = (
        round(payload["total_rebuild_seconds"] / total_inplace, 2)
        if total_inplace
        else None
    )
    with open(args.output, "w") as sink:
        json.dump(payload, sink, indent=2, sort_keys=True)
        sink.write("\n")
    print(f"wrote {args.output}: total speedup {payload['total_speedup']}x")

    if args.min_speedup is not None:
        slow = [
            r["circuit"]
            for r in results
            if r["speedup"] is not None and r["speedup"] < args.min_speedup
        ]
        if slow:
            print(
                f"FAIL: speedup below {args.min_speedup}x on {slow}",
                file=sys.stderr,
            )
            return 1
    return 0


def bench_reorder_inplace_vs_rebuild(benchmark):
    """pytest-benchmark harness row (the CI perf-smoke job runs this
    module as a script instead; see ``main``)."""
    from conftest import run_once

    results = run_once(
        benchmark, lambda: [bench_circuit(key, 4) for key in DEFAULT_CIRCUITS]
    )
    for entry in results:
        assert entry["nodes_inplace"] <= entry["nodes_rebuild"], entry
    benchmark.extra_info.update(
        speedups={r["circuit"]: r["speedup"] for r in results},
        sizes={
            r["circuit"]: (r["nodes_before"], r["nodes_inplace"]) for r in results
        },
    )


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_reorder_inplace_vs_rebuild = bench_reorder_inplace_vs_rebuild


if __name__ == "__main__":
    raise SystemExit(main())
