"""Benchmark harness regenerating Table I (decomposition node counts).

One timed run per (benchmark, tool); the decomposed-network node
counts — the numbers Table I reports — are attached as extra_info.
A final aggregate check asserts the paper's qualitative claims: BDS-MAJ
produces fewer nodes than BDS-PGA on average, with MAJ nodes a modest
fraction of the total.
"""

from __future__ import annotations

import pytest

from repro.benchgen import BENCHMARKS, build_benchmark
from repro.flows import BdsFlowConfig, bds_optimize

from conftest import run_once

ALL_KEYS = list(BENCHMARKS)

#: Populated by the per-benchmark runs, summarized by the final test.
_RESULTS: dict[tuple[str, str], dict[str, int]] = {}


def _decompose(network, enable_majority: bool):
    config = BdsFlowConfig(enable_majority=enable_majority, verify=False)
    _, counts, _ = bds_optimize(network, config)
    return counts


@pytest.mark.parametrize("key", ALL_KEYS)
@pytest.mark.parametrize("tool", ["bds-maj", "bds-pga"])
def bench_table1_decomposition(benchmark, key, tool):
    network = build_benchmark(key)
    counts = run_once(benchmark, _decompose, network, tool == "bds-maj")
    _RESULTS[(key, tool)] = counts
    benchmark.extra_info.update(
        benchmark_name=BENCHMARKS[key].display,
        tool=tool,
        **counts,
        total=sum(counts.values()),
    )
    if tool == "bds-pga":
        assert counts["maj"] == 0


# pytest-benchmark collects functions named test_* too; use test_ alias
# so plain `pytest benchmarks/` discovers the harness.
test_table1_decomposition = bench_table1_decomposition


def test_table1_headline_claims(benchmark):
    """Aggregate shape of Table I (runs the missing circuits if any)."""

    def aggregate():
        for key in ALL_KEYS:
            for tool in ("bds-maj", "bds-pga"):
                if (key, tool) not in _RESULTS:
                    network = build_benchmark(key)
                    _RESULTS[(key, tool)] = _decompose(network, tool == "bds-maj")
        maj_totals = [sum(_RESULTS[(k, "bds-maj")].values()) for k in ALL_KEYS]
        pga_totals = [sum(_RESULTS[(k, "bds-pga")].values()) for k in ALL_KEYS]
        maj_nodes = [_RESULTS[(k, "bds-maj")]["maj"] for k in ALL_KEYS]
        return maj_totals, pga_totals, maj_nodes

    maj_totals, pga_totals, maj_nodes = run_once(benchmark, aggregate)
    mean_maj = sum(maj_totals) / len(maj_totals)
    mean_pga = sum(pga_totals) / len(pga_totals)
    reduction = 1.0 - mean_maj / mean_pga
    maj_fraction = sum(maj_nodes) / sum(maj_totals)
    wins = sum(1 for m, p in zip(maj_totals, pga_totals) if m <= p)

    benchmark.extra_info.update(
        mean_total_bds_maj=round(mean_maj, 1),
        mean_total_bds_pga=round(mean_pga, 1),
        node_reduction_pct=round(reduction * 100, 1),
        paper_node_reduction_pct=29.1,
        maj_fraction_pct=round(maj_fraction * 100, 1),
        paper_maj_fraction_pct=9.8,
        wins=f"{wins}/{len(ALL_KEYS)}",
    )
    # Paper shape: a double-digit average reduction, never a regression
    # on average, MAJ nodes a small-but-real fraction.
    assert reduction > 0.10, f"expected >10% node reduction, got {reduction:.1%}"
    assert 0.01 < maj_fraction < 0.5
    assert wins >= len(ALL_KEYS) * 2 // 3
