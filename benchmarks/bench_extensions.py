"""Benches for the extensions: MIG re-expression and mapper comparison.

Neither is a paper table; they quantify the two optional subsystems
DESIGN.md lists (the MIG future-work extension and the cut-based
Boolean-matching mapper) on real circuits.
"""

from __future__ import annotations

import pytest

from repro.benchgen import build_benchmark
from repro.benchgen.extra import parity_tree
from repro.core import DecompositionEngine, TreeBuilder
from repro.flows import BdsFlowConfig
from repro.mapping import analyze, cut_map_network, map_network
from repro.mig import network_to_mig, rewrite_depth, trees_to_mig
from repro.network import partition_with_bdds

from conftest import run_once


@pytest.mark.parametrize("key", ["alu2", "f51m", "cla64"])
def test_mig_reexpression(benchmark, key):
    """BDS-MAJ factoring trees re-expressed as MIGs vs the naive
    network translation: the decomposition's MAJ discovery should not
    inflate the majority-node count."""
    network = build_benchmark(key)

    def run():
        config = BdsFlowConfig()
        builder = TreeBuilder()
        roots = {}
        for supernode, mgr, root in partition_with_bdds(network, config.partition):
            engine = DecompositionEngine(mgr, builder, config.engine)
            roots[supernode.output] = engine.decompose(root)
        decomposed = trees_to_mig(builder, roots, list(network.inputs))
        naive = network_to_mig(network)
        rewritten = rewrite_depth(decomposed, passes=2)
        return decomposed, naive, rewritten

    decomposed, naive, rewritten = run_once(benchmark, run)
    benchmark.extra_info.update(
        mig_from_trees=decomposed.size(),
        mig_from_trees_depth=decomposed.depth(),
        mig_naive=naive.size(),
        mig_naive_depth=naive.depth(),
        mig_rewritten_depth=rewritten.depth(),
    )
    assert rewritten.depth() <= decomposed.depth()


@pytest.mark.parametrize("key", ["alu2", "c1355", "add4x16"])
def test_mapper_comparison(benchmark, key):
    """Structural mapper (gate hints preserved) vs cut-based Boolean
    matching (everything re-derived from the AIG)."""
    network = build_benchmark(key)

    def run():
        structural = analyze(map_network(network))
        boolean = analyze(cut_map_network(network))
        return structural, boolean

    structural, boolean = run_once(benchmark, run)
    benchmark.extra_info.update(
        structural_area=round(structural.area, 2),
        boolean_area=round(boolean.area, 2),
        structural_delay=round(structural.delay, 3),
        boolean_delay=round(boolean.delay, 3),
    )
    assert structural.gate_count > 0 and boolean.gate_count > 0


def test_boolean_matching_recovers_xor(benchmark):
    """On a parity tree the Boolean matcher must rebuild XOR cells from
    the raw AIG (no gate hints)."""
    network = parity_tree(32)

    def run():
        return cut_map_network(network)

    mapped = run_once(benchmark, run)
    histogram = mapped.cell_histogram()
    benchmark.extra_info.update(histogram=histogram)
    assert histogram.get("xor2", 0) + histogram.get("xnor2", 0) >= 20
