"""Benchmark harness for the figure reproductions.

* Figure 1 — m-dominator identification on the paper's example BDD;
* Figure 2 — the balancing walkthrough (Sections III.C/D);
* Figure 3 — the flow stage trace.

These are cheap; they are benchmarked mostly so the figure artifacts
are regenerated alongside the tables in one ``pytest benchmarks/`` run.
"""

from __future__ import annotations

from repro.experiments import figure1, figure2, figure3

from conftest import run_once


def test_figure1_mdominator(benchmark):
    result = run_once(benchmark, figure1)
    benchmark.extra_info.update(
        dominators=result.num_candidates,
        dominator_function=result.dominator_function,
        dot_bytes=len(result.dot),
    )
    assert result.num_candidates == 1
    assert result.dominator_function == "a"  # the paper's highlighted node
    assert "color=red" in result.dot


def test_figure2_balancing(benchmark):
    result = run_once(benchmark, figure2)
    benchmark.extra_info.update(steps=len(result.steps))
    assert any("Maj(a, b, c)" in step for step in result.steps)
    assert any("True" in step for step in result.steps)


def test_figure3_flow_trace(benchmark):
    result = run_once(benchmark, figure3, "alu2")
    benchmark.extra_info.update(lines=len(result.lines))
    text = "\n".join(result.lines)
    assert "partitioning" in text
    assert "majority decompositions" in text
