"""Runtime scaling of the majority decomposition (Section III.F).

The paper bounds Algorithm 1 by O(N^4) in the BDD size N but observes
near-linear behaviour in practice thanks to tight selection
constraints.  This harness times `decompose_majority` on a family of
scalable functions (adder carry cones of growing width) and records the
measured runtime-vs-N series; the aggregate test checks growth stays
far below the worst-case bound.
"""

from __future__ import annotations

import time

import pytest

from repro.bdd import BDD
from repro.core import decompose_majority

from conftest import run_once

WIDTHS = [4, 6, 8, 10, 12]

_SERIES: dict[int, tuple[int, float]] = {}


def carry_cone(width: int) -> tuple[BDD, int]:
    """The carry-out of a ``width``-bit adder: a scalable MAJ-rich
    function whose BDD grows linearly with width."""
    names = [f"{p}{i}" for i in range(width) for p in ("a", "b")]
    mgr = BDD(names)
    carry = mgr.ZERO
    for i in range(width):
        a, b = mgr.var(f"a{i}"), mgr.var(f"b{i}")
        carry = mgr.maj(a, b, carry)
    return mgr, carry


@pytest.mark.parametrize("width", WIDTHS)
def test_complexity_scaling(benchmark, width):
    mgr, cone = carry_cone(width)
    size = mgr.size(cone)

    def run():
        start = time.perf_counter()
        result = decompose_majority(mgr, cone)
        elapsed = time.perf_counter() - start
        return result, elapsed

    result, elapsed = run_once(benchmark, run)
    _SERIES[width] = (size, elapsed)
    benchmark.extra_info.update(bdd_nodes=size, seconds=round(elapsed, 4))
    assert result is not None  # the carry cone always has m-dominators


def test_complexity_far_below_worst_case(benchmark):
    def collect():
        for width in WIDTHS:
            if width not in _SERIES:
                mgr, cone = carry_cone(width)
                start = time.perf_counter()
                decompose_majority(mgr, cone)
                _SERIES[width] = (mgr.size(cone), time.perf_counter() - start)
        return dict(_SERIES)

    series = run_once(benchmark, collect)
    small_n, small_t = series[WIDTHS[0]]
    large_n, large_t = series[WIDTHS[-1]]
    ratio_n = large_n / small_n
    ratio_t = max(large_t, 1e-6) / max(small_t, 1e-6)
    benchmark.extra_info.update(
        series={f"N={n}": round(t, 4) for n, t in series.values()},
        time_growth=round(ratio_t, 2),
        size_growth=round(ratio_n, 2),
    )
    # O(N^4) would give ratio_t ~ ratio_n^4; practice must stay well
    # below that on this family (paper: "much less than O(N^4)").
    # The N^3.5 bound leaves headroom for timer noise on small N.
    assert ratio_t < ratio_n**3.5
