"""Shared helpers for the pytest-benchmark harnesses.

Every benchmark regenerates a paper table or figure (or an ablation).
Heavy flows run once per benchmark (``pedantic`` with one round) —
synthesis runtimes are seconds, not microseconds, and the quantity of
interest is the paper-shape of the quality metrics, which each harness
attaches to ``benchmark.extra_info``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once():
    return run_once
