"""Tests for the MIG extension (structure, axioms, conversions)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import ripple_carry_adder
from repro.core import TreeBuilder
from repro.mig import (
    Mig,
    mig_to_network,
    network_to_mig,
    rewrite_depth,
    rewrite_size,
    trees_to_mig,
)
from repro.network import check_equivalence


class TestMajAxioms:
    def test_majority_axiom_duplicate(self):
        mig = Mig()
        a, b = mig.add_input("a"), mig.add_input("b")
        assert mig.maj(a, a, b) == a

    def test_majority_axiom_complement(self):
        mig = Mig()
        a, b = mig.add_input("a"), mig.add_input("b")
        assert mig.maj(a, a ^ 1, b) == b

    def test_commutativity_via_strash(self):
        mig = Mig()
        a, b, c = (mig.add_input(n) for n in "abc")
        assert mig.maj(a, b, c) == mig.maj(c, a, b) == mig.maj(b, c, a)

    def test_self_duality_canonicalization(self):
        mig = Mig()
        a, b, c = (mig.add_input(n) for n in "abc")
        positive = mig.maj(a, b, c)
        dual = mig.maj(a ^ 1, b ^ 1, c ^ 1)
        assert dual == positive ^ 1
        # Only one physical node was created for both polarities.
        assert mig.size() == 0  # no outputs yet
        mig.add_output("p", positive)
        assert mig.size() == 1

    def test_and_or_as_constant_majorities(self):
        mig = Mig()
        a, b = mig.add_input("a"), mig.add_input("b")
        mig.add_output("and", mig.and_(a, b))
        mig.add_output("or", mig.or_(a, b))
        for va in (0, 1):
            for vb in (0, 1):
                values = mig.simulate({"a": va, "b": vb}, 1)
                assert values["and"] == (va & vb)
                assert values["or"] == (va | vb)

    def test_xor_construction(self):
        mig = Mig()
        a, b = mig.add_input("a"), mig.add_input("b")
        mig.add_output("x", mig.xor_(a, b))
        for va in (0, 1):
            for vb in (0, 1):
                assert mig.simulate({"a": va, "b": vb}, 1)["x"] == (va ^ vb)

    def test_maj_truth_table(self):
        mig = Mig()
        a, b, c = (mig.add_input(n) for n in "abc")
        mig.add_output("m", mig.maj(a, b, c))
        for vector in range(8):
            stim = {"a": vector & 1, "b": vector >> 1 & 1, "c": vector >> 2 & 1}
            expected = int(sum(stim.values()) >= 2)
            assert mig.simulate(stim, 1)["m"] == expected

    def test_duplicate_input_rejected(self):
        mig = Mig()
        mig.add_input("a")
        with pytest.raises(ValueError):
            mig.add_input("a")


class TestAnalysis:
    def test_size_and_depth(self):
        mig = Mig()
        a, b, c, d = (mig.add_input(n) for n in "abcd")
        inner = mig.maj(a, b, c)
        outer = mig.maj(inner, c, d)
        mig.add_output("o", outer)
        assert mig.size() == 2
        assert mig.depth() == 2

    def test_cleanup_drops_dead_nodes(self):
        mig = Mig()
        a, b, c = (mig.add_input(n) for n in "abc")
        kept = mig.maj(a, b, c)
        mig.maj(a, b ^ 1, c)  # dead
        mig.add_output("o", kept)
        assert mig.cleanup().size() == 1

    def test_inverters_are_free(self):
        mig = Mig()
        a, b, c = (mig.add_input(n) for n in "abc")
        mig.add_output("o", mig.maj(a ^ 1, b, c) ^ 1)
        assert mig.depth() == 1


class TestConversions:
    def test_network_round_trip(self):
        net = ripple_carry_adder(4)
        mig = network_to_mig(net)
        back = mig_to_network(mig, name=net.name)
        assert check_equivalence(net, back).equivalent

    def test_adder_carry_chain_is_compact(self):
        """An n-bit ripple adder's MIG stays linear in n: one native
        MAJ per carry plus 3 majorities per XOR (2 XORs per bit) —
        ~7 nodes/bit before sharing."""
        net = ripple_carry_adder(8)
        mig = network_to_mig(net)
        assert mig.size() <= 7 * 8
        # Carries map to single majority nodes (not OR-of-AND trees):
        # the whole 8-bit adder fits in depth ~ bits + xor overhead.
        assert mig.depth() <= 2 * 8

    def test_trees_to_mig_preserves_maj_nodes(self):
        builder = TreeBuilder()
        a, b, c = (builder.literal(n) for n in "abc")
        root = builder.maj(a, builder.not_(b), c)
        mig = trees_to_mig(builder, {"f": root}, ["a", "b", "c"])
        assert mig.size() == 1
        for vector in range(8):
            stim = {"a": vector & 1, "b": vector >> 1 & 1, "c": vector >> 2 & 1}
            expected = int(stim["a"] + (1 - stim["b"]) + stim["c"] >= 2)
            assert mig.simulate(stim, 1)["f"] == expected

    def test_trees_to_mig_all_ops(self):
        builder = TreeBuilder()
        a, b, c = (builder.literal(n) for n in "abc")
        root = builder.or_(
            builder.xor(a, b),
            builder.and_(builder.xnor(b, c), builder.not_(a)),
        )
        mig = trees_to_mig(builder, {"f": root}, ["a", "b", "c"])
        for vector in range(8):
            stim = {"a": vector & 1, "b": vector >> 1 & 1, "c": vector >> 2 & 1}
            assert mig.simulate(stim, 1)["f"] == builder.eval(root, stim)

    def test_constant_outputs(self):
        mig = Mig()
        mig.add_input("a")
        mig.add_output("one", Mig.ONE)
        mig.add_output("zero", Mig.ZERO)
        net = mig_to_network(mig)
        values = net.simulate({"a": 0}, 1)
        assert values == {"one": 1, "zero": 0}


def random_mig(seed: int, num_inputs: int = 6, num_nodes: int = 40) -> Mig:
    rng = random.Random(seed)
    mig = Mig()
    pool = [mig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a, b, c = rng.sample(pool, 3)
        pool.append(
            mig.maj(a ^ rng.getrandbits(1), b ^ rng.getrandbits(1), c ^ rng.getrandbits(1))
        )
    for index in range(4):
        mig.add_output(f"y{index}", pool[-(index + 1)] ^ rng.getrandbits(1))
    return mig


def migs_equivalent(left: Mig, right: Mig, vectors: int = 128) -> bool:
    rng = random.Random(5)
    mask = (1 << vectors) - 1
    stimulus = {name: rng.getrandbits(vectors) for name in left.inputs}
    return left.simulate(stimulus, mask) == right.simulate(stimulus, mask)


class TestRewriting:
    def test_rewrite_size_preserves_function(self):
        for seed in range(6):
            mig = random_mig(seed)
            assert migs_equivalent(mig, rewrite_size(mig))

    def test_rewrite_depth_preserves_function(self):
        for seed in range(6):
            mig = random_mig(seed + 50)
            assert migs_equivalent(mig, rewrite_depth(mig)), f"seed {seed}"

    def test_rewrite_depth_never_deepens(self):
        for seed in range(6):
            mig = random_mig(seed + 100, num_nodes=60)
            assert rewrite_depth(mig).depth() <= mig.depth()

    def test_associativity_chain_gets_shallower(self):
        """A linear Maj(u, x_i, .) chain must rebalance."""
        mig = Mig()
        u = mig.add_input("u")
        xs = [mig.add_input(f"x{i}") for i in range(8)]
        chain = xs[0]
        for x in xs[1:]:
            chain = mig.maj(x, u, chain)
        mig.add_output("o", chain)
        rewritten = rewrite_depth(mig, passes=6)
        assert rewritten.depth() <= mig.depth()
        assert migs_equivalent(mig, rewritten)


@settings(max_examples=80, deadline=None)
@given(
    tables=st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
)
def test_property_mig_maj_matches_boolean_majority(tables):
    """Maj over arbitrary sub-functions == bitwise majority."""
    mig = Mig()
    names = ["a", "b", "c"]
    literals = [mig.add_input(n) for n in names]

    def from_table(table: int) -> int:
        acc = Mig.ZERO
        for row in range(8):
            if table >> row & 1:
                term = Mig.ONE
                for j, literal in enumerate(literals):
                    bit = row >> j & 1
                    term = mig.and_(term, literal if bit else literal ^ 1)
                acc = mig.or_(acc, term)
        return acc

    f, g, h = (from_table(t) for t in tables)
    mig.add_output("m", mig.maj(f, g, h))
    for row in range(8):
        stim = {name: row >> j & 1 for j, name in enumerate(names)}
        fv = tables[0] >> row & 1
        gv = tables[1] >> row & 1
        hv = tables[2] >> row & 1
        assert mig.simulate(stim, 1)["m"] == int(fv + gv + hv >= 2)
