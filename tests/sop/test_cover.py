"""Tests for the positional-cover two-level minimizer."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sop import (
    count_literals,
    cover_is_tautology,
    cube_covered,
    simplify_cover,
)


def eval_cover(cover, assignment) -> bool:
    for row in cover:
        if all(ch == "-" or bool(int(ch)) == bit for ch, bit in zip(row, assignment)):
            return True
    return False


class TestTautology:
    def test_empty_cover(self):
        assert not cover_is_tautology([])

    def test_full_dontcare_row(self):
        assert cover_is_tautology(["--"])

    def test_complementary_pair(self):
        assert cover_is_tautology(["1-", "0-"])

    def test_three_var_tautology(self):
        assert cover_is_tautology(["1--", "01-", "001", "000"])

    def test_not_tautology(self):
        assert not cover_is_tautology(["11", "00"])

    def test_unate_non_tautology(self):
        assert not cover_is_tautology(["1-", "-1"])


class TestCubeCovered:
    def test_direct_containment(self):
        assert cube_covered("11", ["1-"])

    def test_split_containment(self):
        assert cube_covered("1-", ["11", "10"])

    def test_not_covered(self):
        assert not cube_covered("11", ["10", "01"])


class TestSimplify:
    def test_removes_contained_cube(self):
        assert simplify_cover(["11", "1-"]) == ("1-",)

    def test_merges_adjacent(self):
        assert simplify_cover(["10", "11"]) == ("1-",)

    def test_collapses_tautology(self):
        assert simplify_cover(["1-", "0-"]) == ("--",)

    def test_removes_redundant_consensus_cube(self):
        # ab + a'c + bc: the consensus cube bc is redundant.
        result = simplify_cover(["11-", "0-1", "-11"])
        assert len(result) == 2

    def test_empty(self):
        assert simplify_cover([]) == ()

    def test_preserves_function_exhaustively(self):
        covers = [
            ["11-", "0-1", "-11"],
            ["101", "100", "011", "111"],
            ["1--", "-1-", "--1"],
            ["110", "101", "011"],
        ]
        for cover in covers:
            simplified = simplify_cover(cover)
            for assignment in itertools.product([False, True], repeat=3):
                assert eval_cover(cover, assignment) == eval_cover(
                    simplified, assignment
                ), (cover, simplified, assignment)

    def test_never_grows_literals(self):
        cover = ["1100", "1101", "1110", "1111", "0011"]
        simplified = simplify_cover(cover)
        assert count_literals(simplified) <= count_literals(cover)


@settings(max_examples=150, deadline=None)
@given(
    rows=st.lists(
        st.text(alphabet="01-", min_size=3, max_size=3), min_size=0, max_size=8
    )
)
def test_property_simplify_preserves_function(rows):
    simplified = simplify_cover(rows)
    for assignment in itertools.product([False, True], repeat=3):
        assert eval_cover(rows, assignment) == eval_cover(simplified, assignment)


@settings(max_examples=150, deadline=None)
@given(
    rows=st.lists(
        st.text(alphabet="01-", min_size=4, max_size=4), min_size=1, max_size=10
    )
)
def test_property_tautology_matches_enumeration(rows):
    expected = all(
        eval_cover(rows, assignment)
        for assignment in itertools.product([False, True], repeat=4)
    )
    assert cover_is_tautology(rows) == expected
