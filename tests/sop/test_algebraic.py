"""Tests for kernel extraction and algebraic factoring."""

from __future__ import annotations

import itertools

from repro.sop import (
    Cube,
    Expression,
    GateEmitter,
    best_kernel,
    expression_from_cover,
    factor_expression,
    is_cube_free,
    kernels,
    weak_division,
)


def expr(*cubes) -> Expression:
    """Helper: expr(("a", "b"), ("a", "~c")) -> ab + ac'."""
    result = []
    for cube in cubes:
        literals = []
        for token in cube:
            if token.startswith("~"):
                literals.append((token[1:], False))
            else:
                literals.append((token, True))
        result.append(Cube(literals))
    return Expression(result)


class EvalEmitter:
    """GateEmitter that builds Python closures for evaluation."""

    def __init__(self):
        self.gate_count = 0
        self.emitter = GateEmitter(
            literal=lambda name, phase: (
                (lambda env, n=name: bool(env[n]))
                if phase
                else (lambda env, n=name: not env[n])
            ),
            and2=self._and2,
            or2=self._or2,
            const=lambda value: (lambda env, v=value: v),
        )

    def _and2(self, left, right):
        self.gate_count += 1
        return lambda env: left(env) and right(env)

    def _or2(self, left, right):
        self.gate_count += 1
        return lambda env: left(env) or right(env)


def eval_expression(expression: Expression, env) -> bool:
    return any(
        all(env[name] == phase for name, phase in cube) for cube in expression
    )


def support(expression: Expression) -> set[str]:
    return {name for cube in expression for name, _ in cube}


class TestWeakDivision:
    def test_textbook_example(self):
        # (ab + ac + d) / (b + c) = a, remainder d.
        dividend = expr(("a", "b"), ("a", "c"), ("d",))
        divisor = expr(("b",), ("c",))
        quotient, remainder = weak_division(dividend, divisor)
        assert quotient == expr(("a",))
        assert remainder == expr(("d",))

    def test_no_division(self):
        dividend = expr(("a", "b"))
        divisor = expr(("c",))
        quotient, remainder = weak_division(dividend, divisor)
        assert quotient == Expression()
        assert remainder == dividend

    def test_reconstruction_identity(self):
        dividend = expr(("a", "b"), ("a", "c"), ("b", "c"), ("d",))
        divisor = expr(("b",), ("c",))
        quotient, remainder = weak_division(dividend, divisor)
        product = Expression(d | q for d in divisor for q in quotient)
        assert product | remainder == dividend


class TestKernels:
    def test_cube_free_detection(self):
        assert is_cube_free(expr(("a",), ("b",)))
        assert not is_cube_free(expr(("a", "b"), ("a", "c")))

    def test_textbook_kernels(self):
        # x = adf + aef + bdf + bef + cdf + cef + g
        #   = (a+b+c)(d+e)f + g ; kernels include a+b+c and d+e.
        expression = expr(
            ("a", "d", "f"),
            ("a", "e", "f"),
            ("b", "d", "f"),
            ("b", "e", "f"),
            ("c", "d", "f"),
            ("c", "e", "f"),
            ("g",),
        )
        found = {frozenset(k) for _, k in kernels(expression)}
        assert expr(("a",), ("b",), ("c",)) in found
        assert expr(("d",), ("e",)) in found

    def test_kernel_of_kernel_free_expression(self):
        assert kernels(expr(("a", "b"))) == []

    def test_best_kernel_prefers_sharing(self):
        expression = expr(("a", "b"), ("a", "c"), ("d", "b"), ("d", "c"))
        choice = best_kernel(expression)
        assert choice is not None
        _, kernel = choice
        assert kernel in (expr(("b",), ("c",)), expr(("a",), ("d",)))


class TestFactoring:
    def _check(self, expression: Expression):
        evaluator = EvalEmitter()
        func = factor_expression(expression, evaluator.emitter)
        names = sorted(support(expression))
        for values in itertools.product([False, True], repeat=len(names)):
            env = dict(zip(names, values))
            assert func(env) == eval_expression(expression, env), env
        return evaluator.gate_count

    def test_constants(self):
        evaluator = EvalEmitter()
        assert factor_expression(Expression(), evaluator.emitter)({}) is False
        assert factor_expression(expr(()), evaluator.emitter)({}) is True

    def test_single_cube(self):
        self._check(expr(("a", "b", "~c")))

    def test_simple_or(self):
        self._check(expr(("a",), ("b",)))

    def test_factoring_saves_gates(self):
        # ab + ac + ad: factored a(b+c+d) = 3 gates vs flat 5.
        gates = self._check(expr(("a", "b"), ("a", "c"), ("a", "d")))
        assert gates <= 3

    def test_textbook_expression(self):
        self._check(
            expr(
                ("a", "d", "f"),
                ("a", "e", "f"),
                ("b", "d", "f"),
                ("b", "e", "f"),
                ("c", "d", "f"),
                ("c", "e", "f"),
                ("g",),
            )
        )

    def test_mixed_phases(self):
        self._check(expr(("a", "~b"), ("~a", "b"), ("c", "~a")))

    def test_expression_from_cover(self):
        expression = expression_from_cover(["11-", "1-0"], ["x", "y", "z"])
        assert expression == expr(("x", "y"), ("x", "~z"))
