"""Tests for equivalence checking, BDD bridging and partitioning."""

from __future__ import annotations

import random

import pytest

from repro.network import (
    BddSizeExceeded,
    LogicNetwork,
    NetworkError,
    PartitionConfig,
    bdd_equivalent,
    check_equivalence,
    cover_to_bdd,
    exhaustive_equivalent,
    global_bdds,
    partition,
    partition_statistics,
    partition_with_bdds,
    random_equivalent,
)
from repro.bdd import BDD


def ripple_adder(bits: int, name: str = "rca") -> LogicNetwork:
    net = LogicNetwork(name)
    for i in range(bits):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")
    carry = None
    for i in range(bits):
        a, b = f"a{i}", f"b{i}"
        if carry is None:
            net.add_xor(f"s{i}", a, b)
            carry = net.add_and(f"c{i}", a, b)
        else:
            net.add_xor(f"p{i}", a, b)
            net.add_xor(f"s{i}", f"p{i}", carry)
            carry = net.add_maj(f"c{i}", a, b, carry)
        net.add_output(f"s{i}")
    net.add_output(carry)
    return net


def buggy_adder(bits: int) -> LogicNetwork:
    net = ripple_adder(bits, name="buggy")
    # Corrupt the top sum bit: OR instead of XOR.
    top = bits - 1
    fanins = net.node(f"s{top}").fanins
    net.replace_node(f"s{top}", fanins, ("1-", "-1"))
    return net


class TestCoverToBdd:
    def test_cover_matches_simulation(self):
        mgr = BDD(["a", "b", "c"])
        net = LogicNetwork()
        for name in "abc":
            net.add_input(name)
        net.add_maj("m", "a", "b", "c")
        node = net.node("m")
        edge = cover_to_bdd(mgr, node, [mgr.var(n) for n in "abc"])
        assert edge == mgr.from_expr("a & b | b & c | a & c")

    def test_inverted_cover(self):
        mgr = BDD(["a", "b"])
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_nand("n", "a", "b")
        edge = cover_to_bdd(mgr, net.node("n"), [mgr.var("a"), mgr.var("b")])
        assert edge == mgr.from_expr("~(a & b)")


class TestGlobalBdds:
    def test_adder_outputs(self):
        net = ripple_adder(3)
        mgr, roots = global_bdds(net)
        # Spot-check: s0 = a0 xor b0.
        assert roots["s0"] == mgr.from_expr("a0 ^ b0")

    def test_size_budget_enforced(self):
        net = ripple_adder(8)
        with pytest.raises(BddSizeExceeded):
            global_bdds(net, max_nodes=10)


class TestEquivalence:
    def test_exhaustive_detects_equality(self):
        left = ripple_adder(3)
        right = ripple_adder(3)
        result = exhaustive_equivalent(left, right)
        assert result.equivalent
        assert result.method == "exhaustive"

    def test_exhaustive_detects_bug_with_counterexample(self):
        left = ripple_adder(3)
        right = buggy_adder(3)
        result = exhaustive_equivalent(left, right)
        assert not result.equivalent
        assert result.counterexample is not None
        # The counterexample must really distinguish the two networks.
        stimulus = result.counterexample
        assert left.simulate(stimulus, 1) != right.simulate(stimulus, 1)

    def test_random_detects_bug(self):
        left = ripple_adder(9)  # 18 inputs: beyond exhaustive default
        right = buggy_adder(9)
        result = random_equivalent(left, right, vectors=512)
        assert not result.equivalent

    def test_bdd_equivalence(self):
        left = ripple_adder(4)
        right = ripple_adder(4)
        assert bdd_equivalent(left, right).equivalent
        assert not bdd_equivalent(left, buggy_adder(4)).equivalent

    def test_check_dispatches_on_width(self):
        small = ripple_adder(3)
        assert check_equivalence(small, ripple_adder(3)).method == "exhaustive"
        large = ripple_adder(10)
        assert check_equivalence(large, ripple_adder(10)).method == "random"

    def test_interface_mismatch_rejected(self):
        with pytest.raises(NetworkError):
            check_equivalence(ripple_adder(3), ripple_adder(4))


class TestPartition:
    def test_every_node_covered(self):
        net = ripple_adder(6)
        supernodes = partition(net)
        covered = set()
        for supernode in supernodes:
            covered |= supernode.members
        assert covered == set(net.node_names)

    def test_outputs_have_supernodes(self):
        net = ripple_adder(6)
        outputs = {s.output for s in partition(net)}
        assert set(net.outputs) <= outputs

    def test_support_budget_respected(self):
        net = ripple_adder(8)
        config = PartitionConfig(max_support=6)
        for supernode in partition(net, config):
            assert len(supernode.inputs) <= 6

    def test_partition_closure_and_equivalence(self):
        """Rebuilding the network from supernode BDDs must reproduce the
        original functions — the partition is only a re-grouping."""
        net = ripple_adder(5)
        entries = partition_with_bdds(net)
        emitted = set(net.inputs) | {s.output for s, _, _ in entries}
        for supernode, _, _ in entries:
            for signal in supernode.inputs:
                assert signal in emitted, f"unresolved boundary {signal!r}"
        # Evaluate supernode BDDs in topological order on random vectors.
        rng = random.Random(7)
        for _ in range(64):
            stimulus = {name: rng.getrandbits(1) for name in net.inputs}
            reference = net.simulate_all(stimulus, 1)
            values = {name: bool(stimulus[name]) for name in net.inputs}
            for supernode, mgr, root in entries:
                values[supernode.output] = mgr.eval(
                    root, {sig: values[sig] for sig in supernode.inputs}
                )
            for output in net.outputs:
                assert values[output] == bool(reference[output])

    def test_oversized_cluster_demoted(self):
        net = ripple_adder(6)
        config = PartitionConfig(max_support=12, max_bdd_nodes=3)
        entries = partition_with_bdds(net, config)
        # With a 3-node budget almost everything is singleton; the
        # closure property must still hold.
        emitted = set(net.inputs) | {s.output for s, _, _ in entries}
        for supernode, _, _ in entries:
            for signal in supernode.inputs:
                assert signal in emitted

    def test_statistics(self):
        net = ripple_adder(6)
        supernodes = partition(net)
        stats = partition_statistics(net, supernodes)
        assert stats["supernodes"] == len(supernodes)
        assert stats["max_support"] <= PartitionConfig().max_support

    def test_partition_reduces_supernode_count(self):
        """Partial collapse must actually collapse: far fewer supernodes
        than nodes on a ripple-carry adder."""
        net = ripple_adder(8)
        supernodes = partition(net)
        assert len(supernodes) < net.num_nodes
