"""Regression: ``BddSizeExceeded`` rescue by construction-time sifting.

The canonical blow-up: a comparator ``a0&b0 | a1&b1 | ...`` whose fanin
(and therefore DFS input) order separates the ``a`` block from the
``b`` block.  Under that order the BDD is exponential in the pair count
(it must remember every ``a`` seen before meeting the ``b`` side), so
the static build crosses any reasonable node budget — while the
interleaved order the sifter finds is linear.  ``reorder="dynamic"``
must turn that from a demotion (or a hard :class:`BddSizeExceeded`)
into a completed supernode.
"""

from __future__ import annotations

import pytest

from repro.flows.bds import BdsFlowConfig, bds_optimize
from repro.network import (
    LogicNetwork,
    PartitionConfig,
    check_equivalence,
    partition_with_bdds,
)
from repro.network.bdds import BddSizeExceeded, supernode_bdd

PAIRS = 8
BUDGET = 60


def separated_comparator(pairs: int = PAIRS) -> LogicNetwork:
    """``y = OR_i (a_i & b_i)`` with the pathological separated fanin
    order ``a0..a(n-1) b0..b(n-1)`` baked into one wide node."""
    net = LogicNetwork("sepcmp")
    names = [f"a{i}" for i in range(pairs)] + [f"b{i}" for i in range(pairs)]
    for name in names:
        net.add_input(name)
    rows = []
    for i in range(pairs):
        row = ["-"] * (2 * pairs)
        row[i] = "1"
        row[pairs + i] = "1"
        rows.append("".join(row))
    net.add_node("y", names, rows)
    net.add_output("y")
    return net


def comparator_tree(pairs: int = PAIRS) -> LogicNetwork:
    """The same function as a cone of AND nodes under a wide OR, so the
    partitioner collapses a multi-member cluster (demotion visibly
    shatters it into singletons)."""
    net = LogicNetwork("sepcmp_tree")
    for i in range(pairs):
        net.add_input(f"a{i}")
    for i in range(pairs):
        net.add_input(f"b{i}")
    for i in range(pairs):
        net.add_node(f"t{i}", [f"a{i}", f"b{i}"], ["11"])
    fanins = [f"t{i}" for i in range(pairs)]
    rows = ["-" * i + "1" + "-" * (pairs - 1 - i) for i in range(pairs)]
    net.add_node("y", fanins, rows)
    net.add_output("y")
    return net


class TestSupernodeRescue:
    def test_static_build_exceeds_budget(self):
        net = separated_comparator()
        with pytest.raises(BddSizeExceeded):
            supernode_bdd(net, "y", {"y"}, list(net.inputs), max_nodes=BUDGET)

    def test_dynamic_build_completes_within_budget(self):
        net = separated_comparator()
        mgr, root = supernode_bdd(
            net, "y", {"y"}, list(net.inputs), max_nodes=BUDGET, dynamic_reorder=True
        )
        assert mgr.reorderings >= 1
        assert mgr.live_nodes() <= BUDGET
        mgr.check_invariants()
        # Dynamic reordering is a construction-time tool: the returned
        # manager is back under ordinary root discipline.
        assert mgr.reorder_threshold is None
        assert mgr.protected_edges() == []
        # The function is the comparator, order notwithstanding.
        reference, expected_root = supernode_bdd(
            net, "y", {"y"}, list(net.inputs), max_nodes=None
        )
        names = list(net.inputs)
        for trial in range(1 << 8):
            assignment = {
                name: bool(trial >> (i % 8) & (i // 8 + 1) & 1)
                for i, name in enumerate(names)
            }
            assert mgr.eval(root, assignment) == reference.eval(
                expected_root, assignment
            )

    def test_budget_guard_rescue_counts_as_reordering(self):
        """A cone rescued solely by the budget guard (the threshold
        never fires) must still report its reorder in telemetry."""
        net = separated_comparator()
        mgr, root = supernode_bdd(
            net,
            "y",
            {"y"},
            list(net.inputs),
            max_nodes=BUDGET,
            dynamic_reorder=True,
            reorder_threshold=10_000,  # kernels never trigger
        )
        assert mgr.reorderings >= 1
        assert mgr.live_nodes() <= BUDGET
        mgr.check_invariants()
        assert mgr.size(root) <= BUDGET

    def test_dynamic_respects_budget_for_truly_oversized_cones(self):
        """A cone too large under *every* order still raises: dynamic
        reordering rescues bad orders, it does not lift the budget."""
        net = separated_comparator(4)
        with pytest.raises(BddSizeExceeded):
            supernode_bdd(
                net, "y", {"y"}, list(net.inputs), max_nodes=5, dynamic_reorder=True
            )


class TestPartitionRescue:
    def test_demoted_cluster_survives_with_dynamic(self):
        net = comparator_tree()
        static = partition_with_bdds(
            net, PartitionConfig(max_support=2 * PAIRS, max_bdd_nodes=BUDGET)
        )
        dynamic = partition_with_bdds(
            net,
            PartitionConfig(
                max_support=2 * PAIRS, max_bdd_nodes=BUDGET, dynamic_reorder=True
            ),
        )
        # Static: the collapsed cluster overflows and shatters into
        # one singleton per member.  Dynamic: one supernode survives.
        assert len(static) == PAIRS + 1
        assert len(dynamic) == 1
        supernode, mgr, root = dynamic[0]
        assert supernode.output == "y"
        assert mgr.reorderings >= 1
        assert mgr.size(root) <= BUDGET

    def test_dynamic_flow_output_is_equivalent(self):
        net = comparator_tree()
        config = BdsFlowConfig(reorder="dynamic", verify=True)
        config.partition = PartitionConfig(
            max_support=2 * PAIRS, max_bdd_nodes=BUDGET, dynamic_reorder=True
        )
        optimized, counts, trace = bds_optimize(net, config)
        assert trace.supernodes == 1
        assert trace.reorderings >= 1
        assert sum(counts.values()) > 0
        assert check_equivalence(net, optimized).equivalent

    def test_policy_derives_partition_dynamic_flag(self):
        """``reorder="dynamic"`` alone must arm construction-time
        reordering — callers should not have to set the partition flag
        themselves."""
        net = comparator_tree()
        config = BdsFlowConfig(reorder="dynamic", verify=False)
        config.partition = PartitionConfig(
            max_support=2 * PAIRS, max_bdd_nodes=BUDGET
        )
        _optimized, _counts, trace = bds_optimize(net, config)
        assert trace.supernodes == 1
        assert trace.reorderings >= 1
