"""Tests for the structural Verilog writer."""

from __future__ import annotations

from repro.benchgen import ripple_carry_adder
from repro.network import LogicNetwork, to_verilog


class TestVerilogWriter:
    def test_module_skeleton(self):
        net = ripple_carry_adder(2, name="adder2")
        text = to_verilog(net)
        assert text.startswith("module adder2 (")
        assert text.rstrip().endswith("endmodule")
        assert "input a0, a1, b0, b1;" in text
        assert "output" in text

    def test_every_node_assigned(self):
        net = ripple_carry_adder(3)
        text = to_verilog(net)
        for name in net.node_names:
            assert f"assign {name} =" in text

    def test_gate_expressions(self):
        net = LogicNetwork("gates")
        for name in "abc":
            net.add_input(name)
        net.add_and("g_and", "a", "b")
        net.add_or("g_or", "a", "b")
        net.add_xor("g_xor", "a", "b")
        net.add_nand("g_nand", "a", "b")
        net.add_not("g_not", "a")
        net.add_maj("g_maj", "a", "b", "c")
        net.add_const("g_one", True)
        net.add_const("g_zero", False)
        for name in list(net.node_names):
            net.add_output(name)
        text = to_verilog(net)
        assert "assign g_and = (a & b);" in text
        assert "assign g_or = a | b;" in text
        assert "assign g_xor = (a & ~b) | (~a & b);" in text
        assert "assign g_nand = ~((a & b));" in text
        assert "assign g_not = ~a;" in text
        assert "assign g_maj = (a & b) | (a & c) | (b & c);" in text
        assert "assign g_one = 1'b1;" in text
        assert "assign g_zero = 1'b0;" in text

    def test_escaped_identifiers(self):
        net = LogicNetwork("esc")
        net.add_input("weird.name")
        net.add_buf("ok_name", "weird.name")
        net.add_output("ok_name")
        text = to_verilog(net)
        assert "\\weird.name " in text

    def test_wire_declarations_exclude_outputs(self):
        net = ripple_carry_adder(2)
        text = to_verilog(net)
        wire_lines = [l for l in text.splitlines() if l.strip().startswith("wire")]
        declared = " ".join(wire_lines)
        for output in net.outputs:
            assert f" {output}," not in declared and not declared.endswith(output + ";")
