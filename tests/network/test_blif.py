"""Tests for BLIF parsing and writing."""

from __future__ import annotations

import pytest

from repro.network import BlifError, LogicNetwork, parse_blif, to_blif

SAMPLE = """
# full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b t
10 1
01 1
.names t cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


class TestParse:
    def test_parse_sample(self):
        net = parse_blif(SAMPLE)
        assert net.name == "fa"
        assert net.inputs == ("a", "b", "cin")
        assert net.outputs == ("sum", "cout")
        assert net.num_nodes == 3

    def test_parsed_function_correct(self):
        net = parse_blif(SAMPLE)
        for vector in range(8):
            stimulus = {
                "a": vector & 1,
                "b": vector >> 1 & 1,
                "cin": vector >> 2 & 1,
            }
            total = sum(stimulus.values())
            values = net.simulate(stimulus, 1)
            assert values["sum"] == total % 2
            assert values["cout"] == int(total >= 2)

    def test_output_zero_rows(self):
        text = """
.model inv
.inputs a b
.outputs n
.names a b n
11 0
.end
"""
        net = parse_blif(text)
        assert net.node("n").inverted
        assert net.simulate({"a": 1, "b": 1}, 1)["n"] == 0
        assert net.simulate({"a": 0, "b": 1}, 1)["n"] == 1

    def test_constant_nodes(self):
        text = """
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
        net = parse_blif(text)
        values = net.simulate({"a": 0}, 2)
        assert values["one"] == 0b11
        assert values["zero"] == 0

    def test_continuation_lines(self):
        text = (
            ".model cont\n.inputs a b \\\nc\n.outputs o\n"
            ".names a b c o\n111 1\n.end\n"
        )
        net = parse_blif(text)
        assert net.inputs == ("a", "b", "c")

    def test_mixed_polarity_rejected(self):
        text = """
.model bad
.inputs a
.outputs n
.names a n
1 1
0 0
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_latch_rejected(self):
        text = ".model seq\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_row_outside_names_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model x\n.inputs a\n11 1\n.end\n")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(BlifError):
            parse_blif(".model x\n.inputs a\n.outputs n\n.names a n\n11 1\n.end\n")


class TestRoundTrip:
    def test_write_then_parse_preserves_function(self):
        net = parse_blif(SAMPLE)
        text = to_blif(net)
        reparsed = parse_blif(text)
        assert reparsed.inputs == net.inputs
        assert reparsed.outputs == net.outputs
        for vector in range(8):
            stimulus = {
                "a": vector & 1,
                "b": vector >> 1 & 1,
                "cin": vector >> 2 & 1,
            }
            assert net.simulate(stimulus, 1) == reparsed.simulate(stimulus, 1)

    def test_inverted_and_constant_round_trip(self):
        net = LogicNetwork("edge_cases")
        net.add_input("a")
        net.add_input("b")
        net.add_nand("n", "a", "b")
        net.add_const("k1", True)
        net.add_const("k0", False)
        net.add_and("o", "n", "k1")
        net.add_output("o")
        net.add_output("k0")
        reparsed = parse_blif(to_blif(net))
        for vector in range(4):
            stimulus = {"a": vector & 1, "b": vector >> 1 & 1}
            assert net.simulate(stimulus, 1) == reparsed.simulate(stimulus, 1)

    def test_long_input_list_wraps(self):
        net = LogicNetwork("wide")
        names = [f"in_{i}" for i in range(40)]
        for name in names:
            net.add_input(name)
        net.add_or("o", *names)
        net.add_output("o")
        text = to_blif(net)
        assert any(line.endswith("\\") for line in text.splitlines())
        reparsed = parse_blif(text)
        assert reparsed.inputs == tuple(names)


class TestHardening:
    """Edge cases a served/batched front end turns user-visible."""

    def test_bare_output_value_row_means_all_dont_cares(self):
        # Some writers emit a lone output value for a tautology row;
        # it is equivalent to an explicit all-don't-care pattern — but
        # it is also what a truncated row looks like, so it warns.
        from repro.network import BlifWarning

        with pytest.warns(BlifWarning, match="bare output value row"):
            net = parse_blif(
                ".model t\n.inputs a b\n.outputs y\n.names a b y\n1\n.end\n"
            )
        node = net.node("y")
        assert node.cover == ("--",)
        explicit = parse_blif(
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n-- 1\n.end\n"
        )
        assert explicit.node("y").cover == node.cover
        for a in (0, 1):
            for b in (0, 1):
                assert net.simulate({"a": a, "b": b}, 1)["y"] == 1

    def test_explicit_dont_care_only_pattern_accepted(self):
        net = parse_blif(
            ".model t\n.inputs a b c\n.outputs y\n.names a b c y\n--- 0\n.end\n"
        )
        assert net.simulate({"a": 1, "b": 0, "c": 1}, 1)["y"] == 0

    def test_three_token_row_still_rejected(self):
        with pytest.raises(BlifError, match="malformed cover row"):
            parse_blif(
                ".model t\n.inputs a b\n.outputs y\n.names a b y\n1 0 1\n.end\n"
            )

    def test_duplicate_names_is_clear_error(self):
        text = (
            ".model t\n.inputs a b\n.outputs y\n"
            ".names a y\n1 1\n"
            ".names b y\n1 1\n"
            ".end\n"
        )
        with pytest.raises(BlifError, match="duplicate .names definition for signal 'y'"):
            parse_blif(text)

    def test_missing_end_warns_but_parses(self):
        from repro.network import BlifWarning

        text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n"
        with pytest.warns(BlifWarning, match="no .end directive"):
            net = parse_blif(text)
        assert net.simulate({"a": 1}, 1)["y"] == 1

    def test_present_end_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            parse_blif(SAMPLE)

    def test_written_blif_always_has_end(self):
        import warnings

        net = parse_blif(SAMPLE)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = parse_blif(to_blif(net))
        assert again.num_nodes == net.num_nodes
