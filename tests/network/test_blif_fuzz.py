"""Property-based fuzzing of the BLIF round trip.

Hypothesis generates random small networks; writing them to BLIF and
parsing the text back must reproduce the interface and the function
exactly (checked by exhaustive simulation).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import LogicNetwork, exhaustive_equivalent, parse_blif, to_blif


@st.composite
def random_networks(draw):
    num_inputs = draw(st.integers(min_value=1, max_value=5))
    network = LogicNetwork("fuzz")
    signals = [network.add_input(f"i{i}") for i in range(num_inputs)]
    num_nodes = draw(st.integers(min_value=1, max_value=8))
    for index in range(num_nodes):
        arity = draw(st.integers(min_value=0, max_value=min(3, len(signals))))
        fanins = draw(
            st.lists(
                st.sampled_from(signals),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        max_rows = min(4, 3 ** len(fanins))
        num_rows = draw(st.integers(min_value=0, max_value=max_rows))
        rows = draw(
            st.lists(
                st.text(alphabet="01-", min_size=len(fanins), max_size=len(fanins)),
                min_size=num_rows,
                max_size=num_rows,
                unique=True,
            )
        )
        inverted = draw(st.booleans())
        name = f"n{index}"
        network.add_node(name, tuple(fanins), tuple(rows), inverted)
        signals.append(name)
    # Choose at least one output among the created nodes.
    available = len(signals) - num_inputs
    num_outputs = draw(st.integers(min_value=1, max_value=min(3, available)))
    outputs = draw(
        st.lists(
            st.sampled_from(signals[num_inputs:]),
            min_size=num_outputs,
            max_size=num_outputs,
            unique=True,
        )
    )
    for name in outputs:
        network.add_output(name)
    return network


@settings(max_examples=120, deadline=None)
@given(network=random_networks())
def test_property_blif_round_trip(network):
    text = to_blif(network)
    reparsed = parse_blif(text)
    assert reparsed.inputs == network.inputs
    assert set(reparsed.outputs) == set(network.outputs)
    assert exhaustive_equivalent(network, reparsed).equivalent


@settings(max_examples=60, deadline=None)
@given(network=random_networks())
def test_property_double_round_trip_stable(network):
    once = to_blif(parse_blif(to_blif(network)))
    twice = to_blif(parse_blif(once))
    assert once == twice
