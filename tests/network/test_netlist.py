"""Tests for the LogicNetwork core: construction, structure, simulation."""

from __future__ import annotations

import pytest

from repro.network import LogicNetwork, NetworkError


def full_adder() -> LogicNetwork:
    net = LogicNetwork("full_adder")
    for name in ("a", "b", "cin"):
        net.add_input(name)
    net.add_xor("ab", "a", "b")
    net.add_xor("sum", "ab", "cin")
    net.add_maj("cout", "a", "b", "cin")
    net.add_output("sum")
    net.add_output("cout")
    return net


class TestConstruction:
    def test_duplicate_signal_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("a", (), ())

    def test_cover_row_length_checked(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("n", ("a",), ("11",))

    def test_cover_characters_checked(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("n", ("a",), ("x",))

    def test_replace_node(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_buf("n", "a")
        net.replace_node("n", ("a",), ("0",))
        assert net.node("n").cover == ("0",)

    def test_literal_count(self):
        net = full_adder()
        # xor: 2 rows x 2 lits = 4 each; maj: 3 rows x 2 lits = 6.
        assert net.num_literals == 4 + 4 + 6


class TestStructure:
    def test_topological_order(self):
        net = full_adder()
        order = net.topological_order()
        assert order.index("ab") < order.index("sum")

    def test_cycle_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_node("x", ("a", "y"), ("11",))
        net.add_node("y", ("x",), ("1",))
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_undefined_fanin_detected(self):
        net = LogicNetwork()
        net.add_node("x", ("ghost",), ("1",))
        with pytest.raises(NetworkError):
            net.topological_order()

    def test_undefined_output_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_output("ghost")
        with pytest.raises(NetworkError):
            net.validate()

    def test_deep_network_no_recursion_limit(self):
        # Iterative topological sort must handle very deep chains.
        net = LogicNetwork()
        net.add_input("x0")
        for i in range(5000):
            net.add_not(f"x{i + 1}", f"x{i}")
        net.add_output("x5000")
        assert len(net.topological_order()) == 5000

    def test_support_and_fanin_cone(self):
        net = full_adder()
        assert net.support_of(["sum"]) == {"a", "b", "cin"}
        assert net.transitive_fanin(["sum"]) == {"ab", "sum"}

    def test_depth(self):
        net = full_adder()
        assert net.depth() == 2

    def test_fanouts(self):
        net = full_adder()
        fanouts = net.fanouts()
        assert set(fanouts["a"]) == {"ab", "cout"}
        assert fanouts["ab"] == ["sum"]


class TestGateHelpers:
    @pytest.mark.parametrize(
        "builder,model",
        [
            ("add_and", lambda a, b: a & b),
            ("add_or", lambda a, b: a | b),
            ("add_nand", lambda a, b: not (a and b)),
            ("add_nor", lambda a, b: not (a or b)),
            ("add_xor", lambda a, b: a != b),
            ("add_xnor", lambda a, b: a == b),
        ],
    )
    def test_two_input_gates(self, builder, model):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        getattr(net, builder)("g", "a", "b")
        net.add_output("g")
        for a in (0, 1):
            for b in (0, 1):
                result = net.simulate({"a": a, "b": b}, 1)["g"]
                assert result == int(bool(model(a, b)))

    def test_maj_gate(self):
        net = LogicNetwork()
        for name in "abc":
            net.add_input(name)
        net.add_maj("m", "a", "b", "c")
        net.add_output("m")
        for vector in range(8):
            stimulus = {"a": vector & 1, "b": vector >> 1 & 1, "c": vector >> 2 & 1}
            expected = int(sum(stimulus.values()) >= 2)
            assert net.simulate(stimulus, 1)["m"] == expected

    def test_mux_gate(self):
        net = LogicNetwork()
        for name in ("s", "t", "e"):
            net.add_input(name)
        net.add_mux("m", "s", "t", "e")
        net.add_output("m")
        for vector in range(8):
            stimulus = {"s": vector & 1, "t": vector >> 1 & 1, "e": vector >> 2 & 1}
            expected = stimulus["t"] if stimulus["s"] else stimulus["e"]
            assert net.simulate(stimulus, 1)["m"] == expected

    def test_constants(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_const("one", True)
        net.add_const("zero", False)
        net.add_output("one")
        net.add_output("zero")
        values = net.simulate({"a": 0}, 4)
        assert values["one"] == 0b1111
        assert values["zero"] == 0


class TestSimulation:
    def test_bit_parallel_matches_scalar(self):
        net = full_adder()
        width = 8
        stimulus = {"a": 0b10110100, "b": 0b01110010, "cin": 0b11001010}
        packed = net.simulate(stimulus, width)
        for offset in range(width):
            bits = {k: v >> offset & 1 for k, v in stimulus.items()}
            total = bits["a"] + bits["b"] + bits["cin"]
            assert packed["sum"] >> offset & 1 == total % 2
            assert packed["cout"] >> offset & 1 == int(total >= 2)

    def test_missing_stimulus_rejected(self):
        net = full_adder()
        with pytest.raises(NetworkError):
            net.simulate({"a": 1, "b": 0}, 1)

    def test_inverted_cover(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("n", ("a", "b"), ("11",), inverted=True)  # NAND
        net.add_output("n")
        assert net.simulate({"a": 1, "b": 1}, 1)["n"] == 0
        assert net.simulate({"a": 0, "b": 1}, 1)["n"] == 1


class TestCleanup:
    def test_sweep_dangling(self):
        net = full_adder()
        net.add_and("unused", "a", "b")
        assert net.sweep_dangling() == 1
        assert "unused" not in net.node_names

    def test_copy_is_deep_enough(self):
        net = full_adder()
        dup = net.copy()
        dup.remove_node("cout")
        assert "cout" in net.node_names
        assert "cout" not in dup.node_names
