"""Tests for dominator classification and balanced XOR splitting."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BDD,
    KIND_AND,
    KIND_OR,
    KIND_XOR,
    best_simple_decomposition,
    find_simple_decompositions,
    simple_dominator_nodes,
    xor_split,
)

from ..conftest import random_function


def _check_decomposition(mgr: BDD, root: int, decomposition) -> None:
    """Re-verify the certified identity."""
    if decomposition.kind == KIND_AND:
        rebuilt = mgr.and_(decomposition.upper, decomposition.lower)
    elif decomposition.kind == KIND_OR:
        rebuilt = mgr.or_(decomposition.upper, decomposition.lower)
    else:
        rebuilt = mgr.xor(decomposition.upper, decomposition.lower)
    assert rebuilt == root


class TestSimpleDominators:
    def test_conjunction_yields_and_decomposition(self, mgr):
        f = mgr.from_expr("(a | b) & (c | d)")
        kinds = {d.kind for d in find_simple_decompositions(mgr, f)}
        assert KIND_AND in kinds

    def test_disjunction_yields_or_decomposition(self, mgr):
        f = mgr.from_expr("(a & b) | (c & d)")
        kinds = {d.kind for d in find_simple_decompositions(mgr, f)}
        assert KIND_OR in kinds

    def test_xor_yields_xor_decomposition(self, mgr):
        f = mgr.from_expr("(a & b) ^ (c | d)")
        decompositions = find_simple_decompositions(mgr, f)
        xors = [d for d in decompositions if d.kind == KIND_XOR]
        assert xors
        for d in xors:
            _check_decomposition(mgr, f, d)

    def test_xnor_folds_into_xor(self, mgr):
        f = mgr.from_expr("~((a & b) ^ (c | d))")
        decompositions = find_simple_decompositions(mgr, f)
        assert any(d.kind == KIND_XOR for d in decompositions)
        for d in decompositions:
            _check_decomposition(mgr, f, d)

    def test_all_reported_decompositions_verify(self, mgr):
        rng = random.Random(53)
        for _ in range(40):
            f = random_function(mgr, "abcde", rng)
            if mgr.is_constant(f):
                continue
            for d in find_simple_decompositions(mgr, f):
                _check_decomposition(mgr, f, d)

    def test_majority_has_no_simple_dominator_decomposition(self, mgr):
        """MAJ(a,b,c) is the paper's motivating function: BDS's simple
        dominators cannot break it (that is why m-dominators exist)."""
        f = mgr.from_expr("a & b | b & c | a & c")
        useful = [
            d
            for d in find_simple_decompositions(mgr, f)
            if not mgr.is_constant(d.upper) and not mgr.is_constant(d.lower)
            and mgr.size(d.upper) > 1 and mgr.size(d.lower) >= 1
        ]
        # The only certified decompositions involve trivial (literal)
        # parts that make no structural progress.
        best = best_simple_decomposition(mgr, f)
        if best is not None:
            _check_decomposition(mgr, f, best)

    def test_simple_dominator_nodes_subset_of_cuts(self, mgr):
        f = mgr.from_expr("(a | b) & (c ^ d)")
        nodes = simple_dominator_nodes(mgr, f)
        reachable = set(mgr.nodes_reachable([f]))
        assert nodes <= reachable


class TestBestDecomposition:
    def test_best_prefers_balanced_split(self, mgr):
        f = mgr.from_expr("(a ^ b) & (c ^ d)")
        best = best_simple_decomposition(mgr, f)
        assert best is not None
        assert best.kind == KIND_AND
        _check_decomposition(mgr, f, best)
        upper_size = mgr.size(best.upper)
        lower_size = mgr.size(best.lower)
        assert abs(upper_size - lower_size) <= 1

    def test_best_requires_progress(self, mgr):
        # Constants and literals admit no decomposition.
        assert best_simple_decomposition(mgr, mgr.var("a")) is None

    def test_best_none_for_constant(self, mgr):
        assert best_simple_decomposition(mgr, mgr.ONE) is None


class TestXorSplit:
    def test_split_of_constant(self, mgr):
        m, k = xor_split(mgr, mgr.ZERO)
        assert mgr.xor(m, k) == mgr.ZERO

    def test_split_of_literal(self, mgr):
        f = mgr.var("a")
        m, k = xor_split(mgr, f)
        assert mgr.xor(m, k) == f

    def test_paper_balancing_example(self, mgr):
        # Section III.D: (b + c) xor (bc) = b xor c, which splits into
        # M, K with {M, K} = {b, c} (possibly via the v-split b·1 ⊕ b'·c).
        fx = mgr.from_expr("(b | c) ^ (b & c)")
        assert fx == mgr.from_expr("b ^ c")
        m, k = xor_split(mgr, fx)
        assert mgr.xor(m, k) == fx
        assert mgr.size(m) <= 2 and mgr.size(k) <= 2

    def test_split_is_always_valid(self, mgr):
        rng = random.Random(59)
        for _ in range(40):
            f = random_function(mgr, "abcde", rng)
            m, k = xor_split(mgr, f)
            assert mgr.xor(m, k) == f

    def test_split_balance_quality(self, mgr):
        # A function with an obvious disjoint XOR structure must split
        # into parts strictly smaller than the whole.
        f = mgr.from_expr("(a & b) ^ (c & d) ^ e")
        m, k = xor_split(mgr, f)
        assert mgr.xor(m, k) == f
        assert max(mgr.size(m), mgr.size(k)) < mgr.size(f)


@settings(max_examples=100, deadline=None)
@given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_property_xor_split_identity(table):
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    m, k = xor_split(mgr, f)
    assert mgr.xor(m, k) == f


@settings(max_examples=100, deadline=None)
@given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_property_all_decompositions_certified(table):
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    if mgr.is_constant(f):
        return
    for decomposition in find_simple_decompositions(mgr, f):
        if decomposition.kind == KIND_AND:
            rebuilt = mgr.and_(decomposition.upper, decomposition.lower)
        elif decomposition.kind == KIND_OR:
            rebuilt = mgr.or_(decomposition.upper, decomposition.lower)
        else:
            rebuilt = mgr.xor(decomposition.upper, decomposition.lower)
        assert rebuilt == f
