"""Tests for quantification, cube enumeration and BDD-based ISOP."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BDD,
    bdd_isop,
    count_paths,
    exists,
    forall,
    isop_cover_rows,
    iter_cubes,
)

from ..conftest import all_assignments, random_function


class TestQuantification:
    def test_exists_definition(self, mgr):
        rng = random.Random(131)
        for _ in range(25):
            f = random_function(mgr, "abcd", rng)
            for name in "abcd":
                level = mgr.level_of(name)
                expected = mgr.or_(
                    mgr.cofactor(f, level, True), mgr.cofactor(f, level, False)
                )
                assert exists(mgr, f, [name]) == expected

    def test_forall_definition(self, mgr):
        rng = random.Random(137)
        for _ in range(25):
            f = random_function(mgr, "abcd", rng)
            for name in "abcd":
                level = mgr.level_of(name)
                expected = mgr.and_(
                    mgr.cofactor(f, level, True), mgr.cofactor(f, level, False)
                )
                assert forall(mgr, f, [name]) == expected

    def test_multi_variable_order_independent(self, mgr):
        f = mgr.from_expr("a & b | c & ~d")
        assert exists(mgr, f, ["a", "c"]) == exists(mgr, f, ["c", "a"])

    def test_quantified_variable_leaves_support(self, mgr):
        f = mgr.from_expr("a & b | c")
        assert "a" not in mgr.support(exists(mgr, f, ["a"]))
        assert "a" not in mgr.support(forall(mgr, f, ["a"]))

    def test_duality(self, mgr):
        rng = random.Random(139)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            assert forall(mgr, f, ["b"]) == exists(mgr, f ^ 1, ["b"]) ^ 1


class TestIterCubes:
    def test_cubes_cover_exactly_the_function(self, mgr):
        rng = random.Random(149)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            rebuilt = mgr.or_many(mgr.cube(cube) for cube in iter_cubes(mgr, f))
            assert rebuilt == f

    def test_constant_cubes(self, mgr):
        assert list(iter_cubes(mgr, mgr.ZERO)) == []
        assert list(iter_cubes(mgr, mgr.ONE)) == [{}]

    def test_count_paths_matches_enumeration(self, mgr):
        rng = random.Random(151)
        for _ in range(20):
            f = random_function(mgr, "abcde", rng)
            assert count_paths(mgr, f) == len(list(iter_cubes(mgr, f)))


class TestBddIsop:
    def test_isop_equals_function(self, mgr):
        rng = random.Random(157)
        for _ in range(30):
            f = random_function(mgr, "abcd", rng)
            cover, cubes = bdd_isop(mgr, f)
            assert cover == f
            rebuilt = mgr.or_many(
                mgr.cube({mgr.name_of(level): phase for level, phase in cube.items()})
                for cube in cubes
            )
            assert rebuilt == f

    def test_isop_rows_positional(self, mgr):
        f = mgr.from_expr("a & b | ~a & c")
        rows = isop_cover_rows(mgr, f, ["a", "b", "c"])
        # Evaluate the rows directly.
        for assignment in all_assignments("abc"):
            row_value = any(
                all(
                    ch == "-" or (ch == "1") == assignment[name]
                    for ch, name in zip(row, ["a", "b", "c"])
                )
                for row in rows
            )
            assert row_value == mgr.eval(f, assignment)

    def test_isop_is_compact_on_unate_functions(self, mgr):
        # A unate function's ISOP equals its set of prime paths.
        f = mgr.from_expr("a & b | b & c | a & c")
        _, cubes = bdd_isop(mgr, f)
        assert len(cubes) == 3
        assert all(len(cube) == 2 for cube in cubes)


@settings(max_examples=100, deadline=None)
@given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_property_bdd_isop_round_trip(table):
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    cover, _ = bdd_isop(mgr, f)
    assert cover == f


@settings(max_examples=100, deadline=None)
@given(
    table=st.integers(min_value=0, max_value=(1 << 16) - 1),
    subset=st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3),
)
def test_property_quantification_bounds(table, subset):
    """forall f <= f <= exists f (pointwise, over quantified vars)."""
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    e = exists(mgr, f, subset)
    a = forall(mgr, f, subset)
    assert mgr.implies(a, f) == mgr.ONE
    assert mgr.implies(f, e) == mgr.ONE
