"""Shared-memory BDD arena: publish/attach round trips, copy-on-miss
imports, binding validation, and lifecycle hygiene."""

from __future__ import annotations

import itertools

import pytest

from repro.bdd import BDD, BddArena
from repro.bdd.arena import ArenaError, attach_worker_arena, current_arena


def _truth(mgr: BDD, edge: int, names: list[str]) -> list[bool]:
    return [
        mgr.eval(edge, dict(zip(names, bits)))
        for bits in itertools.product((0, 1), repeat=len(names))
    ]


def _sample_manager() -> tuple[BDD, dict[str, int]]:
    mgr = BDD(["a", "b", "c"])
    a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
    return mgr, {
        "f": mgr.and_(a, mgr.or_(b, c)),
        "g": mgr.xor(a, mgr.xor(b, c)),
    }


class TestRoundTrip:
    def test_published_cones_rebuild_identically(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            attached = BddArena.attach(arena.name)
            try:
                assert attached.keys() == ["f", "g"]
                assert "f" in attached and "missing" not in attached
                target = attached.manager()
                binding = attached.binding(target)
                names = list(source.var_names)
                for key, edge in roots.items():
                    rebuilt = binding.copy(key)
                    assert _truth(target, rebuilt, names) == _truth(
                        source, edge, names
                    )
                target.check_invariants()
            finally:
                attached.close()
        finally:
            arena.unlink()

    def test_import_memo_hits_and_bypasses_op_cache(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            target = arena.manager()
            binding = arena.binding(target)
            first = binding.copy("f")
            assert binding.misses == 1 and binding.hits == 0
            imported = binding.imported_nodes()
            # Copying the same cone again touches only the memo.
            assert binding.copy("f") == first
            assert binding.hits == 1
            assert binding.imported_nodes() == imported
            # The copy path goes through _mk only: synthesis-visible
            # op-cache counters must stay untouched (the byte-identity
            # contract of served reports depends on this).
            stats = target.cache_stats()
            assert stats["hits"] == 0 and stats["misses"] == 0
        finally:
            arena.unlink()

    def test_copy_into_manager_with_interleaved_extra_vars(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            target = BDD(["a", "x", "b", "c", "y"])
            binding = arena.binding(target)
            names = list(source.var_names)
            for key, edge in roots.items():
                assert _truth(target, binding.copy(key), names) == _truth(
                    source, edge, names
                )
        finally:
            arena.unlink()


class TestValidation:
    def test_binding_rejects_reordered_target(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            with pytest.raises(ArenaError, match="order incompatible"):
                arena.binding(BDD(["c", "b", "a"]))
        finally:
            arena.unlink()

    def test_unknown_root_key_raises(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            binding = arena.binding(arena.manager())
            with pytest.raises(ArenaError, match="no root"):
                binding.copy("nope")
        finally:
            arena.unlink()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(OSError):
            BddArena.attach("bdsmaj-test-no-such-arena")


class TestWorkerAttachment:
    def test_attach_failure_degrades_to_none(self):
        attach_worker_arena("bdsmaj-test-no-such-arena")
        assert current_arena() is None

    def test_attach_detach_cycle(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            attach_worker_arena(arena.name)
            assert current_arena() is not None
            assert current_arena().keys() == ["f", "g"]
        finally:
            attach_worker_arena(None)
            assert current_arena() is None
            arena.unlink()

    def test_owner_view_can_be_installed_directly(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        try:
            attach_worker_arena(arena)
            assert current_arena() is arena
        finally:
            attach_worker_arena(None)
            # Detach closed the owner view; unlink must still succeed.
            arena.unlink()


class TestLifecycle:
    def test_close_is_idempotent_and_unlink_destroys(self):
        source, roots = _sample_manager()
        arena = BddArena.publish(source, roots)
        name = arena.name
        arena.close()
        arena.close()
        arena.unlink()
        with pytest.raises(OSError):
            BddArena.attach(name)
