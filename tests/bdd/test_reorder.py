"""Tests for variable reordering (the :mod:`repro.bdd.reorder` facade:
in-place sifting behind the historical ``sift`` signature, plus the
rebuild-based ``reorder`` construction).  The in-place machinery's own
property tests live in ``test_sift_inplace.py``."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BDD, reorder, sift

from ..conftest import all_assignments, random_function


class TestReorder:
    def test_reorder_preserves_function(self):
        mgr = BDD(["a", "b", "c", "d"])
        f = mgr.from_expr("a & c | b & d")
        new_mgr, (g,) = reorder(mgr, [f], ["a", "c", "b", "d"])
        for assignment in all_assignments("abcd"):
            assert mgr.eval(f, assignment) == new_mgr.eval(g, assignment)

    def test_reorder_rejects_non_permutation(self):
        mgr = BDD(["a", "b"])
        with pytest.raises(ValueError):
            reorder(mgr, [mgr.var("a")], ["a"])

    def test_interleaving_shrinks_comparator(self):
        """The classic (a1&b1)|(a2&b2)|(a3&b3) example: the grouped order
        is exponentially better than the separated order."""
        separated = BDD(["a1", "a2", "a3", "b1", "b2", "b3"])
        f = separated.from_expr("a1 & b1 | a2 & b2 | a3 & b3")
        bad_size = separated.size(f)
        good_mgr, (g,) = reorder(
            separated, [f], ["a1", "b1", "a2", "b2", "a3", "b3"]
        )
        assert good_mgr.size(g) < bad_size


class TestSift:
    def test_sift_never_worsens(self):
        rng = random.Random(61)
        for _ in range(10):
            mgr = BDD(list("abcdef"))
            f = random_function(mgr, "abcdef", rng, depth=5)
            before = mgr.size(f)
            new_mgr, (g,) = sift(mgr, [f])
            assert new_mgr.size(g) <= before

    def test_sift_preserves_function(self):
        rng = random.Random(67)
        mgr = BDD(list("abcde"))
        f = random_function(mgr, "abcde", rng, depth=5)
        new_mgr, (g,) = sift(mgr, [f])
        for assignment in all_assignments("abcde"):
            assert mgr.eval(f, assignment) == new_mgr.eval(g, assignment)

    def test_sift_finds_interleaved_order(self):
        mgr = BDD(["a1", "a2", "a3", "b1", "b2", "b3"])
        f = mgr.from_expr("a1 & b1 | a2 & b2 | a3 & b3")
        new_mgr, (g,) = sift(mgr, [f])
        # Optimal size for n=3 comparator-style function is 6 nodes.
        assert new_mgr.size(g) <= 7

    def test_sift_skips_oversized_inputs(self):
        mgr = BDD(list("ab"))
        f = mgr.from_expr("a & b")
        same_mgr, roots = sift(mgr, [f], max_vars=1)
        assert same_mgr is mgr
        assert roots == [f]

    def test_sift_multiple_roots_consistent(self):
        mgr = BDD(list("abcd"))
        f = mgr.from_expr("a & c")
        g = mgr.from_expr("b | d")
        new_mgr, (f2, g2) = sift(mgr, [f, g])
        for assignment in all_assignments("abcd"):
            assert mgr.eval(f, assignment) == new_mgr.eval(f2, assignment)
            assert mgr.eval(g, assignment) == new_mgr.eval(g2, assignment)
