"""Tests for the unified, size-bounded operation cache."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BDD, OperationCache, exists
from repro.bdd.manager import DEFAULT_CACHE_CAPACITY

from ..conftest import all_assignments, random_function


class TestOperationCache:
    def test_counters_start_at_zero(self):
        cache = OperationCache()
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
            "capacity": DEFAULT_CACHE_CAPACITY,
            "policy": "fifo",
            "hit_rate": 0.0,
        }

    def test_get_put_counts(self):
        cache = OperationCache(capacity=8)
        assert cache.get((0, 1, 2)) is None
        cache.put((0, 1, 2), 42)
        assert cache.get((0, 1, 2)) == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_fifo_eviction_respects_bound(self):
        cache = OperationCache(capacity=3)
        for i in range(10):
            cache.put((0, i), i)
        assert len(cache) == 3
        assert cache.evictions == 7
        # FIFO: the three most recently inserted keys survive.
        assert cache.get((0, 9)) == 9
        assert cache.get((0, 0)) is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            OperationCache(capacity=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            OperationCache(policy="random")

    def test_clear_keeps_counters(self):
        cache = OperationCache()
        cache.put((0, 1), 2)
        cache.get((0, 1))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
        cache.reset_counters()
        assert cache.hits == 0


class TestLruPolicy:
    def test_hit_refreshes_recency(self):
        """An accessed entry survives an eviction that would have taken
        it under FIFO."""
        fifo = OperationCache(capacity=2, policy="fifo")
        lru = OperationCache(capacity=2, policy="lru")
        for cache in (fifo, lru):
            cache.put((0, 1), 10)
            cache.put((0, 2), 20)
            assert cache.get((0, 1)) == 10  # refresh (LRU only)
            cache.put((0, 3), 30)  # evicts one entry
        # FIFO evicts the oldest *inserted* key — the one just accessed.
        assert fifo.get((0, 1)) is None
        assert fifo.get((0, 2)) == 20
        # LRU evicts the least recently *used* key instead.
        assert lru.get((0, 1)) == 10
        assert lru.get((0, 2)) is None

    def test_counters_and_bound_still_hold(self):
        cache = OperationCache(capacity=3, policy="lru")
        for i in range(10):
            cache.put((0, i), i)
            cache.get((0, 0))
        assert len(cache) == 3
        assert cache.stats()["policy"] == "lru"
        assert cache.evictions > 0

    def test_manager_accepts_policy_and_results_match_fifo(self):
        """Eviction policy may change hit counts, never function values."""
        fifo_mgr = BDD(list("abcde"), cache_capacity=32, cache_policy="fifo")
        lru_mgr = BDD(list("abcde"), cache_capacity=32, cache_policy="lru")
        rng_a, rng_b = random.Random(11), random.Random(11)
        for _ in range(10):
            f_fifo = random_function(fifo_mgr, "abcde", rng_a, depth=4)
            f_lru = random_function(lru_mgr, "abcde", rng_b, depth=4)
            for assignment in all_assignments("abcde"):
                assert fifo_mgr.eval(f_fifo, assignment) == lru_mgr.eval(
                    f_lru, assignment
                )
        assert lru_mgr.cache_stats()["policy"] == "lru"

    def test_lru_deterministic_across_runs(self):
        """LRU recency is a pure function of the operation sequence, so
        two identical runs produce identical counters."""

        def run() -> dict[str, int | float]:
            mgr = BDD(list("abcdef"), cache_capacity=64, cache_policy="lru")
            rng = random.Random(7)
            for _ in range(12):
                random_function(mgr, "abcdef", rng, depth=5)
            return mgr.cache_stats()

        assert run() == run()


class TestManagerCacheStats:
    def test_repeated_ite_hits(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        mgr.and_(a, b)
        hits_before = mgr.cache_stats()["hits"]
        mgr.and_(a, b)
        after = mgr.cache_stats()
        assert after["hits"] == hits_before + 1
        assert 0.0 < after["hit_rate"] <= 1.0

    def test_commuted_and_shares_cache_entry(self, mgr):
        """The standard-triple fast path folds AND(a,b)/AND(b,a) together."""
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.and_(a, b)
        hits_before = mgr.cache_stats()["hits"]
        assert mgr.and_(b, a) == f
        assert mgr.cache_stats()["hits"] == hits_before + 1

    def test_commuted_or_and_xnor_share_entries(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.or_(a, b) == mgr.or_(b, a)
        assert mgr.xnor(a, b) == mgr.xnor(b, a)
        stats = mgr.cache_stats()
        assert stats["hits"] >= 2

    def test_cofactor_shares_unified_cache(self, mgr):
        f = mgr.from_expr("a & b & c | ~a & ~b & ~c")
        first = mgr.cofactor(f, mgr.level_of("c"), True)
        hits_before = mgr.cache_stats()["hits"]
        assert mgr.cofactor(f, mgr.level_of("c"), True) == first
        assert mgr.cache_stats()["hits"] >= hits_before + 1

    def test_exists_shares_unified_cache(self, mgr):
        f = mgr.from_expr("a & b | c & ~b")
        first = exists(mgr, f, ["b"])
        hits_before = mgr.cache_stats()["hits"]
        assert exists(mgr, f, ["b"]) == first
        assert mgr.cache_stats()["hits"] >= hits_before + 1

    def test_eviction_respects_size_bound(self):
        mgr = BDD(list("abcdefgh"), cache_capacity=16)
        rng = random.Random(3)
        for _ in range(20):
            random_function(mgr, "abcdefgh", rng, depth=5)
        stats = mgr.cache_stats()
        assert stats["entries"] <= 16
        assert stats["evictions"] > 0

    def test_tiny_cache_still_correct(self):
        """A capacity-2 cache thrashes but must never change results."""
        reference = BDD(list("abcde"))
        tiny = BDD(list("abcde"), cache_capacity=2)
        rng_a, rng_b = random.Random(23), random.Random(23)
        for _ in range(10):
            f_ref = random_function(reference, "abcde", rng_a, depth=4)
            f_tiny = random_function(tiny, "abcde", rng_b, depth=4)
            for assignment in all_assignments("abcde"):
                assert reference.eval(f_ref, assignment) == tiny.eval(
                    f_tiny, assignment
                )

    def test_clear_caches_preserves_functions(self, mgr):
        rng = random.Random(5)
        f = random_function(mgr, "abc", rng, depth=4)
        table_before = mgr.truth_table(f, "abc")
        mgr.clear_caches()
        assert mgr.cache_stats()["entries"] == 0
        g = mgr.and_(f, mgr.ONE)
        assert g == f
        assert mgr.truth_table(f, "abc") == table_before
