"""Property tests for the dynamic-reordering subsystem.

Three families of guarantees on top of the in-place engine:

* :meth:`BDD.sift_converge` — converging to a fixpoint preserves every
  root's function and the store invariants, never ends larger than a
  single pass from the same start, and respects ``max_passes``;
* :meth:`BDD.symmetry_groups` / :meth:`BDD.sift_groups` — detection
  agrees with brute-force truth-table swap equality on random
  functions, and group sifting preserves functions/invariants while
  leaving detected groups contiguous;
* growth-triggered auto-reordering — a construction that follows the
  :meth:`BDD.protect` contract produces the same functions as a static
  build, no matter where the threshold fires.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, BDDError, SiftResult

from ..conftest import all_assignments, random_function

NAMES = list("abcdef")

#: Wider space for the symmetry-vs-brute-force agreement suite (the
#: satellite task pins agreement on <= 10-variable random functions).
SYM_NAMES = [f"v{i}" for i in range(8)]


def _truth_vector(mgr: BDD, edge: int, names=NAMES) -> list[bool]:
    return [mgr.eval(edge, assignment) for assignment in all_assignments(names)]


@st.composite
def manager_with_roots(draw, names=NAMES, depth=5):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    num_roots = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(seed)
    mgr = BDD(names)
    roots = [random_function(mgr, names, rng, depth=depth) for _ in range(num_roots)]
    return mgr, roots


class TestSiftConverge:
    @settings(max_examples=40, deadline=None)
    @given(manager_with_roots())
    def test_preserves_function_and_invariants(self, built):
        mgr, roots = built
        before = [_truth_vector(mgr, root) for root in roots]
        result = mgr.sift_converge(roots)
        assert isinstance(result, SiftResult)
        assert result.final_size <= result.initial_size
        assert result.final_size == mgr.live_nodes()
        assert 1 <= result.passes <= 8
        mgr.check_invariants()
        for root, expected in zip(roots, before):
            assert _truth_vector(mgr, root) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_never_worse_than_single_pass(self, seed):
        """Every converge pass backtracks to the best position it saw,
        so the fixpoint can only improve on one pass from the same
        starting order."""
        rng = random.Random(seed)
        mgr_once = BDD(NAMES)
        f_once = random_function(mgr_once, NAMES, rng, depth=5)
        rng = random.Random(seed)
        mgr_conv = BDD(NAMES)
        f_conv = random_function(mgr_conv, NAMES, rng, depth=5)
        mgr_once.sift([f_once])
        result = mgr_conv.sift_converge([f_conv])
        assert mgr_conv.size(f_conv) <= mgr_once.size(f_once)
        assert result.final_size <= result.initial_size

    def test_fixpoint_is_stable(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c & f")
        first = mgr.sift_converge([f])
        again = mgr.sift_converge([f])
        # A second converge from the fixpoint stops after one idle pass.
        assert again.passes == 1
        assert again.final_size == first.final_size

    def test_max_passes_is_respected_and_validated(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c & f")
        result = mgr.sift_converge([f], max_passes=1)
        assert result.passes == 1
        with pytest.raises(BDDError):
            mgr.sift_converge([f], max_passes=0)


def _brute_force_groups(mgr: BDD, edge: int, names: list[str]) -> set[frozenset[str]]:
    """Symmetry partition by exhaustive cofactor-swap equality on the
    truth table: x and y are symmetric iff swapping their values never
    changes the function."""
    vectors = list(all_assignments(names))
    values = [mgr.eval(edge, assignment) for assignment in vectors]
    index = {
        tuple(assignment[n] for n in names): i for i, assignment in enumerate(vectors)
    }

    def symmetric(x: str, y: str) -> bool:
        for i, assignment in enumerate(vectors):
            swapped = dict(assignment)
            swapped[x], swapped[y] = swapped[y], swapped[x]
            if values[index[tuple(swapped[n] for n in names)]] != values[i]:
                return False
        return True

    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for i, x in enumerate(names):
        for y in names[i + 1 :]:
            root_x, root_y = find(x), find(y)
            if root_x != root_y and symmetric(x, y):
                parent[root_y] = root_x
    groups: dict[str, set[str]] = {}
    for name in names:
        groups.setdefault(find(name), set()).add(name)
    return {frozenset(group) for group in groups.values()}


class TestSymmetryGroups:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        mgr = BDD(SYM_NAMES)
        f = random_function(mgr, SYM_NAMES, rng, depth=5)
        detected = {frozenset(group) for group in mgr.symmetry_groups(f)}
        assert detected == _brute_force_groups(mgr, f, SYM_NAMES)

    def test_known_partitions(self):
        mgr = BDD(list("abcd"))
        assert mgr.symmetry_groups(mgr.from_expr("a & b | c & d")) == [
            ["a", "b"],
            ["c", "d"],
        ]
        assert mgr.symmetry_groups(mgr.from_expr("a ^ b ^ c ^ d")) == [
            ["a", "b", "c", "d"]
        ]
        # A variable outside the support groups with the other
        # non-support variables, never with support ones.
        assert mgr.symmetry_groups(mgr.from_expr("a & b")) == [
            ["a", "b"],
            ["c", "d"],
        ]

    def test_multiple_roots_intersect_symmetries(self):
        mgr = BDD(list("abc"))
        f = mgr.from_expr("a | b | c")  # totally symmetric
        g = mgr.from_expr("a & b")  # breaks c's symmetry with a/b
        assert mgr.symmetry_groups(f) == [["a", "b", "c"]]
        assert mgr.symmetry_groups([f, g]) == [["a", "b"], ["c"]]

    def test_detection_leaves_function_intact(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c ^ f")
        before = _truth_vector(mgr, f)
        mgr.symmetry_groups(f)
        mgr.check_invariants()
        assert _truth_vector(mgr, f) == before


class TestSiftGroups:
    @settings(max_examples=40, deadline=None)
    @given(manager_with_roots())
    def test_preserves_function_and_invariants(self, built):
        mgr, roots = built
        before = [_truth_vector(mgr, root) for root in roots]
        groups = mgr.symmetry_groups([r for r in roots if r >> 1] or roots)
        result = mgr.sift_groups(roots)
        assert result.final_size == mgr.live_nodes()
        mgr.check_invariants()
        for root, expected in zip(roots, before):
            assert _truth_vector(mgr, root) == expected
        # Detected symmetry groups end up contiguous in the final order.
        for group in groups:
            levels = sorted(mgr.level_of(name) for name in group)
            assert levels == list(range(levels[0], levels[0] + len(levels)))

    def test_explicit_groups_move_as_blocks(self):
        mgr = BDD(["x0", "x1", "s0", "s1", "y0", "y1"])
        f = mgr.from_expr("x0 & y0 & s0 | x1 & y1 & s1")
        before = _truth_vector(mgr, f, ["x0", "x1", "s0", "s1", "y0", "y1"])
        mgr.sift_groups([f], groups=[["x0", "x1"], ["y0", "y1"]])
        mgr.check_invariants()
        assert _truth_vector(mgr, f, ["x0", "x1", "s0", "s1", "y0", "y1"]) == before
        assert abs(mgr.level_of("x0") - mgr.level_of("x1")) == 1
        assert abs(mgr.level_of("y0") - mgr.level_of("y1")) == 1

    def test_group_validation(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b")
        with pytest.raises(BDDError):
            mgr.sift_groups([f], groups=[["a", "nope"]])
        with pytest.raises(BDDError):
            mgr.sift_groups([f], groups=[["a", "b"], ["b", "c"]])

    def test_groups_improve_separated_symmetric_order(self):
        """The totally-symmetric-blocks case group sifting exists for:
        interleaving comparator pairs as blocks."""
        pairs = 4
        names = [f"a{i}" for i in range(pairs)] + [f"b{i}" for i in range(pairs)]
        mgr = BDD(names)
        f = mgr.or_many(
            mgr.and_(mgr.var(f"a{i}"), mgr.var(f"b{i}")) for i in range(pairs)
        )
        before = mgr.size(f)
        result = mgr.sift_groups([f])
        assert mgr.size(f) < before
        assert result.changed
        mgr.check_invariants()


def _build_mirrored(seed: int, threshold: int | None):
    """Build the same random pool of functions in two managers: one
    static, one with dynamic reordering armed at ``threshold``.  The
    dynamic build follows the protect contract (every held edge is
    registered while kernels run)."""
    rng = random.Random(seed)
    static = BDD(NAMES)
    dynamic = BDD(NAMES)
    if threshold is not None:
        dynamic.enable_dynamic_reordering(threshold)
    static_pool = [static.var(n) for n in NAMES]
    dynamic_pool = [dynamic.protect(dynamic.var(n)) for n in NAMES]
    for _ in range(rng.randint(4, 14)):
        op = rng.choice(["and", "or", "xor", "ite", "not"])
        picks = [rng.randrange(len(static_pool)) for _ in range(3)]
        if op == "not":
            static_pool.append(static_pool[picks[0]] ^ 1)
            dynamic_pool.append(dynamic.protect(dynamic_pool[picks[0]] ^ 1))
            continue
        s_ops = [static_pool[p] for p in picks]
        d_ops = [dynamic_pool[p] for p in picks]
        if op == "and":
            static_pool.append(static.and_(s_ops[0], s_ops[1]))
            dynamic_pool.append(dynamic.protect(dynamic.and_(d_ops[0], d_ops[1])))
        elif op == "or":
            static_pool.append(static.or_(s_ops[0], s_ops[1]))
            dynamic_pool.append(dynamic.protect(dynamic.or_(d_ops[0], d_ops[1])))
        elif op == "xor":
            static_pool.append(static.xor(s_ops[0], s_ops[1]))
            dynamic_pool.append(dynamic.protect(dynamic.xor(d_ops[0], d_ops[1])))
        else:
            static_pool.append(static.ite(*s_ops))
            dynamic_pool.append(dynamic.protect(dynamic.ite(*d_ops)))
    return static, static_pool, dynamic, dynamic_pool


class TestDynamicReordering:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=8, max_value=64),
    )
    def test_auto_reorder_preserves_all_protected_functions(self, seed, threshold):
        static, static_pool, dynamic, dynamic_pool = _build_mirrored(seed, threshold)
        dynamic.check_invariants()
        for s_edge, d_edge in zip(static_pool, dynamic_pool):
            assert _truth_vector(static, s_edge) == _truth_vector(dynamic, d_edge)

    def test_trigger_fires_and_rearms_doubling(self):
        names = [f"a{i}" for i in range(8)] + [f"b{i}" for i in range(8)]
        mgr = BDD(names)
        mgr.enable_dynamic_reordering(24)
        result = mgr.ZERO
        for i in range(8):
            mgr.protect(result)
            term = mgr.and_(mgr.var(f"a{i}"), mgr.var(f"b{i}"))
            previous = result
            result = mgr.or_(result, term)
            mgr.unprotect(previous)
        assert mgr.reorderings >= 1
        assert mgr.reorder_threshold >= 48  # doubled at least once
        mgr.check_invariants()
        # Mid-build sifting keeps the separated comparator far below its
        # exponential construction-order size (~2^(pairs+1) nodes); the
        # pairs added after the last trigger may still sit separated —
        # the guarantee is survival under a budget, not optimality.
        assert mgr.size(result) < 100

    def test_disabled_manager_never_reorders(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c & f")
        assert mgr.reorderings == 0
        assert mgr.reorder_threshold is None
        g = mgr.and_(f, mgr.var("a"))
        assert mgr.reorderings == 0
        assert mgr.eval(g, {n: True for n in NAMES})

    def test_protect_contract_and_validation(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b")
        mgr.protect(f)
        mgr.protect(f)
        assert mgr.protected_edges() == [f]
        mgr.unprotect(f)
        assert mgr.protected_edges() == [f]
        mgr.unprotect(f)
        assert mgr.protected_edges() == []
        with pytest.raises(BDDError):
            mgr.unprotect(f)
        with pytest.raises(BDDError):
            mgr.enable_dynamic_reordering(0)

    def test_gc_keeps_protected_edges_as_implicit_roots(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b | c")
        g = mgr.from_expr("d ^ e")
        expected = _truth_vector(mgr, g)
        mgr.protect(g)
        mgr.gc([f])  # g not listed — survives via the registry
        assert _truth_vector(mgr, g) == expected
        mgr.check_invariants()
        mgr.unprotect(g)

    def test_sift_pins_protected_edges(self):
        """A plain sift with a non-empty registry must not free
        protected nodes during swap surgery."""
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e")
        scratch = mgr.from_expr("a ^ d ^ b")
        expected = _truth_vector(mgr, scratch)
        mgr.protect(scratch)
        mgr.sift([f])
        assert _truth_vector(mgr, scratch) == expected
        mgr.check_invariants()
        mgr.unprotect(scratch)
