"""Unit tests for the ROBDD manager core."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, BDDError

from ..conftest import all_assignments, random_function


class TestConstants:
    def test_one_and_zero_are_distinct(self, mgr):
        assert mgr.ONE != mgr.ZERO

    def test_zero_is_complement_of_one(self, mgr):
        assert mgr.ZERO == mgr.ONE ^ 1

    def test_constants_are_constant(self, mgr):
        assert mgr.is_constant(mgr.ONE)
        assert mgr.is_constant(mgr.ZERO)

    def test_variable_is_not_constant(self, mgr):
        assert not mgr.is_constant(mgr.var("a"))


class TestVariables:
    def test_var_round_trip(self, mgr):
        for name in "abcdef":
            level = mgr.level_of(name)
            assert mgr.name_of(level) == name

    def test_duplicate_variable_rejected(self, mgr):
        with pytest.raises(BDDError):
            mgr.add_var("a")

    def test_unknown_variable_rejected(self, mgr):
        with pytest.raises(BDDError):
            mgr.var("nope")

    def test_var_evaluates_to_itself(self, mgr):
        a = mgr.var("a")
        assert mgr.eval(a, {"a": 1}) is True
        assert mgr.eval(a, {"a": 0}) is False

    def test_add_var_appends_to_order(self):
        mgr = BDD(["x"])
        level = mgr.add_var("y")
        assert level == 1
        assert mgr.var_names == ("x", "y")


class TestCanonicity:
    def test_same_function_same_edge(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        left = mgr.or_(mgr.and_(a, b), mgr.and_(a ^ 1, b))
        assert left == b

    def test_de_morgan(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.and_(a, b) ^ 1 == mgr.or_(a ^ 1, b ^ 1)

    def test_xor_equivalence(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        via_andor = mgr.or_(mgr.and_(a, b ^ 1), mgr.and_(a ^ 1, b))
        assert via_andor == mgr.xor(a, b)

    def test_then_edges_never_complemented(self, mgr):
        rng = random.Random(7)
        roots = [random_function(mgr, "abcdef", rng, depth=5) for _ in range(20)]
        for index in mgr.nodes_reachable(roots):
            _, high, _ = mgr.node_fields(index)
            assert high & 1 == 0, "canonical form violated: complemented 1-edge"

    def test_no_redundant_nodes(self, mgr):
        rng = random.Random(11)
        roots = [random_function(mgr, "abcdef", rng, depth=5) for _ in range(20)]
        for index in mgr.nodes_reachable(roots):
            _, high, low = mgr.node_fields(index)
            assert high != low, "redundant node present"


class TestOperators:
    def test_truth_tables_two_vars(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        cases = {
            "and": (mgr.and_(a, b), lambda x, y: x and y),
            "or": (mgr.or_(a, b), lambda x, y: x or y),
            "xor": (mgr.xor(a, b), lambda x, y: x != y),
            "xnor": (mgr.xnor(a, b), lambda x, y: x == y),
            "nand": (mgr.nand(a, b), lambda x, y: not (x and y)),
            "nor": (mgr.nor(a, b), lambda x, y: not (x or y)),
            "implies": (mgr.implies(a, b), lambda x, y: (not x) or y),
        }
        for name, (edge, model) in cases.items():
            for assignment in all_assignments("ab"):
                expected = model(assignment["a"], assignment["b"])
                assert mgr.eval(edge, assignment) == expected, name

    def test_maj_truth_table(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        maj = mgr.maj(a, b, c)
        for assignment in all_assignments("abc"):
            expected = sum(assignment.values()) >= 2
            assert mgr.eval(maj, assignment) == expected

    def test_maj_is_symmetric(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        reference = mgr.maj(a, b, c)
        assert mgr.maj(b, a, c) == reference
        assert mgr.maj(c, b, a) == reference
        assert mgr.maj(b, c, a) == reference

    def test_ite_matches_definition(self, mgr):
        rng = random.Random(3)
        for _ in range(25):
            f = random_function(mgr, "abc", rng)
            g = random_function(mgr, "abc", rng)
            h = random_function(mgr, "abc", rng)
            combined = mgr.ite(f, g, h)
            manual = mgr.or_(mgr.and_(f, g), mgr.and_(f ^ 1, h))
            assert combined == manual

    def test_many_operand_helpers(self, mgr):
        edges = [mgr.var(n) for n in "abcd"]
        assert mgr.and_many(edges) == mgr.and_(
            mgr.and_(edges[0], edges[1]), mgr.and_(edges[2], edges[3])
        )
        assert mgr.or_many([]) == mgr.ZERO
        assert mgr.and_many([]) == mgr.ONE
        xor_all = mgr.xor_many(edges)
        for assignment in all_assignments("abcd"):
            expected = sum(assignment.values()) % 2 == 1
            assert mgr.eval(xor_all, assignment) == expected

    def test_double_negation(self, mgr):
        f = mgr.from_expr("a & b | ~c")
        assert mgr.not_(mgr.not_(f)) == f


class TestCofactor:
    def test_top_variable_cofactor(self, mgr):
        f = mgr.from_expr("a & b | ~a & c")
        assert mgr.cofactor(f, mgr.level_of("a"), True) == mgr.var("b")
        assert mgr.cofactor(f, mgr.level_of("a"), False) == mgr.var("c")

    def test_deep_variable_cofactor(self, mgr):
        f = mgr.from_expr("a & b | c & ~b")
        level = mgr.level_of("b")
        high = mgr.cofactor(f, level, True)
        low = mgr.cofactor(f, level, False)
        assert high == mgr.var("a")
        assert low == mgr.var("c")

    def test_shannon_expansion(self, mgr):
        rng = random.Random(5)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            for name in "abcd":
                level = mgr.level_of(name)
                v = mgr.var(name)
                high = mgr.cofactor(f, level, True)
                low = mgr.cofactor(f, level, False)
                assert mgr.ite(v, high, low) == f

    def test_compose_identity(self, mgr):
        f = mgr.from_expr("a & b | c")
        level = mgr.level_of("b")
        assert mgr.compose(f, level, mgr.var("b")) == f

    def test_compose_substitutes(self, mgr):
        f = mgr.from_expr("a & b")
        composed = mgr.compose(f, mgr.level_of("b"), mgr.from_expr("c | d"))
        assert composed == mgr.from_expr("a & (c | d)")


class TestSizeSupportEval:
    def test_size_of_constants(self, mgr):
        assert mgr.size(mgr.ONE) == 0
        assert mgr.size(mgr.ZERO) == 0

    def test_size_of_literal(self, mgr):
        assert mgr.size(mgr.var("a")) == 1
        assert mgr.size(mgr.var("a") ^ 1) == 1

    def test_size_counts_shared_nodes_once(self, mgr):
        f = mgr.from_expr("a & b")
        assert mgr.size_many([f, f]) == mgr.size(f)

    def test_support(self, mgr):
        f = mgr.from_expr("a & b | a & ~b")  # collapses to a
        assert mgr.support(f) == {"a"}
        g = mgr.from_expr("a ^ c ^ e")
        assert mgr.support(g) == {"a", "c", "e"}

    def test_eval_requires_support_variables(self, mgr):
        f = mgr.from_expr("a & b")
        with pytest.raises(BDDError):
            mgr.eval(f, {"a": 1})

    def test_eval_levels(self, mgr):
        f = mgr.from_expr("a & ~b | c")
        values = [0] * mgr.num_vars
        values[mgr.level_of("c")] = 1
        assert mgr.eval_levels(f, values) is True

    def test_nodes_reachable_topological(self, mgr):
        f = mgr.from_expr("a & b & c & d")
        order = mgr.nodes_reachable([f])
        positions = {index: i for i, index in enumerate(order)}
        for index in order:
            _, high, low = mgr.node_fields(index)
            for child in (high >> 1, low >> 1):
                if child != 0:
                    assert positions[child] > positions[index]


class TestCountSat:
    def test_constants(self, mgr):
        assert mgr.count_sat(mgr.ONE) == 2 ** mgr.num_vars
        assert mgr.count_sat(mgr.ZERO) == 0

    def test_single_literal(self, mgr):
        assert mgr.count_sat(mgr.var("a")) == 2 ** (mgr.num_vars - 1)
        assert mgr.count_sat(mgr.var("f")) == 2 ** (mgr.num_vars - 1)

    def test_majority_count(self, mgr):
        maj = mgr.from_expr("a & b | b & c | a & c")
        # 4 of 8 assignments of (a,b,c) satisfy MAJ; times 2^3 free vars.
        assert mgr.count_sat(maj) == 4 * 2 ** (mgr.num_vars - 3)

    def test_count_matches_enumeration(self, mgr):
        rng = random.Random(13)
        for _ in range(15):
            f = random_function(mgr, "abcd", rng)
            expected = sum(
                mgr.eval(f, {**assignment, "e": 0, "f": 0})
                for assignment in all_assignments("abcd")
            )
            assert mgr.count_sat(f) == expected * 4  # e, f free

    def test_complement_count(self, mgr):
        f = mgr.from_expr("a & b | c")
        total = 2 ** mgr.num_vars
        assert mgr.count_sat(f) + mgr.count_sat(f ^ 1) == total


class TestPickAssignment:
    def test_unsat_returns_none(self, mgr):
        assert mgr.pick_assignment(mgr.ZERO) is None

    def test_tautology_returns_empty(self, mgr):
        assert mgr.pick_assignment(mgr.ONE) == {}

    def test_assignment_satisfies(self, mgr):
        rng = random.Random(17)
        for _ in range(30):
            f = random_function(mgr, "abcde", rng)
            if f == mgr.ZERO:
                continue
            assignment = mgr.pick_assignment(f)
            full = {name: assignment.get(name, False) for name in mgr.var_names}
            assert mgr.eval(f, full) is True


class TestTruthTableBuilders:
    def test_round_trip(self, mgr):
        names = ["a", "b", "c"]
        for table in (0b10010110, 0b11101000, 0, 0xFF):
            edge = mgr.from_truth_table(table, names)
            assert mgr.truth_table(edge, names) == table

    def test_cube_builder(self, mgr):
        cube = mgr.cube({"a": 1, "b": 0})
        assert cube == mgr.from_expr("a & ~b")

    def test_from_expr_rejects_bad_ops(self, mgr):
        with pytest.raises(BDDError):
            mgr.from_expr("a + b")


class TestTransfer:
    def test_transfer_same_order_preserves_structure(self, mgr):
        f = mgr.from_expr("a & b | c & ~d")
        target = BDD(list(mgr.var_names))
        g = mgr.transfer(f, target)
        assert target.size(g) == mgr.size(f)
        for assignment in all_assignments("abcd"):
            full = {**assignment, "e": 0, "f": 0}
            assert mgr.eval(f, full) == target.eval(g, full)

    def test_transfer_reversed_order_is_equivalent(self, mgr):
        f = mgr.from_expr("a & b | c & d | e & f")
        target = BDD(list(reversed(mgr.var_names)))
        g = mgr.transfer(f, target)
        for assignment in all_assignments("abcdef"):
            assert mgr.eval(f, assignment) == target.eval(g, assignment)

    def test_transfer_declares_missing_vars(self, mgr):
        f = mgr.from_expr("a & b")
        target = BDD()
        g = mgr.transfer(f, target)
        assert set(target.var_names) >= {"a", "b"}
        assert target.eval(g, {"a": 1, "b": 1}) is True


@settings(max_examples=200, deadline=None)
@given(
    table=st.integers(min_value=0, max_value=(1 << 16) - 1),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_property_canonicity_from_truth_tables(table, seed):
    """Two syntactically different constructions of the same function
    must produce the identical edge handle (canonicity)."""
    mgr = BDD(["a", "b", "c", "d"])
    names = ["a", "b", "c", "d"]
    direct = mgr.from_truth_table(table, names)
    # Rebuild via Shannon expansion in a shuffled minterm order.
    rng = random.Random(seed)
    minterms = [row for row in range(16) if table >> row & 1]
    rng.shuffle(minterms)
    rebuilt = mgr.ZERO
    for row in minterms:
        rebuilt = mgr.or_(
            rebuilt,
            mgr.cube({name: bool(row >> j & 1) for j, name in enumerate(names)}),
        )
    assert direct == rebuilt


@settings(max_examples=100, deadline=None)
@given(
    table_f=st.integers(min_value=0, max_value=255),
    table_g=st.integers(min_value=0, max_value=255),
)
def test_property_operators_match_bitwise_semantics(table_f, table_g):
    """BDD operators agree with bitwise truth-table arithmetic."""
    names = ["a", "b", "c"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table_f, names)
    g = mgr.from_truth_table(table_g, names)
    mask = 255
    assert mgr.truth_table(mgr.and_(f, g), names) == table_f & table_g
    assert mgr.truth_table(mgr.or_(f, g), names) == table_f | table_g
    assert mgr.truth_table(mgr.xor(f, g), names) == table_f ^ table_g
    assert mgr.truth_table(f ^ 1, names) == table_f ^ mask
    assert mgr.truth_table(mgr.xnor(f, g), names) == (table_f ^ table_g) ^ mask


@settings(max_examples=60, deadline=None)
@given(
    tables=st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
)
def test_property_maj_definition(tables):
    """Maj(f,g,h) == fg + fh + gh for arbitrary functions."""
    names = ["a", "b", "c"]
    mgr = BDD(names)
    f, g, h = (mgr.from_truth_table(t, names) for t in tables)
    expected = mgr.or_many(
        [mgr.and_(f, g), mgr.and_(f, h), mgr.and_(g, h)]
    )
    assert mgr.maj(f, g, h) == expected
