"""Writable shared unique table: find-or-create canonicity, the
vars+roots directory, store-backed managers, and cross-process
determinism.

The store's contract is *global canonicity*: one node triple maps to
one index forever, for every process, so a BDD edge computed against a
store-backed manager is the same integer no matter which worker (or
how many workers) computed it.
"""

from __future__ import annotations

import itertools
import multiprocessing
from multiprocessing import shared_memory

import pytest

from repro.bdd import BDD, BDDError, TERMINAL_LEVEL
from repro.bdd.arena import (
    ArenaError,
    SharedNodeStore,
    SharedStoreFull,
    WorkerArenaSpec,
    attach_worker_arena,
    current_store,
)
from repro.flows.batch import _init_pool_worker_arena


def _truth(mgr: BDD, edge: int, names: list[str]) -> list[bool]:
    return [
        mgr.eval(edge, dict(zip(names, bits)))
        for bits in itertools.product((0, 1), repeat=len(names))
    ]


def _sample_edges(mgr: BDD) -> dict[str, int]:
    a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
    return {
        "f": mgr.or_(mgr.and_(a, b), mgr.not_(c)),
        "g": mgr.xor(a, mgr.xor(b, c)),
        "h": mgr.ite(a, b, c),
    }


class TestLayout:
    def test_create_seeds_terminal_and_vars(self):
        store = SharedNodeStore.create(("a", "b"), capacity=64)
        try:
            assert store.count == 1  # the terminal node
            assert store.capacity == 64
            assert store.levels[0] == TERMINAL_LEVEL
            assert store.var_names() == ("a", "b")
            assert store.roots() == {}
        finally:
            store.unlink()

    def test_attach_sees_the_same_nodes(self):
        store = SharedNodeStore.create(("a",), capacity=64)
        try:
            index = store.find_or_create(0, 0, 1)
            view = SharedNodeStore.attach(store.handle())
            try:
                assert view.var_names() == ("a",)
                assert view.count == store.count
                assert view.find_or_create(0, 0, 1) == index
                assert view.counters()["local_hits"] == 1
            finally:
                view.close()
        finally:
            store.unlink()

    def test_attaching_a_foreign_block_is_rejected(self):
        block = shared_memory.SharedMemory(create=True, size=1 << 12)
        try:
            store = SharedNodeStore.create((), capacity=16)
            try:
                bad = type(
                    "Handle",
                    (),
                    {"name": block.name},
                )  # only the name matters to the magic check
                with pytest.raises(ArenaError, match="not a shared node store"):
                    SharedNodeStore.attach(bad)
            finally:
                store.unlink()
        finally:
            block.close()
            block.unlink()

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ArenaError, match="capacity"):
            SharedNodeStore.create((), capacity=1)


class TestFindOrCreate:
    def test_insert_then_hit(self):
        store = SharedNodeStore.create((), capacity=64)
        try:
            first = store.find_or_create(3, 2, 5)
            assert first == 1
            assert store.count == 2
            assert store.find_or_create(3, 2, 5) == first
            counters = store.counters()
            assert counters["local_misses"] == 1
            assert counters["local_hits"] == 1
            assert counters["misses"] == 1
            # Hits are batched locally before the shared flush.
            assert counters["hits"] == 1
        finally:
            store.unlink()

    def test_distinct_triples_get_distinct_indices(self):
        store = SharedNodeStore.create((), capacity=256)
        try:
            triples = [(level, 2 * level + 2, 1) for level in range(100)]
            indices = [store.find_or_create(*t) for t in triples]
            assert len(set(indices)) == len(triples)
            assert store.count == 1 + len(triples)
            # Re-querying in reverse order finds every one again.
            assert [store.find_or_create(*t) for t in reversed(triples)] == list(
                reversed(indices)
            )
        finally:
            store.unlink()

    def test_capacity_exhaustion_raises(self):
        store = SharedNodeStore.create((), capacity=4)
        try:
            for level in range(3):  # nodes 1..3 on top of the terminal
                store.find_or_create(level, 0, 1)
            with pytest.raises(SharedStoreFull, match="full"):
                store.find_or_create(99, 0, 1)
            # The failed insert must not have published anything.
            assert store.count == 4
        finally:
            store.unlink()


class TestDirectory:
    def test_ensure_var_appends_in_arrival_order(self):
        store = SharedNodeStore.create((), capacity=16)
        try:
            assert store.ensure_var("x") == 0
            assert store.ensure_var("y") == 1
            assert store.ensure_var("x") == 0  # idempotent
            view = SharedNodeStore.attach(store.handle())
            try:
                assert view.ensure_var("z") == 2
                # The declaring view and the owner both see the merge.
                assert store.var_names() == ("x", "y", "z")
            finally:
                view.close()
        finally:
            store.unlink()

    def test_publish_roots_merges(self):
        store = SharedNodeStore.create((), capacity=16)
        try:
            store.publish_roots({"f": 4})
            store.publish_roots({"g": 7})
            assert store.roots() == {"f": 4, "g": 7}
        finally:
            store.unlink()

    def test_directory_overflow_raises(self):
        store = SharedNodeStore.create((), capacity=16, dir_bytes=64)
        try:
            with pytest.raises(SharedStoreFull, match="directory"):
                store.ensure_var("v" * 128)
        finally:
            store.unlink()


class TestStoreBackedManager:
    def test_equivalence_with_private_manager(self):
        names = ["a", "b", "c"]
        private = BDD(names)
        reference = _sample_edges(private)
        store = SharedNodeStore.create(tuple(names))
        try:
            mgr = BDD(names, store=store)
            edges = _sample_edges(mgr)
            for key, edge in edges.items():
                assert _truth(mgr, edge, names) == _truth(
                    private, reference[key], names
                )
            # The manager counts the global store, not a private table.
            assert mgr.num_nodes() == store.count
        finally:
            store.unlink()

    def test_two_managers_share_canonical_edges(self):
        """The whole point: identical functions built through different
        managers (any insertion order) are the same edge integer."""
        store = SharedNodeStore.create(("a", "b", "c"))
        try:
            first = _sample_edges(BDD((), store=store))
            second = _sample_edges(BDD((), store=store))
            assert first == second
        finally:
            store.unlink()

    def test_vars_declared_elsewhere_become_visible(self):
        store = SharedNodeStore.create(())
        try:
            one = BDD((), store=store)
            two = BDD((), store=store)
            one.add_var("a")
            assert two.level_of("a") == 0  # resyncs from the store
            two.add_var("b")
            assert one.var("b") == one.var_at(1)
        finally:
            store.unlink()

    def test_mutating_operations_are_rejected(self):
        store = SharedNodeStore.create(("a", "b"))
        try:
            mgr = BDD((), store=store)
            edge = mgr.and_(mgr.var("a"), mgr.var("b"))
            with pytest.raises(BDDError, match="append-only"):
                mgr.gc([edge])
            with pytest.raises(BDDError, match="append-only"):
                mgr.swap_adjacent(0)
            with pytest.raises(BDDError, match="append-only"):
                mgr.enable_dynamic_reordering()
            # Refcounting is a no-op, never an error.
            mgr.pin(edge)
            mgr.unpin(edge)
        finally:
            store.unlink()

    def test_store_full_surfaces_through_mk(self):
        store = SharedNodeStore.create(("a", "b", "c", "d"), capacity=4)
        try:
            mgr = BDD((), store=store)
            with pytest.raises(SharedStoreFull):
                for name in ("a", "b", "c", "d"):
                    mgr.var(name)
        finally:
            store.unlink()


def _pool_build(order: tuple[str, ...]) -> dict[str, int]:
    """Worker body: build the sample functions against the store the
    production initializer attached, touching vars in ``order``."""
    store = current_store()
    assert store is not None
    mgr = BDD((), store=store)
    for name in order:
        assert mgr.var(name) == mgr.var_at(mgr.level_of(name))
    return _sample_edges(mgr)


class TestCrossProcess:
    def test_workers_agree_on_every_edge(self):
        """Four fork workers attach through the production pool
        initializer and build the same functions with different
        variable-touch orders: every edge must be the same integer in
        every process, and equal to the owner's."""
        store = SharedNodeStore.create(("a", "b", "c"))
        try:
            owner_edges = _sample_edges(BDD((), store=store))
            spec = WorkerArenaSpec(store=store.handle())
            context = multiprocessing.get_context("fork")
            orders = [
                ("a", "b", "c"),
                ("c", "b", "a"),
                ("b", "c", "a"),
                ("c", "a", "b"),
            ]
            with context.Pool(
                4, initializer=_init_pool_worker_arena, initargs=(spec,)
            ) as pool:
                results = pool.map(_pool_build, orders)
            assert all(edges == owner_edges for edges in results)
            # Counter sanity: the shared table saw cross-process hits.
            assert store.counters()["misses"] >= len(owner_edges)
        finally:
            store.unlink()

    def test_attach_worker_arena_spec_roundtrip(self):
        store = SharedNodeStore.create(("a",))
        try:
            attach_worker_arena(WorkerArenaSpec(store=store.handle()))
            try:
                attached = current_store()
                assert attached is not None
                assert attached.name == store.name
                assert attached.find_or_create(0, 0, 1) == store.find_or_create(
                    0, 0, 1
                )
            finally:
                attach_worker_arena(None)
            assert current_store() is None
        finally:
            store.unlink()
