"""Tests for the Graphviz export (Figure 1 rendering)."""

from __future__ import annotations

from repro.bdd import BDD, to_dot
from repro.core import find_m_dominators


class TestDotExport:
    def test_structure_of_simple_bdd(self):
        mgr = BDD(["a", "b"])
        f = mgr.from_expr("a & b")
        dot = to_dot(mgr, {"F": f})
        assert dot.startswith("digraph bdd {")
        assert dot.rstrip().endswith("}")
        assert 'terminal [label="1", shape=box]' in dot
        assert '[label="a"]' in dot and '[label="b"]' in dot

    def test_edge_styles(self):
        mgr = BDD(["a", "b"])
        f = mgr.from_expr("a & b")
        dot = to_dot(mgr, {"F": f})
        assert "style=solid" in dot  # 1-edges
        # a&b has a complemented 0-edge to the terminal.
        assert "style=dotted" in dot

    def test_highlighting(self):
        mgr = BDD(["c", "b", "a"])
        f = mgr.from_expr("a & b | b & c | a & c")
        (candidate,) = find_m_dominators(mgr, f)
        dot = to_dot(mgr, {"F": f}, highlight=[candidate.node])
        assert dot.count("penwidth=2.0") == 1

    def test_multiple_roots_render(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.from_expr("a ^ b")
        g = mgr.from_expr("b | c")
        dot = to_dot(mgr, {"f": f, "g": g})
        assert 'f_f [label="f", shape=plaintext]' in dot
        assert 'f_g [label="g", shape=plaintext]' in dot

    def test_label_sanitization(self):
        mgr = BDD(["a"])
        dot = to_dot(mgr, {"F = a&b!": mgr.var("a")})
        assert "f_F___a_b_" in dot

    def test_rank_groups_per_level(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.from_expr("a & b & c")
        dot = to_dot(mgr, {"F": f})
        assert dot.count("rank=same") == 3
