"""Tests for structural rewrites: replace_node, edge statistics, cut nodes."""

from __future__ import annotations

import random

import pytest

from repro.bdd import (
    BDD,
    cut_nodes,
    edge_statistics,
    function_at,
    path_dominators,
    replace_node,
)

from ..conftest import all_assignments, random_function


class TestFunctionAt:
    def test_function_at_variable_node(self, mgr):
        a = mgr.var("a")
        assert function_at(mgr, a >> 1) == a

    def test_function_at_is_regular(self, mgr):
        f = mgr.from_expr("~(a & b)")
        edge = function_at(mgr, f >> 1)
        assert edge & 1 == 0


class TestReplaceNode:
    def test_replace_with_one_simplifies_and(self, mgr):
        f = mgr.from_expr("a & b")
        b_node = mgr.var("b") >> 1
        g = replace_node(mgr, f, b_node, mgr.ONE)
        assert g == mgr.var("a")

    def test_replace_with_zero_simplifies_or(self, mgr):
        f = mgr.from_expr("a | b")
        b_node = mgr.var("b") >> 1
        g = replace_node(mgr, f, b_node, mgr.ZERO)
        assert g == mgr.var("a")

    def test_replace_terminal_rejected(self, mgr):
        with pytest.raises(ValueError):
            replace_node(mgr, mgr.var("a"), 0, mgr.ONE)

    def test_replace_node_with_itself_is_identity(self, mgr):
        rng = random.Random(41)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if mgr.is_constant(f):
                continue
            for index in mgr.nodes_reachable([f]):
                g = replace_node(mgr, f, index, function_at(mgr, index))
                assert g == f

    def test_substitution_identity(self, mgr):
        """Replacing node d by a fresh function then composing back with
        func(d) must reproduce F whenever d's variable does not appear
        above it (here guaranteed by choosing the bottom-most node)."""
        f = mgr.from_expr("(a & b) ^ (c | d)")
        nodes = mgr.nodes_reachable([f])
        bottom = nodes[-1]
        h = function_at(mgr, bottom)
        g_one = replace_node(mgr, f, bottom, mgr.ONE)
        g_zero = replace_node(mgr, f, bottom, mgr.ZERO)
        rebuilt = mgr.ite(h, g_one, g_zero)
        assert rebuilt == f

    def test_replacement_respects_complement_references(self, mgr):
        # f references node(b) both regular (via a) and complemented.
        f = mgr.from_expr("a & b | ~a & ~b")
        b_node = mgr.var("b") >> 1
        g = replace_node(mgr, f, b_node, mgr.var("c"))
        expected = mgr.from_expr("a & c | ~a & ~c")
        assert g == expected


class TestEdgeStatistics:
    def test_majority_fanin_counts(self, mgr):
        # In the BDD of ab+bc+ac (order a,b,c) the node for c is entered
        # once by a 1-edge and once by a 0-edge.
        f = mgr.from_expr("a & b | b & c | a & c")
        stats = edge_statistics(mgr, [f])
        c_node = mgr.var("c") >> 1
        entry = stats.of(c_node)
        assert entry.one == 1
        assert entry.regular_zero + entry.complemented_zero == 1

    def test_root_reference_counted_separately(self, mgr):
        f = mgr.from_expr("a & b")
        stats = edge_statistics(mgr, [f])
        assert stats.of(f >> 1).root_refs == 1

    def test_total_matches_edge_count(self, mgr):
        rng = random.Random(43)
        roots = [random_function(mgr, "abcde", rng) for _ in range(5)]
        roots = [r for r in roots if not mgr.is_constant(r)]
        stats = edge_statistics(mgr, roots)
        # Every internal node contributes exactly two out-edges; count
        # how many of them land on internal nodes.
        expected_internal_edges = 0
        for index in mgr.nodes_reachable(roots):
            _, high, low = mgr.node_fields(index)
            expected_internal_edges += (high >> 1 != 0) + (low >> 1 != 0)
        counted = sum(
            entry.one + entry.regular_zero + entry.complemented_zero
            for entry in stats.fanin.values()
        )
        assert counted == expected_internal_edges


class TestPathDominators:
    def test_conjunction_chain_one_dominators(self, mgr):
        # a & b & c: the single value-1 path visits every node, so all
        # non-root nodes are 1-dominators; value-0 paths escape early,
        # so there are no 0-dominators.
        f = mgr.from_expr("a & b & c")
        doms = path_dominators(mgr, f)
        nodes = mgr.nodes_reachable([f])
        assert doms.to_one == set(nodes[1:])
        assert doms.to_zero == set()

    def test_disjunction_chain_zero_dominators(self, mgr):
        f = mgr.from_expr("a | b | c")
        doms = path_dominators(mgr, f)
        nodes = mgr.nodes_reachable([f])
        assert doms.to_zero == set(nodes[1:])
        assert doms.to_one == set()

    def test_root_never_a_dominator(self, mgr):
        f = mgr.from_expr("a & b | c")
        doms = path_dominators(mgr, f)
        assert (f >> 1) not in doms.to_one | doms.to_zero

    def test_constant_has_no_dominators(self, mgr):
        assert cut_nodes(mgr, mgr.ONE) == []
        assert path_dominators(mgr, mgr.ZERO).to_one == set()

    def test_diamond_reconverges_at_one_dominator(self, mgr):
        # (a xor b) & c: both value-1 branches of the xor reconverge at
        # the node testing c.
        f = mgr.from_expr("(a ^ b) & c")
        doms = path_dominators(mgr, f)
        c_node = mgr.var("c") >> 1
        assert c_node in doms.to_one

    def test_xor_tail_is_all_path_dominator(self, mgr):
        # (a xor b) xor c: every path must consult c.
        f = mgr.from_expr("(a ^ b) ^ c")
        c_node = mgr.var("c") >> 1
        assert c_node in cut_nodes(mgr, f)

    def test_one_dominators_block_value_one_paths(self, mgr):
        rng = random.Random(47)
        for _ in range(20):
            f = random_function(mgr, "abcde", rng)
            if mgr.is_constant(f):
                continue
            doms = path_dominators(mgr, f)
            for node in doms.to_one:
                assert _parity_paths_avoiding(mgr, f, node, 0) == 0
            for node in doms.to_zero:
                assert _parity_paths_avoiding(mgr, f, node, 1) == 0


def _parity_paths_avoiding(mgr: BDD, root: int, banned: int, parity: int) -> int:
    """Count root->terminal paths of the given parity avoiding ``banned``."""
    def walk(index: int, acc: int) -> int:
        if index == banned:
            return 0
        if index == 0:
            return 1 if acc == parity else 0
        _, high, low = mgr.node_fields(index)
        return walk(high >> 1, acc ^ (high & 1)) + walk(low >> 1, acc ^ (low & 1))

    return walk(root >> 1, root & 1)
