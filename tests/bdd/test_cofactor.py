"""Tests for generalized cofactors (restrict / constrain).

These operators provide the Theorem 3.3 seeds of the majority
construction, so the interval property ``f·c <= g <= f + c'`` — i.e.
``g`` agrees with ``f`` on the care set — is the load-bearing invariant.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, BDDError, CareSetError, constrain, generalized_cofactor, restrict

from ..conftest import random_function


@pytest.mark.parametrize("operator", [restrict, constrain])
class TestGeneralizedCofactorBasics:
    def test_full_care_set_is_identity(self, mgr, operator):
        f = mgr.from_expr("a & b | c")
        assert operator(mgr, f, mgr.ONE) == f

    def test_empty_care_set_rejected(self, mgr, operator):
        f = mgr.var("a")
        with pytest.raises(CareSetError):
            operator(mgr, f, mgr.ZERO)

    def test_constant_functions_unchanged(self, mgr, operator):
        care = mgr.from_expr("a | b")
        assert operator(mgr, mgr.ONE, care) == mgr.ONE
        assert operator(mgr, mgr.ZERO, care) == mgr.ZERO

    def test_cofactor_by_literal_matches_shannon(self, mgr, operator):
        f = mgr.from_expr("a & b | ~a & c")
        a_level = mgr.level_of("a")
        assert operator(mgr, f, mgr.var("a")) == mgr.cofactor(f, a_level, True)
        assert operator(mgr, f, mgr.var("a") ^ 1) == mgr.cofactor(f, a_level, False)

    def test_agreement_on_care_set(self, mgr, operator):
        rng = random.Random(23)
        for _ in range(40):
            f = random_function(mgr, "abcde", rng)
            c = random_function(mgr, "abcde", rng)
            if c == mgr.ZERO:
                continue
            g = operator(mgr, f, c)
            assert mgr.and_(g, c) == mgr.and_(f, c)

    def test_f_restricted_to_itself_is_tautology(self, mgr, operator):
        rng = random.Random(29)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if f == mgr.ZERO:
                continue
            assert operator(mgr, f, f) == mgr.ONE

    def test_f_restricted_to_complement_is_zero(self, mgr, operator):
        rng = random.Random(31)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if f == mgr.ONE:
                continue
            assert operator(mgr, f, f ^ 1) == mgr.ZERO


class TestRestrictSpecifics:
    def test_restrict_does_not_grow_support(self, mgr):
        # restrict quantifies away care-set variables outside f's support.
        f = mgr.from_expr("a & b")
        care = mgr.from_expr("(a | c) & (b | d)")
        g = restrict(mgr, f, care)
        assert mgr.support(g) <= mgr.support(f)

    def test_restrict_shrinks_paper_example(self, mgr):
        # Paper III.C example: F = ab + bc + ac, Fa = a:
        # H = F|a  = b + c, W = F|a' = bc.
        f = mgr.from_expr("a & b | b & c | a & c")
        a = mgr.var("a")
        assert restrict(mgr, f, a) == mgr.from_expr("b | c")
        assert restrict(mgr, f, a ^ 1) == mgr.from_expr("b & c")

    def test_constrain_matches_paper_example_too(self, mgr):
        f = mgr.from_expr("a & b | b & c | a & c")
        a = mgr.var("a")
        assert constrain(mgr, f, a) == mgr.from_expr("b | c")
        assert constrain(mgr, f, a ^ 1) == mgr.from_expr("b & c")


class TestDispatch:
    def test_dispatch_restrict(self, mgr):
        f = mgr.from_expr("a | b")
        assert generalized_cofactor(mgr, f, mgr.var("a"), "restrict") == mgr.ONE

    def test_dispatch_constrain(self, mgr):
        f = mgr.from_expr("a | b")
        assert generalized_cofactor(mgr, f, mgr.var("a"), "constrain") == mgr.ONE

    def test_dispatch_unknown(self, mgr):
        with pytest.raises(BDDError):
            generalized_cofactor(mgr, mgr.ONE, mgr.ONE, "bogus")


@settings(max_examples=150, deadline=None)
@given(
    table_f=st.integers(min_value=0, max_value=(1 << 16) - 1),
    table_c=st.integers(min_value=1, max_value=(1 << 16) - 1),
    method=st.sampled_from(["restrict", "constrain"]),
)
def test_property_interval_containment(table_f, table_c, method):
    """f·c <= gcf(f, c) <= f + c' bit-for-bit on 4-variable functions."""
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table_f, names)
    c = mgr.from_truth_table(table_c, names)
    g = generalized_cofactor(mgr, f, c, method)
    table_g = mgr.truth_table(g, names)
    mask = (1 << 16) - 1
    assert table_f & table_c & ~table_g & mask == 0  # f·c <= g
    assert table_g & ~(table_f | (~table_c & mask)) & mask == 0  # g <= f + c'


@settings(max_examples=100, deadline=None)
@given(
    table_f=st.integers(min_value=0, max_value=(1 << 16) - 1),
    table_c=st.integers(min_value=1, max_value=(1 << 16) - 1),
)
def test_property_theorem_3_3_seed_condition(table_f, table_c):
    """(H xor F') + (W xor F) covers every input when H = F|c, W = F|c'.

    This is Equation 2 of the paper instantiated with the Equation 3
    seeds: for every input either H agrees with F or W agrees with F.
    """
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table_f, names)
    care = mgr.from_truth_table(table_c, names)
    if care == mgr.ZERO or care == mgr.ONE:
        return
    h = restrict(mgr, f, care)
    w = restrict(mgr, f, care ^ 1)
    agreement = mgr.or_(mgr.xnor(h, f), mgr.xnor(w, f))
    assert agreement == mgr.ONE
