"""Property tests for the in-place reordering machinery.

The mutable node store (per-level subtables, swaps, refcount frees,
mark-and-sweep GC) must preserve two things under arbitrary operation
sequences: every root's *function* (checked by evaluation over random
and exhaustive assignments) and the store's *canonicity* invariants
(checked by :meth:`BDD.check_invariants` — `_mk` normal form, subtable
consistency, refcount soundness)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, SiftResult, sift_rebuild
from repro.bdd.reorder import sift

from ..conftest import all_assignments, random_function

NAMES = list("abcdef")


def _truth_vector(mgr: BDD, edge: int) -> list[bool]:
    """Function of ``edge`` over NAMES as a by-name truth vector (stable
    under reordering, unlike level-indexed evaluation)."""
    return [mgr.eval(edge, assignment) for assignment in all_assignments(NAMES)]


@st.composite
def manager_with_roots(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    num_roots = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(seed)
    mgr = BDD(NAMES)
    roots = [random_function(mgr, NAMES, rng, depth=5) for _ in range(num_roots)]
    return mgr, roots


class TestSwapAdjacent:
    @settings(max_examples=60, deadline=None)
    @given(manager_with_roots(), st.lists(st.integers(0, 4), max_size=12))
    def test_swap_sequence_preserves_function_and_invariants(self, built, levels):
        mgr, roots = built
        before = [_truth_vector(mgr, root) for root in roots]
        # Raw swaps free nodes whose last DAG parent is rewritten, so
        # externally held edges must be pinned (sift pins its roots).
        for root in roots:
            mgr.pin(root)
        for level in levels:
            mgr.swap_adjacent(level)
            mgr.check_invariants()
        for root in roots:
            mgr.unpin(root)
        for root, expected in zip(roots, before):
            assert _truth_vector(mgr, root) == expected

    def test_unpinned_scratch_may_die_but_pinned_roots_survive(self):
        """The refcount contract: a swap can collect scratch whose only
        parent was rewritten, while pinned handles stay valid."""
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b | ~a & c")
        expected = _truth_vector(mgr, f)
        mgr.pin(f)
        live = mgr.live_nodes()
        for level in (0, 1, 0, 1):
            mgr.swap_adjacent(level)
            mgr.check_invariants()
        mgr.unpin(f)
        assert _truth_vector(mgr, f) == expected
        assert mgr.live_nodes() <= live + 2  # no unbounded garbage

    def test_swap_twice_restores_order_and_size(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c & f")
        order = mgr.var_names
        size = mgr.size(f)
        mgr.swap_adjacent(2)
        assert mgr.var_names != order
        mgr.swap_adjacent(2)
        assert mgr.var_names == order
        assert mgr.size(f) == size
        mgr.check_invariants()

    def test_swap_invalidates_level_keyed_cache_entries(self):
        """Regression: cofactor/exists results are memoized by *level*;
        a swap that frees no nodes must still flush them, or a later
        cofactor at that level answers for the wrong variable."""
        mgr = BDD(["a", "b", "c"])
        f = mgr.xor(mgr.var("a"), mgr.var("c"))
        mgr.pin(f)
        assert mgr.cofactor(f, 2, True) == mgr.var("a") ^ 1  # w.r.t. c
        mgr.swap_adjacent(1)  # levels 1/2 now hold c/b
        # f does not depend on b (now level 2): cofactor is f itself.
        assert mgr.cofactor(f, 2, True) == f
        mgr.unpin(f)

    def test_swap_rejects_bad_level(self):
        mgr = BDD(NAMES)
        from repro.bdd import BDDError

        with pytest.raises(BDDError):
            mgr.swap_adjacent(len(NAMES) - 1)
        with pytest.raises(BDDError):
            mgr.swap_adjacent(-1)


class TestGc:
    @settings(max_examples=40, deadline=None)
    @given(manager_with_roots())
    def test_gc_preserves_roots_and_compacts(self, built):
        mgr, roots = built
        before = [_truth_vector(mgr, root) for root in roots]
        live_before = mgr.live_nodes()
        collected = mgr.gc(roots)
        assert collected >= 0
        assert mgr.live_nodes() == live_before - collected
        # Post-GC the store holds exactly the reachable nodes.
        assert mgr.live_nodes() == mgr.size_many(roots) + 1
        mgr.check_invariants()
        for root, expected in zip(roots, before):
            assert _truth_vector(mgr, root) == expected

    def test_gc_is_idempotent(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b | ~c & d")
        assert mgr.gc([f]) > 0  # construction scratch dies
        assert mgr.gc([f]) == 0

    def test_num_nodes_keeps_counting_allocations(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & b | c")
        created = mgr.num_nodes()
        assert created == len(mgr._level)
        mgr.gc([f])
        assert mgr.num_nodes() == created  # monotone allocation counter
        assert mgr.live_nodes() < created
        g = mgr.and_(f, mgr.var("d"))
        assert mgr.num_nodes() > created  # recycled slots still count
        assert mgr.eval(g, {"a": 1, "b": 1, "c": 0, "d": 1})


class TestInPlaceSift:
    @settings(max_examples=40, deadline=None)
    @given(manager_with_roots())
    def test_sift_preserves_function_never_worsens(self, built):
        mgr, roots = built
        before = [_truth_vector(mgr, root) for root in roots]
        result = mgr.sift(roots)
        assert isinstance(result, SiftResult)
        assert result.final_size <= result.initial_size
        assert result.final_size == mgr.live_nodes()
        mgr.check_invariants()
        for root, expected in zip(roots, before):
            assert _truth_vector(mgr, root) == expected

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_inplace_matches_rebuild_quality(self, seed):
        """The in-place pass searches the same neighborhood with the
        same tie-breaks as the rebuild-based baseline, so both must
        land on orders of identical size."""
        rng = random.Random(seed)
        mgr_a = BDD(NAMES)
        f_a = random_function(mgr_a, NAMES, rng, depth=5)
        rng = random.Random(seed)
        mgr_b = BDD(NAMES)
        f_b = random_function(mgr_b, NAMES, rng, depth=5)
        mgr_a.sift([f_a])
        rebuilt, (g,) = sift_rebuild(mgr_b, [f_b])
        assert mgr_a.size(f_a) == rebuilt.size(g)
        assert mgr_a.var_names == rebuilt.var_names

    def test_sift_finds_interleaved_order_in_place(self):
        mgr = BDD(["a1", "a2", "a3", "b1", "b2", "b3"])
        f = mgr.from_expr("a1 & b1 | a2 & b2 | a3 & b3")
        result = mgr.sift([f])
        assert result.changed
        assert mgr.size(f) <= 7  # optimal comparator order is 6 nodes

    def test_sift_reports_no_change_on_optimal_input(self):
        mgr = BDD(["a", "b"])
        f = mgr.from_expr("a & b")
        result = mgr.sift([f])
        assert not result.changed
        assert result.initial_size == result.final_size

    def test_max_growth_aborts_explosive_walks(self):
        mgr = BDD(NAMES)
        f = mgr.from_expr("a & d | b & e | c & f")
        tight = mgr.sift([f], max_growth=1.0)
        # With zero tolerated growth the walks stop at the first uphill
        # step; the pass must still terminate, keep the function, and
        # never worsen (best-seen backtracking).
        assert tight.final_size <= tight.initial_size
        mgr.check_invariants()


class TestLargeConesAreReordered:
    def test_wide_supernode_gets_sifted(self):
        """Regression: >14-variable supernodes were skipped by the old
        rebuild-sift guards; the in-place engine reorders them."""
        from repro.flows.bds import BdsFlowConfig, bds_optimize
        from repro.network import LogicNetwork

        pairs = 8  # 16 boundary variables on one node — over the old guard
        net = LogicNetwork("wide")
        names = []
        for i in range(pairs):
            names += [f"a{i}", f"b{i}"]
        for name in names:
            net.add_input(name)
        # One wide comparator-style node a0&b0 | a1&b1 | ... with the
        # pathological separated order a0..a7 b0..b7 baked into the
        # fanin list: sifting must interleave it.
        fanins = [f"a{i}" for i in range(pairs)] + [f"b{i}" for i in range(pairs)]
        rows = []
        for i in range(pairs):
            row = ["-"] * (2 * pairs)
            row[i] = "1"
            row[pairs + i] = "1"
            rows.append("".join(row))
        net.add_node("y", fanins, rows)
        net.add_output("y")

        config = BdsFlowConfig(verify=True)
        _optimized, _counts, trace = bds_optimize(net, config)
        assert trace.supernodes >= 1
        assert trace.sifted >= 1  # the old guards left this at 0

    def test_reorder_sift_wrapper_handles_wide_functions(self):
        mgr = BDD([f"v{i}" for i in range(16)])
        f = mgr.or_many(
            mgr.and_(mgr.var(f"v{i}"), mgr.var(f"v{i + 8}")) for i in range(8)
        )
        before = mgr.size(f)
        same_mgr, (g,) = sift(mgr, [f])  # no guards: wide inputs sift too
        assert same_mgr is mgr and g == f
        assert mgr.size(f) < before
