"""End-to-end HTTP tests for the serving layer.

The headline test mirrors the acceptance criteria: two concurrent
submissions, one cancelled mid-flight, and the completed job's report
byte-compared against :func:`repro.flows.run_batch` for the same
circuits.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.flows import BatchConfig, run_batch
from repro.serve import SynthesisService

from .client import HttpClient, http_json, http_request, poll_job

CIRCUITS = ["alu2", "f51m"]


def run(coro):
    return asyncio.run(coro)


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


class TestEndToEnd:
    def test_served_report_matches_run_batch_and_cancel_is_isolated(self):
        """Submit two jobs over HTTP; cancel the queued one mid-flight;
        the survivor's report must be byte-identical to run_batch."""

        async def scenario(service, host, port):
            status, first = await http_json(
                host, port, "POST", "/jobs", {"circuits": CIRCUITS}
            )
            assert status == 202
            assert first["status"] in ("queued", "running")
            # Concurrency is 1, so the second job queues behind the
            # first — cancelling it must not disturb the survivor.
            status, second = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["vda"]}
            )
            assert status == 202
            status, cancelled = await http_json(
                host, port, "POST", f"/jobs/{second['id']}/cancel"
            )
            assert status == 200
            assert cancelled["status"] == "cancelled"

            done = await poll_job(host, port, first["id"])
            assert done["status"] == "done"
            assert done["result_ready"] is True
            status, served = await http_request(
                host, port, "GET", f"/jobs/{first['id']}/result"
            )
            assert status == 200
            expected = run_batch(CIRCUITS, BatchConfig()).to_json().encode()
            assert served == expected

            status, final = await http_json(
                host, port, "GET", f"/jobs/{second['id']}"
            )
            assert final["status"] == "cancelled"
            assert final["result_ready"] is False
            return served

        run(_with_service(scenario, concurrency=1))

    def test_concurrent_submissions_all_complete(self):
        async def scenario(service, host, port):
            submissions = await asyncio.gather(
                *(
                    http_json(host, port, "POST", "/jobs", {"circuits": [key]})
                    for key in ("alu2", "f51m", "vda")
                )
            )
            payloads = [payload for status, payload in submissions]
            assert all(status == 202 for status, _ in submissions)
            assert len({p["id"] for p in payloads}) == 3
            finals = await asyncio.gather(
                *(poll_job(host, port, p["id"]) for p in payloads)
            )
            assert [f["status"] for f in finals] == ["done"] * 3

        run(_with_service(scenario, concurrency=2))

    def test_event_stream_carries_stage_progress(self):
        async def scenario(service, host, port):
            _, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            # The stream endpoint follows the job live until terminal,
            # so reading it to EOF doubles as waiting for completion.
            status, raw = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/events"
            )
            assert status == 200
            events = [json.loads(line) for line in raw.decode().splitlines()]
            assert all(event["job"] == job["id"] for event in events)
            states = [e["status"] for e in events if e["type"] == "state"]
            assert states == ["queued", "running", "done"]
            stages = [e for e in events if e["type"] == "stage"]
            starts = [e["stage"] for e in stages if e["kind"] == "stage_start"]
            ends = [e["stage"] for e in stages if e["kind"] == "stage_end"]
            # The bds-maj optimize prefix, streamed live per stage.
            assert starts == ends
            assert "decompose" in starts
            assert all("seconds" in e for e in stages if e["kind"] == "stage_end")
            circuit_lines = [e for e in events if e["type"] == "circuit"]
            assert any("f51m" in e["message"] for e in circuit_lines)

        run(_with_service(scenario, concurrency=1))

    def test_result_formats_and_conflict(self):
        async def scenario(service, host, port):
            _, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            await poll_job(host, port, job["id"])
            status, csv_body = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/result?format=csv"
            )
            assert status == 200
            expected = run_batch(["f51m"], BatchConfig()).to_csv().encode()
            assert csv_body == expected
            status, timed = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/result?timings=1"
            )
            assert status == 200
            assert b"elapsed_seconds" in timed

        run(_with_service(scenario, concurrency=1))


class TestKeepAlive:
    def test_many_requests_share_one_connection(self):
        """HTTP/1.1 default: the socket survives framed responses, and a
        whole submit/poll/result conversation rides one connection."""

        async def scenario(service, host, port):
            client = await HttpClient.connect(host, port)
            try:
                for _ in range(3):
                    status, health = await client.request_json("GET", "/healthz")
                    assert status == 200
                    assert health["status"] == "ok"
                    assert client.last_headers["connection"] == "keep-alive"
                status, job = await client.request_json(
                    "POST", "/jobs", {"circuits": ["f51m"]}
                )
                assert status == 202
                while True:
                    _, payload = await client.request_json(
                        "GET", f"/jobs/{job['id']}"
                    )
                    if payload["status"] == "done":
                        break
                    await asyncio.sleep(0.05)
                status, served = await client.request(
                    "GET", f"/jobs/{job['id']}/result"
                )
                assert status == 200
                assert client.requests_sent >= 5  # all on one socket
                expected = run_batch(["f51m"], BatchConfig()).to_json().encode()
                assert served == expected
            finally:
                await client.aclose()

        run(_with_service(scenario, concurrency=1))

    def test_connection_close_is_honored(self):
        """A ``Connection: close`` request ends the persistent
        connection after the response."""

        async def scenario(service, host, port):
            client = await HttpClient.connect(host, port)
            try:
                status, _body = await client.request(
                    "GET", "/healthz", close=True
                )
                assert status == 200
                assert client.last_headers["connection"] == "close"
                assert await client._reader.read() == b""  # EOF: closed
            finally:
                await client.aclose()

        run(_with_service(scenario, concurrency=1))


class TestProtocolErrors:
    def test_error_statuses(self):
        async def scenario(service, host, port):
            checks = [
                ("GET", "/nope", None, 404),
                ("GET", "/jobs/job-999999", None, 404),
                ("POST", "/jobs/job-999999/cancel", None, 404),
                ("DELETE", "/jobs", None, 405),
                ("POST", "/healthz", None, 405),
                ("POST", "/jobs", {"circuits": []}, 400),
                ("POST", "/jobs", {"circuits": ["no-such-circuit-or-file"]}, 400),
                ("POST", "/jobs", {"circuits": ["alu2"], "workers": 0}, 400),
                ("POST", "/jobs", {"circuits": ["alu2"], "typo": 1}, 400),
            ]
            for method, path, body, expected in checks:
                status, payload = await http_json(host, port, method, path, body)
                assert status == expected, (method, path, payload)
                assert "error" in payload

        run(_with_service(scenario, concurrency=1))

    def test_result_before_done_is_conflict(self):
        async def scenario(service, host, port):
            # alu2 takes long enough that the result request lands
            # while the job is still queued or running.
            _, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            status, payload = await http_json(
                host, port, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 409
            assert "no result" in payload["error"]
            await poll_job(host, port, job["id"])

        run(_with_service(scenario, concurrency=1))

    def test_healthz_counts_jobs(self):
        async def scenario(service, host, port):
            _, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            await poll_job(host, port, job["id"])
            status, health = await http_json(host, port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["jobs"]["done"] == 1
            status, listing = await http_json(host, port, "GET", "/jobs")
            assert [j["id"] for j in listing["jobs"]] == [job["id"]]

        run(_with_service(scenario, concurrency=1))


@pytest.mark.parametrize("concurrency", [0, -1])
def test_service_rejects_bad_concurrency(concurrency):
    with pytest.raises(ValueError):
        SynthesisService(concurrency=concurrency)


class TestRunningPooledJobCancel:
    def test_cancel_running_pooled_job_reaps_workers(self):
        """Regression: pool workers forked from a process with asyncio
        loop signal handlers (as installed by ``run_server``) inherit
        them; without the pool initializer resetting SIGTERM, the
        ``pool.terminate()`` on cancel deadlocked in ``join()`` and the
        whole service froze."""
        import signal

        async def scenario(service, host, port):
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, lambda: None)
            try:
                _, job = await http_json(
                    host,
                    port,
                    "POST",
                    "/jobs",
                    {"circuits": ["c6288", "wallace16"], "workers": 2},
                )
                deadline = loop.time() + 60
                while True:
                    _, payload = await http_json(
                        host, port, "GET", f"/jobs/{job['id']}"
                    )
                    if payload["status"] == "running":
                        break
                    assert loop.time() < deadline
                    await asyncio.sleep(0.05)
                await asyncio.sleep(0.5)  # let the pool fork and get busy
                _, cancelled = await http_json(
                    host, port, "POST", f"/jobs/{job['id']}/cancel"
                )
                assert cancelled["cancel_requested"] is True
                # The service must stay responsive and the job must
                # reach "cancelled" promptly — a deadlocked pool join
                # would block the executor and time this out.
                final = await poll_job(host, port, job["id"], timeout=30)
                assert final["status"] == "cancelled"
                _, health = await http_json(host, port, "GET", "/healthz")
                assert health["status"] == "ok"
            finally:
                loop.remove_signal_handler(signal.SIGTERM)

        run(_with_service(scenario, concurrency=1))


class TestArenaRefresh:
    def test_completed_job_extends_the_snapshot(self):
        """``--arena refresh``: a finished job for a registry circuit
        the snapshot does not cover triggers a republish — the fresh
        arena includes the new circuit's cones, the shared store's
        counters keep surfacing through ``/metrics``, and in-flight
        state never resets (refreshes are counted, not rebuilt from
        zero)."""

        async def scenario(service, host, port):
            status, metrics = await http_json(host, port, "GET", "/metrics")
            arena = metrics["arena"]
            assert arena["circuits"] == ["alu2"]
            assert arena["mode"] == "refresh"
            assert arena["refreshes"] == 0
            assert arena["store"]["nodes"] >= 1  # live store counters
            initial_nodes = arena["nodes"]

            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            assert status == 202
            final = await poll_job(host, port, job["id"])
            assert final["status"] == "done"
            # The republish runs on an executor thread after the
            # terminal transition; poll the metrics until it lands.
            deadline = asyncio.get_running_loop().time() + 30
            while True:
                status, metrics = await http_json(host, port, "GET", "/metrics")
                arena = metrics["arena"]
                if arena["refreshes"] >= 1:
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            assert arena["circuits"] == ["alu2", "f51m"]
            assert arena["refreshes"] == 1
            assert arena["nodes"] > initial_nodes
            # A repeat submission of the now-covered circuit must not
            # queue another refresh.
            status, again = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            assert status == 202
            await poll_job(host, port, again["id"])
            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert metrics["arena"]["refreshes"] == 1

        run(
            _with_service(
                scenario,
                concurrency=1,
                arena_circuits=("alu2",),
                arena_refresh=True,
            )
        )
