"""Hardening of the HTTP front end against misbehaving clients.

Slowloris-style stalls, header floods, oversized lines and malformed
``Content-Length`` values must each produce a bounded, well-typed
response (or a quiet close) — never a hung handler or a 500.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import SynthesisService

from .client import HttpClient


def run(coro):
    return asyncio.run(coro)


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


async def _raw_exchange(host: str, port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        # Read concurrently with the write: the server may answer (and
        # half-close) while a deliberately oversized payload is still
        # in flight, and the response must not be lost to a reset.
        read_task = asyncio.ensure_future(reader.read())
        try:
            writer.write(payload)
            await writer.drain()
        except ConnectionError:
            pass
        return await asyncio.wait_for(read_task, timeout=30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _status_of(response: bytes) -> int:
    return int(response.split(b"\r\n", 1)[0].split()[1])


class TestSlowClients:
    def test_idle_connection_is_closed_quietly(self):
        """A client that connects and never sends a request line is
        dropped after the idle timeout without any response bytes."""

        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                data = await asyncio.wait_for(reader.read(), timeout=30.0)
                assert data == b""  # quiet close: no 408, no error body
            finally:
                writer.close()
                await writer.wait_closed()

        run(_with_service(scenario, idle_timeout=0.2))

    def test_stalled_mid_request_gets_408(self):
        """A client that sends the request line then goes silent gets a
        408 instead of parking a handler forever."""

        async def scenario(service, host, port):
            response = await _raw_exchange(
                host, port, b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
            )  # header section never terminated
            assert _status_of(response) == 408

        run(_with_service(scenario, idle_timeout=0.2))

    def test_stalled_body_gets_408(self):
        async def scenario(service, host, port):
            head = (
                b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 100\r\n\r\n{"
            )  # promises 100 bytes, sends one
            response = await _raw_exchange(host, port, head)
            assert _status_of(response) == 408

        run(_with_service(scenario, idle_timeout=0.2))

    def test_fast_clients_are_unaffected_by_the_timeout(self):
        async def scenario(service, host, port):
            client = await HttpClient.connect(host, port)
            try:
                status, payload = await client.request_json("GET", "/healthz")
                assert status == 200 and payload["status"] == "ok"
            finally:
                await client.aclose()

        run(_with_service(scenario, idle_timeout=5.0))


class TestMalformedFraming:
    def test_header_flood_gets_431(self):
        async def scenario(service, host, port):
            flood = b"".join(
                b"X-Flood-%d: y\r\n" % i for i in range(500)
            )
            response = await _raw_exchange(
                host, port, b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n"
            )
            assert _status_of(response) == 431
            body = json.loads(response.split(b"\r\n\r\n", 1)[1])
            assert "header lines" in body["error"]

        run(_with_service(scenario))

    def test_overlong_header_line_gets_431_not_500(self):
        """A header line past the stream limit used to surface as the
        stream reader's ValueError — a generic 500."""

        async def scenario(service, host, port):
            huge = b"X-Huge: " + b"a" * (1 << 20) + b"\r\n"
            response = await _raw_exchange(
                host,
                port,
                b"GET /healthz HTTP/1.1\r\n" + huge + b"\r\n",
            )
            assert _status_of(response) == 431

        run(_with_service(scenario))

    def test_overlong_request_line_gets_431(self):
        async def scenario(service, host, port):
            response = await _raw_exchange(
                host, port, b"GET /" + b"a" * (1 << 20) + b" HTTP/1.1\r\n\r\n"
            )
            assert _status_of(response) == 431

        run(_with_service(scenario))


class TestContentLength:
    def _request_with_length(self, raw: bytes) -> bytes:
        return (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: "
            + raw
            + b"\r\n\r\n"
        )

    def test_rejects_negative_plus_and_padded_values(self):
        """Bare ``int()`` accepts all of these; the wire must not."""

        async def scenario(service, host, port):
            # Note b" 5 " is absent: header values are OWS-trimmed at
            # parse time (standard HTTP), so it legitimately means 5.
            for raw in (b"-5", b"+5", b"5 5", b"5_0", b"0x10", b"nope", b""):
                response = await _raw_exchange(
                    host, port, self._request_with_length(raw)
                )
                assert _status_of(response) == 400, raw
                body = json.loads(response.split(b"\r\n\r\n", 1)[1])
                assert "Content-Length" in body["error"]

        run(_with_service(scenario))

    def test_oversized_body_still_413(self):
        async def scenario(service, host, port):
            response = await _raw_exchange(
                host, port, self._request_with_length(b"2097152")
            )
            assert _status_of(response) == 413

        run(_with_service(scenario))

    def test_valid_zero_and_exact_lengths_still_work(self):
        async def scenario(service, host, port):
            client = await HttpClient.connect(host, port)
            try:
                status, _ = await client.request_json("GET", "/healthz")
                assert status == 200
                status, payload = await client.request_json(
                    "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                assert payload["status"] in ("queued", "running", "done")
            finally:
                await client.aclose()

        run(_with_service(scenario))
