"""Chaos tests: poison-job quarantine and the shard circuit breaker.

The headline test stages the crash loop the quarantine exists for: a
fault plan SIGKILLs the server every time one circuit is synthesized,
and after ``--max-attempts`` starts the replay must park the job as
``quarantined`` — terminal, inspectable, counted — instead of letting
it kill the service forever.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import JobRequest, JobStore, SynthesisService
from repro.serve.journal import JobJournal
from repro.serve.shard import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    ShardDispatcher,
)

from .client import http_json, http_request, poll_job


def run(coro):
    return asyncio.run(coro)


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


def _journal_with_attempts(path: Path, attempts: int) -> str:
    """Write a journal holding one non-terminal job started ``attempts``
    times; returns the job id."""
    journal = JobJournal(path, fsync=False)
    journal.open()
    store = JobStore(journal=journal)
    job = store.create(JobRequest(circuits=("alu2",)), [])
    if attempts > 1:
        job.attempts = attempts
        journal.record_attempt(job)
    journal.close()
    return job.id


class TestReplayGate:
    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            SynthesisService(port=0, max_attempts=0)

    def test_below_threshold_replays_with_incremented_attempts(self, tmp_path):
        path = tmp_path / "jobs.journal"
        job_id = _journal_with_attempts(path, attempts=2)

        async def scenario(service, host, port):
            final = await poll_job(host, port, job_id)
            assert final["status"] == "done"
            # The replay re-enqueue is itself one more start.
            assert final["attempts"] == 3

        run(
            _with_service(
                scenario, concurrency=1, journal_path=path, max_attempts=3
            )
        )

    def test_at_threshold_quarantines_without_running(self, tmp_path):
        path = tmp_path / "jobs.journal"
        job_id = _journal_with_attempts(path, attempts=3)

        async def scenario(service, host, port):
            status, payload = await http_json(
                host, port, "GET", f"/jobs/{job_id}"
            )
            assert status == 200
            assert payload["status"] == "quarantined"
            assert payload["attempts"] == 3
            assert "quarantined after 3 attempt(s)" in payload["error"]
            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert metrics["counters"]["jobs_quarantined"] == 1

        run(
            _with_service(
                scenario, concurrency=1, journal_path=path, max_attempts=3
            )
        )

    def test_quarantine_is_terminal_across_restarts(self, tmp_path):
        path = tmp_path / "jobs.journal"
        job_id = _journal_with_attempts(path, attempts=3)

        async def quarantined(service, host, port):
            status, payload = await http_json(
                host, port, "GET", f"/jobs/{job_id}"
            )
            assert payload["status"] == "quarantined"
            assert payload["attempts"] == 3

        run(
            _with_service(
                quarantined, concurrency=1, journal_path=path, max_attempts=3
            )
        )
        # Second restart: the quarantine record replays as terminal
        # state — the job is not re-counted, re-enqueued, or re-parked.
        run(
            _with_service(
                quarantined, concurrency=1, journal_path=path, max_attempts=3
            )
        )


#: Stall long enough for the HTTP 202 to flush, then kill the process:
#: the poison job crashes the whole server on every run.
_POISON_PLAN = json.dumps(
    {
        "seed": 7,
        "faults": [
            {"site": "batch.worker", "action": "stall", "match": "f51m:", "seconds": 0.5},
            {"site": "batch.worker", "action": "kill", "match": "f51m:"},
        ],
    }
)


def _spawn_poisoned(journal: Path, wait_listen: bool):
    """Start a ``bdsmaj serve --max-attempts 3`` subprocess whose fault
    plan SIGKILLs it whenever f51m is synthesized."""
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(src_root)
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env["BDSMAJ_AUTH_TOKEN"] = ""
    env["BDSMAJ_FAULT_PLAN"] = _POISON_PLAN
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--arena",
            "off",
            "--concurrency",
            "1",
            "--max-attempts",
            "3",
            "--journal",
            str(journal),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE if wait_listen else subprocess.DEVNULL,
    )
    if not wait_listen:
        return process, None
    pattern = re.compile(r"listening on http://([0-9.]+):(\d+)")
    while True:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"server exited with {process.wait()} before listening"
            )
        match = pattern.search(line.decode("utf-8", "replace"))
        if match:
            return process, int(match.group(2))


class TestPoisonJobCrashLoop:
    def test_poison_job_quarantined_after_exactly_max_attempts_starts(
        self, tmp_path
    ):
        """Submit a job the fault plan turns poisonous.  Run 1 accepts
        it and dies; restarts 2 and 3 replay, re-enqueue (attempts 2
        and 3) and die again; restart 4 quarantines it instead of
        running it — and stays up to serve other work."""
        journal = tmp_path / "jobs.journal"
        process, port = _spawn_poisoned(journal, wait_listen=True)
        try:

            async def submit():
                status, job = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["f51m"]}
                )
                assert status == 202
                return job["id"]

            job_id = run(submit())
            # The fault plan SIGKILLs the server as soon as it starts
            # synthesizing (start 1 of max_attempts=3).
            assert process.wait(timeout=120) == -signal.SIGKILL
        finally:
            process.kill()
            process.wait()

        # Starts 2 and 3: replay re-enqueues the job (journaling the
        # incremented attempt count first) and the poison kills the
        # server again each time.
        for _ in range(2):
            process, _ = _spawn_poisoned(journal, wait_listen=False)
            try:
                assert process.wait(timeout=120) == -signal.SIGKILL
            finally:
                process.kill()
                process.wait()

        # Start 4: the attempt budget is spent; the job is parked.
        process, port = _spawn_poisoned(journal, wait_listen=True)
        try:

            async def after_quarantine():
                status, payload = await http_json(
                    "127.0.0.1", port, "GET", f"/jobs/{job_id}"
                )
                assert status == 200
                assert payload["status"] == "quarantined"
                assert payload["attempts"] == 3
                assert "quarantined after 3 attempt(s)" in payload["error"]
                status, metrics = await http_json(
                    "127.0.0.1", port, "GET", "/metrics"
                )
                assert metrics["counters"]["jobs_quarantined"] == 1
                # The service survives and still does real work (the
                # plan is armed but alu2 never matches it).
                status, job = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                final = await poll_job("127.0.0.1", port, job["id"])
                assert final["status"] == "done"

            run(after_quarantine())
        finally:
            process.terminate()
            process.wait(timeout=30)


#: Kill the server inside :meth:`JobJournal.compact`, in the window
#: where the temp rewrite is durable but ``os.replace`` has not run —
#: the old journal must still replay everything.
_COMPACT_CRASH_PLAN = json.dumps(
    {"seed": 7, "faults": [{"site": "journal.compact", "action": "kill"}]}
)


def _spawn_compacting(journal: Path, plan: "str | None"):
    """Start a serve subprocess with ``--journal-compact-bytes 1`` (the
    first terminal record triggers compaction); ``plan`` arms the fault
    plan, ``None`` runs clean.  Returns (process, port)."""
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(src_root)
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env["BDSMAJ_AUTH_TOKEN"] = ""
    env.pop("BDSMAJ_FAULT_PLAN", None)
    if plan is not None:
        env["BDSMAJ_FAULT_PLAN"] = plan
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--arena",
            "off",
            "--concurrency",
            "1",
            "--journal",
            str(journal),
            "--journal-compact-bytes",
            "1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    pattern = re.compile(r"listening on http://([0-9.]+):(\d+)")
    while True:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"server exited with {process.wait()} before listening"
            )
        match = pattern.search(line.decode("utf-8", "replace"))
        if match:
            return process, int(match.group(2))


class TestCrashDuringCompaction:
    def test_sigkill_between_temp_write_and_rename_replays_bytes(
        self, tmp_path
    ):
        """SIGKILL the server *inside* compaction — after the temp
        rewrite is fsync'd, before the rename.  The orphaned ``.compact``
        temp must be ignored, the old journal must replay the finished
        job, and its result bytes must match a clean run's exactly."""
        journal = tmp_path / "jobs.journal"
        process, port = _spawn_compacting(journal, _COMPACT_CRASH_PLAN)
        try:

            async def submit():
                status, job = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                return job["id"]

            job_id = run(submit())
            # The terminal record lands (fsync'd), compaction starts,
            # and the fault kills the process before the rename.
            assert process.wait(timeout=120) == -signal.SIGKILL
        finally:
            process.kill()
            process.wait()

        # The crash signature: a completed temp rewrite next to the
        # intact old journal.
        assert journal.with_name(journal.name + ".compact").exists()
        assert journal.stat().st_size > 0

        # Restart clean: replay restores the finished job and the next
        # compaction (same tiny threshold) completes normally.
        process, port = _spawn_compacting(journal, None)
        try:

            async def after_crash():
                status, payload = await http_json(
                    "127.0.0.1", port, "GET", f"/jobs/{job_id}"
                )
                assert status == 200
                assert payload["status"] == "done"
                status, body = await http_request(
                    "127.0.0.1", port, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                status, metrics = await http_json(
                    "127.0.0.1", port, "GET", "/metrics"
                )
                assert metrics["journal"]["replayed_jobs"] == 1
                return body

            replayed_bytes = run(after_crash())
        finally:
            process.terminate()
            process.wait(timeout=30)

        # Byte-identity: an uncrashed server answers the same submission
        # with exactly the same result bytes.
        reference_journal = tmp_path / "reference.journal"
        process, port = _spawn_compacting(reference_journal, None)
        try:

            async def reference():
                status, job = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                await poll_job("127.0.0.1", port, job["id"])
                status, body = await http_request(
                    "127.0.0.1", port, "GET", f"/jobs/{job['id']}/result"
                )
                assert status == 200
                return body

            reference_bytes = run(reference())
        finally:
            process.terminate()
            process.wait(timeout=30)
        assert replayed_bytes == reference_bytes


def _dispatcher(**overrides) -> ShardDispatcher:
    """An unstarted dispatcher: the breaker state machine is pure
    bookkeeping, so it is unit-testable without spawning backends."""
    kwargs = dict(
        backends=1,
        breaker_threshold=2,
        breaker_base_seconds=0.4,
        breaker_max_seconds=1.6,
        rapid_failure_seconds=5.0,
    )
    kwargs.update(overrides)
    return ShardDispatcher(**kwargs)


class TestBreakerStateMachine:
    def test_knob_validation(self):
        with pytest.raises(ValueError, match="breaker_threshold"):
            _dispatcher(breaker_threshold=0)
        with pytest.raises(ValueError, match="backoff seconds"):
            _dispatcher(breaker_base_seconds=0.0)
        with pytest.raises(ValueError, match="rapid_failure_seconds"):
            _dispatcher(rapid_failure_seconds=0.0)

    def test_rapid_streak_opens_the_breaker(self):
        dispatcher = _dispatcher()
        backend = dispatcher.backends[0]
        backend.started_at = 100.0
        dispatcher._note_failure(backend, 101.0)
        assert backend.breaker_state == BREAKER_CLOSED
        assert backend.failure_streak == 1
        backend.started_at = 101.0  # respawned, dies rapidly again
        dispatcher._note_failure(backend, 102.0)
        assert backend.breaker_state == BREAKER_OPEN
        assert backend.breaker_opens == 1
        assert backend.retry_at == pytest.approx(102.0 + 0.4)

    def test_slow_failures_reset_the_streak(self):
        dispatcher = _dispatcher()
        backend = dispatcher.backends[0]
        backend.started_at = 100.0
        dispatcher._note_failure(backend, 101.0)
        backend.started_at = 101.0
        # Died long after the rapid window: an ordinary crash, not a
        # crash loop — the streak restarts at one.
        dispatcher._note_failure(backend, 110.0)
        assert backend.breaker_state == BREAKER_CLOSED
        assert backend.failure_streak == 1

    def test_reopens_double_the_backoff_up_to_the_ceiling(self):
        dispatcher = _dispatcher()
        backend = dispatcher.backends[0]
        for expected in (0.4, 0.8, 1.6, 1.6):  # capped at the ceiling
            dispatcher._trip_breaker(backend, 200.0)
            assert backend.breaker_state == BREAKER_OPEN
            assert backend.retry_at == pytest.approx(200.0 + expected)
        assert backend.breaker_opens == 4

    def test_close_resets_streaks_and_backoff(self):
        dispatcher = _dispatcher()
        backend = dispatcher.backends[0]
        dispatcher._trip_breaker(backend, 200.0)
        dispatcher._trip_breaker(backend, 201.0)
        dispatcher._close_breaker(backend)
        assert backend.breaker_state == BREAKER_CLOSED
        assert backend.failure_streak == 0
        assert backend.open_streak == 0
        dispatcher._trip_breaker(backend, 300.0)
        assert backend.retry_at == pytest.approx(300.0 + 0.4)  # base again


class _FakeProcess:
    def __init__(self, returncode):
        self.returncode = returncode


class TestBreakerSupervision:
    def test_supervisor_walks_closed_open_half_open_and_back(self):
        """Drive the real supervisor loop against a fake backend: a
        crash-looping backend must open the breaker and back off, a
        failing half-open probe must re-trip it, and a probe that
        survives the rapid window must close it again."""

        async def scenario():
            dispatcher = _dispatcher(
                breaker_threshold=2,
                breaker_base_seconds=0.15,
                breaker_max_seconds=10.0,
                rapid_failure_seconds=0.25,
                health_interval=0.05,
            )
            backend = dispatcher.backends[0]
            respawn_ok = {"value": False}

            async def fake_respawn(target):
                dispatcher.respawns += 1
                if not respawn_ok["value"]:
                    return False
                target.process = _FakeProcess(None)
                target.host, target.port = "127.0.0.1", 1
                target.health_failures = 0
                target.started_at = time.monotonic()
                return True

            async def fake_request(target, method, path, timeout=2.0):
                return 200, {}, b"{}"

            dispatcher._respawn = fake_respawn
            dispatcher._backend_request = fake_request
            backend.process = _FakeProcess(returncode=1)  # born dead
            backend.started_at = time.monotonic()

            async def wait_for(predicate, timeout=10.0):
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if predicate():
                        return True
                    await asyncio.sleep(0.02)
                return False

            supervisor = asyncio.ensure_future(dispatcher._supervise())
            try:
                # Rapid deaths with failing respawns: breaker opens.
                assert await wait_for(
                    lambda: backend.breaker_state == BREAKER_OPEN
                )
                # The half-open probe also fails: it re-trips with a
                # doubled backoff instead of hammering the spawn path.
                assert await wait_for(lambda: backend.breaker_opens >= 2)
                assert backend.open_streak >= 2
                # Let the probe succeed; surviving the rapid window
                # closes the breaker and resets every streak.
                respawn_ok["value"] = True
                assert await wait_for(
                    lambda: backend.breaker_state == BREAKER_CLOSED
                )
                assert backend.failure_streak == 0
                assert backend.open_streak == 0
            finally:
                supervisor.cancel()
                try:
                    await supervisor
                except asyncio.CancelledError:
                    pass

        run(scenario())
