"""Minimal async HTTP client for exercising the serve layer in tests.

Blocking clients (``http.client``, ``urllib``) would stall the event
loop the server under test runs on, so the tests speak HTTP/1.1 over
``asyncio.open_connection`` directly — exactly the protocol subset the
server implements, including persistent connections:
:class:`HttpClient` frames responses by ``Content-Length`` and reuses
one socket across requests (the keep-alive path), while
:func:`http_request` stays the one-shot convenience (it sends
``Connection: close`` and reads to EOF).
"""

from __future__ import annotations

import asyncio
import json


class HttpClient:
    """A persistent (keep-alive) HTTP/1.1 connection.

    Usage::

        client = await HttpClient.connect(host, port)
        try:
            status, body = await client.request("GET", "/healthz")
            status, body = await client.request("GET", "/jobs")  # same socket
        finally:
            await client.aclose()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: Requests served over this connection (tests assert reuse).
        self.requests_sent = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "HttpClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        close: bool = False,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One request over the persistent connection.

        Responses are framed by ``Content-Length`` so the socket stays
        usable for the next request; when the server answers
        ``Connection: close`` (or ``close=True`` was sent) the rest of
        the stream is drained instead.
        """
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        if close:
            head += "Connection: close\r\n"
        self._writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await self._writer.drain()
        self.requests_sent += 1

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split(None, 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            data = await self._reader.readexactly(int(length))
        else:  # unframed stream (events): the body ends with the socket
            data = await self._reader.read()
        self.last_headers = headers
        return status, data

    async def request_json(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        status, raw = await self.request(method, path, body)
        return status, json.loads(raw)

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes]:
    """One request on a fresh connection (sends ``Connection: close``);
    returns ``(status, body_bytes)`` after the server closes it."""
    client = await HttpClient.connect(host, port)
    try:
        status, first = await client.request(
            method, path, body, close=True, headers=headers
        )
        # Read-to-EOF keeps the historical contract exact for streamed
        # responses that follow the framed part (there are none today,
        # but the events endpoint is unframed end-to-end).
        rest = await client._reader.read()
    finally:
        await client.aclose()
    return status, first + rest


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict]:
    status, raw = await http_request(host, port, method, path, body, headers)
    return status, json.loads(raw)


async def poll_job(
    host: str, port: int, job_id: str, *, timeout: float = 120.0
) -> dict:
    """Poll ``GET /jobs/<id>`` until the job reaches a terminal state.

    All polls ride one keep-alive connection — the very pattern the
    persistent-connection support exists for.
    """
    deadline = asyncio.get_running_loop().time() + timeout
    client = await HttpClient.connect(host, port)
    try:
        while True:
            _status, payload = await client.request_json(
                "GET", f"/jobs/{job_id}"
            )
            if payload["status"] in ("done", "error", "cancelled"):
                return payload
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"job {job_id} still {payload['status']!r}")
            await asyncio.sleep(0.05)
    finally:
        await client.aclose()
