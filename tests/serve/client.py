"""Minimal async HTTP client for exercising the serve layer in tests.

Blocking clients (``http.client``, ``urllib``) would stall the event
loop the server under test runs on, so the tests speak HTTP/1.1 over
``asyncio.open_connection`` directly — one request per connection,
exactly the protocol subset the server implements.
"""

from __future__ import annotations

import asyncio
import json


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
) -> tuple[int, bytes]:
    """One request; returns ``(status, body_bytes)`` after the server
    closes the connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    header_block, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header_block.split(None, 2)[1])
    return status, rest


async def http_json(
    host: str, port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict]:
    status, raw = await http_request(host, port, method, path, body)
    return status, json.loads(raw)


async def poll_job(
    host: str, port: int, job_id: str, *, timeout: float = 120.0
) -> dict:
    """Poll ``GET /jobs/<id>`` until the job reaches a terminal state."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        _status, payload = await http_json(host, port, "GET", f"/jobs/{job_id}")
        if payload["status"] in ("done", "error", "cancelled"):
            return payload
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"job {job_id} still {payload['status']!r}")
        await asyncio.sleep(0.05)
