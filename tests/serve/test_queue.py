"""Scheduler tests: priority ordering, bounded concurrency, cancellation
of queued and running jobs, error isolation, shutdown reaping.

These drive :class:`JobQueue` directly with a monkeypatched
``run_batch`` so scheduling behaviour is tested deterministically and
without synthesizing real circuits.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.api import InputItem
from repro.flows import BatchCancelled, BatchReport
from repro.serve import (
    CANCELLED,
    DONE,
    ERROR,
    JobQueue,
    JobRequest,
    JobStore,
)
from repro.serve import queue as queue_module


def _job(store: JobStore, name: str, priority: int = 0) -> object:
    request = JobRequest(circuits=(name,), priority=priority)
    return store.create(request, [InputItem(name=name)])


async def _wait(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.01)


class TestScheduling:
    def test_priority_orders_execution(self, monkeypatch):
        ran: list[str] = []

        def fake_run_batch(items, config, progress=None, *, cancel=None, stage_progress=None):
            ran.append(items[0].name)
            return BatchReport(flow=config.flow)

        monkeypatch.setattr(queue_module, "run_batch", fake_run_batch)

        async def main():
            store = JobStore()
            queue = JobQueue(concurrency=1)
            # Submit before starting the runners: the queue must pop in
            # priority order, FIFO within equal priorities.
            jobs = [
                _job(store, "late", priority=5),
                _job(store, "first", priority=-1),
                _job(store, "mid-a", priority=2),
                _job(store, "mid-b", priority=2),
            ]
            for job in jobs:
                queue.submit(job)
            queue.start()
            await _wait(lambda: all(j.finished for j in jobs))
            await queue.shutdown()

        asyncio.run(main())
        assert ran == ["first", "mid-a", "mid-b", "late"]

    def test_cancelled_queued_job_is_skipped(self, monkeypatch):
        ran: list[str] = []

        def fake_run_batch(items, config, progress=None, *, cancel=None, stage_progress=None):
            ran.append(items[0].name)
            return BatchReport(flow=config.flow)

        monkeypatch.setattr(queue_module, "run_batch", fake_run_batch)

        async def main():
            store = JobStore()
            queue = JobQueue(concurrency=1)
            keep, drop = _job(store, "keep"), _job(store, "drop")
            queue.submit(keep)
            queue.submit(drop)
            assert drop.request_cancel() is True
            assert drop.state == CANCELLED
            queue.start()
            await _wait(lambda: keep.finished)
            await queue.shutdown()
            return keep, drop

        keep, drop = asyncio.run(main())
        assert ran == ["keep"]
        assert keep.state == DONE
        assert drop.state == CANCELLED

    def test_running_job_cancel_does_not_disturb_others(self, monkeypatch):
        started = threading.Event()

        def fake_run_batch(items, config, progress=None, *, cancel=None, stage_progress=None):
            if items[0].name == "victim":
                started.set()
                while not cancel():
                    time.sleep(0.01)
                raise BatchCancelled("cancelled mid-flight")
            return BatchReport(flow=config.flow)

        monkeypatch.setattr(queue_module, "run_batch", fake_run_batch)

        async def main():
            store = JobStore()
            queue = JobQueue(concurrency=1)
            victim, bystander = _job(store, "victim"), _job(store, "bystander")
            queue.submit(victim)
            queue.submit(bystander)
            queue.start()
            await _wait(lambda: started.is_set() and victim.state == "running")
            assert victim.request_cancel() is True
            await _wait(lambda: victim.finished and bystander.finished)
            await queue.shutdown()
            return victim, bystander

        victim, bystander = asyncio.run(main())
        assert victim.state == CANCELLED
        assert bystander.state == DONE

    def test_job_error_is_isolated(self, monkeypatch):
        def fake_run_batch(items, config, progress=None, *, cancel=None, stage_progress=None):
            if items[0].name == "bad":
                raise RuntimeError("synthesis exploded")
            return BatchReport(flow=config.flow)

        monkeypatch.setattr(queue_module, "run_batch", fake_run_batch)

        async def main():
            store = JobStore()
            queue = JobQueue(concurrency=2)
            bad, good = _job(store, "bad"), _job(store, "good")
            queue.start()
            queue.submit(bad)
            queue.submit(good)
            await _wait(lambda: bad.finished and good.finished)
            await queue.shutdown()
            return bad, good

        bad, good = asyncio.run(main())
        assert bad.state == ERROR
        assert "synthesis exploded" in bad.error
        assert good.state == DONE

    def test_shutdown_cancels_everything(self, monkeypatch):
        def fake_run_batch(items, config, progress=None, *, cancel=None, stage_progress=None):
            while not cancel():
                time.sleep(0.01)
            raise BatchCancelled("cancelled by shutdown")

        monkeypatch.setattr(queue_module, "run_batch", fake_run_batch)

        async def main():
            store = JobStore()
            queue = JobQueue(concurrency=1)
            running, queued = _job(store, "running"), _job(store, "queued")
            queue.start()
            queue.submit(running)
            queue.submit(queued)
            await _wait(lambda: running.state == "running")
            await queue.shutdown(store.jobs())
            with pytest.raises(RuntimeError):
                queue.submit(_job(store, "rejected"))
            return running, queued

        running, queued = asyncio.run(main())
        assert running.state == CANCELLED
        assert queued.state == CANCELLED

    def test_rejects_nonpositive_concurrency(self):
        with pytest.raises(ValueError):
            JobQueue(concurrency=0)
