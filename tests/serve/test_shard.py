"""Shard dispatcher tests: the ring, routing, byte-identity, failover.

The end-to-end tests spawn real ``bdsmaj serve`` subprocesses behind a
:class:`~repro.serve.ShardDispatcher`, exactly like ``bdsmaj shard``
does — including the acceptance scenario: identical submissions land on
the same shard (whose cache answers the second one), served bytes match
``run_batch``, and a SIGKILL'd backend is respawned with its journal
replayed so its namespaced job ids stay valid.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.flows import BatchConfig, run_batch
from repro.serve import ShardDispatcher, WireError
from repro.serve.shard import HashRing

from .client import http_json, http_request, poll_job


def run(coro):
    return asyncio.run(coro)


class TestHashRing:
    def test_deterministic_and_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing(0)
        ring = HashRing(4)
        assert all(ring.owner(f"key-{i}") == HashRing(4).owner(f"key-{i}") for i in range(64))

    def test_every_shard_owns_keys_and_split_is_roughly_even(self):
        ring = HashRing(3)
        counts = [0, 0, 0]
        for i in range(3000):
            counts[ring.owner(f"key-{i}")] += 1
        assert all(count > 500 for count in counts)

    def test_growing_the_ring_moves_a_bounded_fraction(self):
        """Consistent hashing's point: going 3 -> 4 shards remaps only
        about 1/4 of the key space, not everything."""
        before, after = HashRing(3), HashRing(4)
        keys = [f"key-{i}" for i in range(2000)]
        moved = sum(1 for key in keys if before.owner(key) != after.owner(key))
        assert 0 < moved < len(keys) // 2

    def test_moved_keys_only_land_on_the_new_shard(self):
        before, after = HashRing(3), HashRing(4)
        for i in range(2000):
            key = f"key-{i}"
            if before.owner(key) != after.owner(key):
                assert after.owner(key) == 3


class TestIdNamespacing:
    def test_locate_roundtrip_and_bad_ids(self):
        dispatcher = ShardDispatcher(backends=3)  # never started: no spawns
        assert dispatcher._locate("s0-job-000001") == (0, "job-000001")
        assert dispatcher._locate("s2-job-000042") == (2, "job-000042")
        for bad in ("job-000001", "s9-job-000001", "sX-job-000001", "s1-"):
            with pytest.raises(WireError) as err:
                dispatcher._locate(bad)
            assert err.value.status == 404

    def test_status_payloads_are_namespaced(self):
        dispatcher = ShardDispatcher(backends=2)
        payload = dispatcher._namespace({"id": "job-000007", "status": "done"}, 1)
        assert payload["id"] == "s1-job-000007"
        assert dispatcher._namespace({"error": "nope"}, 1) == {"error": "nope"}


async def _with_dispatcher(test, **kwargs):
    kwargs.setdefault("backends", 2)
    kwargs.setdefault("backend_concurrency", 1)
    kwargs.setdefault("health_interval", 0.2)
    dispatcher = ShardDispatcher(port=0, **kwargs)
    host, port = await dispatcher.start()
    try:
        return await test(dispatcher, host, port)
    finally:
        await dispatcher.shutdown()


class TestEndToEnd:
    def test_routing_byte_identity_and_owning_shard_cache_hit(self, tmp_path):
        """The acceptance scenario: identical submissions route to the
        same shard, the dispatcher's /result bytes equal ``bdsmaj
        batch`` output, and the aggregated /metrics shows the cache hit
        on the owning shard."""

        async def scenario(dispatcher, host, port):
            status, first = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            shard = int(first["id"].split("-", 1)[0][1:])
            done = await poll_job(host, port, first["id"])
            assert done["status"] == "done"
            status, served = await http_request(
                host, port, "GET", f"/jobs/{first['id']}/result"
            )
            assert status == 200
            assert served == run_batch(["alu2"], BatchConfig()).to_json().encode()

            # Identical work -> same shard, answered from its cache.
            status, second = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            assert second["cached"] is True
            assert int(second["id"].split("-", 1)[0][1:]) == shard

            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert status == 200
            assert metrics["backends"] == 2
            assert metrics["result_cache"]["hits"] == 1
            owner = metrics["shards"][shard]["metrics"]
            assert owner["result_cache"]["hits"] == 1
            assert metrics["shards"][shard]["routed"] == 2
            other = metrics["shards"][1 - shard]
            assert other["routed"] == 0
            assert other["metrics"]["result_cache"]["hits"] == 0

            # The job list is the namespaced union of every shard's.
            status, listing = await http_json(host, port, "GET", "/jobs")
            assert {job["id"] for job in listing["jobs"]} == {
                first["id"],
                second["id"],
            }
            assert listing["unavailable_shards"] == []

        run(_with_dispatcher(scenario, journal_dir=tmp_path))

    def test_events_stream_is_proxied_with_namespaced_ids(self, tmp_path):
        async def scenario(dispatcher, host, port):
            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            status, raw = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/events"
            )
            assert status == 200
            events = [json.loads(line) for line in raw.splitlines() if line]
            assert events, "event stream came back empty"
            assert all(event["job"] == job["id"] for event in events)
            assert events[-1]["type"] == "state"
            assert events[-1]["status"] == "done"

        run(_with_dispatcher(scenario, journal_dir=tmp_path))

    def test_killed_backend_is_respawned_and_replays_its_journal(self, tmp_path):
        """Failover: SIGKILL the owning backend; the supervisor must
        respawn it, and journal replay must bring the finished job back
        byte-identically under the same namespaced id."""

        async def scenario(dispatcher, host, port):
            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            await poll_job(host, port, job["id"])
            status, before = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 200

            shard = int(job["id"].split("-", 1)[0][1:])
            backend = dispatcher.backends[shard]
            backend.process.kill()  # SIGKILL: no graceful shutdown
            deadline = asyncio.get_running_loop().time() + 60.0
            while not (backend.alive and backend.restarts >= 1):
                assert asyncio.get_running_loop().time() < deadline, (
                    "supervisor never respawned the killed backend"
                )
                await asyncio.sleep(0.1)

            status, after = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 200
            assert after == before
            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert metrics["respawns"] >= 1
            assert metrics["shards"][shard]["restarts"] >= 1
            # One isolated kill is no crash loop: the breaker stays
            # closed, but its state is observable per-shard and in the
            # aggregated rollup.
            breaker = metrics["shards"][shard]["breaker"]
            assert breaker["state"] == "closed"
            assert breaker["opens"] == 0
            states = metrics["breakers"]["states"]
            assert states["closed"] == len(dispatcher.backends)
            assert metrics["breakers"]["opens"] == 0

        run(_with_dispatcher(scenario, journal_dir=tmp_path))

    def test_dispatcher_is_the_auth_edge(self, tmp_path):
        async def scenario(dispatcher, host, port):
            status, _ = await http_json(host, port, "GET", "/jobs")
            assert status == 401
            status, _ = await http_json(
                host,
                port,
                "GET",
                "/jobs",
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200
            # /healthz stays probe-able without credentials.
            status, health = await http_json(host, port, "GET", "/healthz")
            assert status == 200
            assert health["backends"]["total"] == 1
            # Backends themselves trust loopback: the cleared token env
            # means direct backend access needs no credentials.
            backend = dispatcher.backends[0]
            status, _ = await http_json(
                backend.host, backend.port, "GET", "/jobs"
            )
            assert status == 200

        run(
            _with_dispatcher(
                scenario, backends=1, auth_token="sesame", journal_dir=tmp_path
            )
        )
