"""Bearer auth, queue backpressure, and latency-histogram tests."""

from __future__ import annotations

import asyncio

import pytest

from repro.flows import BatchConfig, run_batch
from repro.serve import JobRequest, SynthesisService, WireError
from repro.serve.metrics import LATENCY_BUCKET_BOUNDS, ServiceMetrics

from .client import HttpClient, http_json, poll_job


def run(coro):
    return asyncio.run(coro)


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


class TestAuth:
    def test_token_required_on_everything_but_healthz(self):
        async def scenario(service, host, port):
            status, _ = await http_json(host, port, "GET", "/jobs")
            assert status == 401
            status, _ = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 401
            status, _ = await http_json(
                host,
                port,
                "GET",
                "/jobs",
                headers={"Authorization": "Bearer wrong"},
            )
            assert status == 401
            status, _ = await http_json(
                host,
                port,
                "GET",
                "/jobs",
                headers={"Authorization": "Basic c2VzYW1l"},
            )
            assert status == 401
            status, _ = await http_json(
                host,
                port,
                "GET",
                "/jobs",
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200
            # Scheme matching is case-insensitive per RFC 6750.
            status, _ = await http_json(
                host,
                port,
                "GET",
                "/jobs",
                headers={"Authorization": "bearer sesame"},
            )
            assert status == 200
            status, _ = await http_json(host, port, "GET", "/healthz")
            assert status == 200

        run(_with_service(scenario, auth_token="sesame"))

    def test_401_carries_www_authenticate_challenge(self):
        async def scenario(service, host, port):
            client = await HttpClient.connect(host, port)
            try:
                status, _ = await client.request("GET", "/metrics")
            finally:
                await client.aclose()
            assert status == 401
            assert client.last_headers.get("www-authenticate") == "Bearer"

        run(_with_service(scenario, auth_token="sesame"))

    def test_no_token_means_open_service(self):
        async def scenario(service, host, port):
            status, _ = await http_json(host, port, "GET", "/jobs")
            assert status == 200

        run(_with_service(scenario))


class TestBackpressure:
    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError):
            SynthesisService(port=0, max_pending=0)

    def test_429_with_retry_after_when_queue_is_full(self):
        async def scenario(service, host, port):
            # Keep submissions queued forever: the no-op queue seam
            # makes "pending" deterministic without slow circuits.
            service.queue.submit = lambda job: None
            status, _ = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            client = await HttpClient.connect(host, port)
            try:
                status, payload = await client.request_json(
                    "POST", "/jobs", {"circuits": ["f51m"]}
                )
            finally:
                await client.aclose()
            assert status == 429
            assert "queue is full" in payload["error"]
            retry_after = int(client.last_headers["retry-after"])
            assert 1 <= retry_after <= 300

        run(_with_service(scenario, max_pending=1, result_cache_size=None))

    def test_cache_hits_bypass_the_gate(self):
        async def scenario(service, host, port):
            service.queue.submit = lambda job: None
            request = JobRequest(circuits=("alu2",))
            _items, key = service._resolve_items_keyed(request)
            service.result_cache.put(key, run_batch(["alu2"], BatchConfig()))
            status, _ = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["f51m"]}
            )
            assert status == 202  # fills the queue
            status, rejected = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["vda"]}
            )
            assert status == 429
            # The cached submission consumes no queue slot -> accepted.
            status, cached = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            assert cached["cached"] is True
            assert cached["status"] == "done"

        run(_with_service(scenario, max_pending=1))

    def test_metrics_reports_the_limit(self):
        async def scenario(service, host, port):
            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert metrics["max_pending"] == 7

        run(_with_service(scenario, max_pending=7))


class TestLatencyHistograms:
    def test_observations_land_in_fixed_buckets_with_quantiles(self):
        metrics = ServiceMetrics()
        for seconds in (0.0005, 0.002, 0.002, 0.3, 120.0):
            metrics.observe("run", seconds)
        summary = metrics.stage_summaries()["run"]
        assert summary["count"] == 5
        assert summary["min_seconds"] == 0.0005
        assert summary["max_seconds"] == 120.0
        buckets = summary["buckets"]
        # Cumulative (Prometheus-style `le`) buckets: mergeable across
        # shards by summing bucket-by-bucket.
        assert buckets["le_0.001"] == 1
        assert buckets["le_0.0025"] == 3
        assert buckets["le_0.5"] == 4
        assert buckets["le_60"] == 4
        assert buckets["le_inf"] == 5
        assert len(buckets) == len(LATENCY_BUCKET_BOUNDS) + 1
        # p50 lands in the 0.0025 bucket, p99 in the overflow bucket
        # (which quotes the observed max).
        assert summary["p50_seconds"] == 0.0025
        assert summary["p90_seconds"] == 120.0
        assert summary["p99_seconds"] == 120.0

    def test_quantile_estimate_never_exceeds_observed_max(self):
        metrics = ServiceMetrics()
        metrics.observe("resolve", 0.0011)  # inside the 0.0025 bucket
        summary = metrics.stage_summaries()["resolve"]
        assert summary["p50_seconds"] == pytest.approx(0.0011)
        assert summary["p99_seconds"] == pytest.approx(0.0011)

    def test_served_job_populates_stage_histograms(self):
        async def scenario(service, host, port):
            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            await poll_job(host, port, job["id"])
            status, metrics = await http_json(host, port, "GET", "/metrics")
            stages = metrics["stages"]
            for stage in ("resolve", "queue_wait", "run"):
                assert stages[stage]["count"] >= 1
                assert stages[stage]["buckets"]["le_inf"] == stages[stage]["count"]
                assert (
                    stages[stage]["p50_seconds"]
                    <= stages[stage]["p99_seconds"]
                    <= stages[stage]["max_seconds"] + 1e-9
                )

        run(_with_service(scenario, concurrency=1))


class TestWireErrorHeaders:
    def test_custom_headers_survive_the_error_funnel(self):
        err = WireError("slow down", status=429, headers={"Retry-After": "7"})
        assert err.status == 429
        assert err.headers == {"Retry-After": "7"}
        assert WireError("plain").headers == {}
