"""Content-hash result cache: key normalization, LRU behaviour, and the
served fast path (identical resubmission answered without resynthesis).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import InputItem
from repro.flows import BatchConfig, BatchReport
from repro.serve import ResultCache, SynthesisService, submission_key

from .client import http_json, http_request, poll_job


def run(coro):
    return asyncio.run(coro)


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


class TestSubmissionKey:
    ITEMS = (InputItem(name="alu2"), InputItem(name="f51m"))

    def test_key_ignores_workers_and_scheduling(self):
        """The determinism contract makes 1- and N-worker reports
        byte-identical, so worker count must not split cache slots."""
        one = submission_key(self.ITEMS, BatchConfig(workers=1))
        four = submission_key(self.ITEMS, BatchConfig(workers=4))
        assert one is not None
        assert one == four

    def test_key_tracks_report_affecting_config(self):
        base = submission_key(self.ITEMS, BatchConfig())
        assert base != submission_key(self.ITEMS, BatchConfig(verify=True))
        assert base != submission_key(
            self.ITEMS, BatchConfig(cache_policy="lru")
        )
        assert base != submission_key(self.ITEMS, BatchConfig(reorder="converge"))

    def test_key_tracks_item_order_and_identity(self):
        base = submission_key(self.ITEMS, BatchConfig())
        reversed_key = submission_key(list(reversed(self.ITEMS)), BatchConfig())
        assert base != reversed_key
        assert base != submission_key([InputItem(name="alu2")], BatchConfig())

    def test_blif_items_hash_file_contents(self, tmp_path):
        path = tmp_path / "c.blif"
        path.write_text(".model c\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")
        item = [InputItem(name="c", kind="blif", path=str(path))]
        before = submission_key(item, BatchConfig())
        assert before is not None
        # Same path, changed bytes: the resubmission must miss.
        path.write_text(".model c\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n")
        assert submission_key(item, BatchConfig()) != before

    def test_unreadable_or_unknown_items_are_uncacheable(self, tmp_path):
        missing = [InputItem(name="m", kind="blif", path=str(tmp_path / "no"))]
        assert submission_key(missing, BatchConfig()) is None
        weird = [InputItem(name="w", kind="martian")]
        assert submission_key(weird, BatchConfig()) is None


class TestResultCache:
    def test_lru_eviction_and_stats(self):
        cache = ResultCache(max_entries=2)
        a, b, c = (BatchReport(flow="bds-maj") for _ in range(3))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refreshes "a" to most-recent
        cache.put("c", c)  # evicts "b", the least recently used
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("c") is c
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["max_entries"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_none_keys_never_store_or_hit(self):
        cache = ResultCache()
        cache.put(None, BatchReport(flow="bds-maj"))
        assert len(cache) == 0
        assert cache.get(None) is None
        assert cache.stats()["misses"] == 1


class TestServedFastPath:
    def test_resubmission_hits_cache_and_is_byte_identical(self):
        async def scenario(service, host, port):
            body = {"circuits": ["alu2"]}
            status, first = await http_json(host, port, "POST", "/jobs", body)
            assert status == 202
            assert first["cached"] is False
            done = await poll_job(host, port, first["id"])
            assert done["status"] == "done"
            _, cold = await http_request(
                host, port, "GET", f"/jobs/{first['id']}/result"
            )

            status, second = await http_json(host, port, "POST", "/jobs", body)
            assert status == 202
            # The hit finishes the job at submit time — never queued.
            assert second["cached"] is True
            assert second["status"] == "done"
            _, warm = await http_request(
                host, port, "GET", f"/jobs/{second['id']}/result"
            )
            assert warm == cold

            status, payload = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            metrics = json.loads(payload)
            cache = metrics["result_cache"]
            assert cache["hits"] == 1 and cache["entries"] == 1
            assert metrics["jobs"]["done"] == 2
            assert {"queue_wait", "resolve", "run"} <= set(metrics["stages"])

        run(_with_service(scenario, warm_pools=False))

    def test_different_config_misses(self):
        async def scenario(service, host, port):
            body = {"circuits": ["alu2"]}
            _, first = await http_json(host, port, "POST", "/jobs", body)
            await poll_job(host, port, first["id"])
            _, second = await http_json(
                host, port, "POST", "/jobs", dict(body, verify=True)
            )
            assert second["cached"] is False
            await poll_job(host, port, second["id"])

        run(_with_service(scenario, warm_pools=False))

    def test_cache_can_be_disabled(self):
        async def scenario(service, host, port):
            assert service.result_cache is None
            body = {"circuits": ["alu2"]}
            _, first = await http_json(host, port, "POST", "/jobs", body)
            await poll_job(host, port, first["id"])
            _, second = await http_json(host, port, "POST", "/jobs", body)
            assert second["cached"] is False
            done = await poll_job(host, port, second["id"])
            assert done["status"] == "done"
            _, metrics = await http_request(host, port, "GET", "/metrics")
            assert json.loads(metrics)["result_cache"] is None

        run(_with_service(scenario, warm_pools=False, result_cache_size=None))
