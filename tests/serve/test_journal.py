"""Journal durability tests: framing, replay, compaction, crash-replay.

The headline test mirrors the acceptance criteria: a server is
SIGKILL'd mid-batch, restarted on the same journal, and must (a) serve
the already-finished job's report byte-identical to the pre-crash
bytes, (b) re-run the interrupted job to completion, and (c) answer a
resubmission of replayed work from the rehydrated result cache.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from pathlib import Path

import pytest

from repro.flows import BatchConfig, run_batch
from repro.serve import JobRequest, JobStore, SynthesisService
from repro.serve.journal import (
    JobJournal,
    JournalError,
    _decode_line,
    _encode_record,
)

from .client import http_json, http_request, poll_job


def run(coro):
    return asyncio.run(coro)


class TestFraming:
    def test_roundtrip(self):
        record = {"type": "submit", "id": "job-000001", "v": 1}
        assert _decode_line(_encode_record(record)) == record

    def test_rejects_bad_crc_missing_newline_and_garbage(self):
        line = _encode_record({"type": "cancel", "id": "job-000002", "v": 1})
        corrupted = bytearray(line)
        corrupted[12] ^= 0xFF  # flip a byte inside the JSON
        assert _decode_line(bytes(corrupted)) is None
        assert _decode_line(line[:-1]) is None  # torn: no newline
        assert _decode_line(b"not a journal line\n") is None
        assert _decode_line(b"00000000\t[1,2]\n") is None  # CRC mismatch


def _fill_store(path: Path, **journal_kwargs) -> tuple[JobJournal, JobStore]:
    journal = JobJournal(path, fsync=False, **journal_kwargs)
    journal.open()
    store = JobStore(journal=journal)
    return journal, store


class TestReplay:
    def test_terminal_states_and_interrupted_jobs_replay(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal, store = _fill_store(path)
        report = run_batch(["alu2"], BatchConfig())
        done = store.create(JobRequest(circuits=("alu2",)), [])
        done.cache_key = "key-alu2"
        done.finish(report)
        failed = store.create(JobRequest(circuits=("f51m",)), [])
        failed.fail("boom")
        cancelled = store.create(JobRequest(circuits=("vda",)), [])
        cancelled.mark_cancelled()
        interrupted = store.create(JobRequest(circuits=("misex3",)), [])
        assert interrupted.state == "queued"  # no terminal record written
        journal.close()

        replay = JobJournal(path, fsync=False).open()
        by_id = {job.id: job for job in replay.jobs}
        assert len(by_id) == 4
        assert by_id[done.id].state == "done"
        assert by_id[done.id].cache_key == "key-alu2"
        # The byte-identity contract: the journaled report re-serializes
        # to exactly the bytes the original produced.
        assert by_id[done.id].report.to_json() == report.to_json()
        assert by_id[done.id].report.to_csv() == report.to_csv()
        assert by_id[failed.id].state == "error"
        assert by_id[failed.id].error == "boom"
        assert by_id[cancelled.id].state == "cancelled"
        assert by_id[interrupted.id].state is None  # to be re-enqueued
        assert replay.next_id == 5
        assert replay.corrupt_lines == 0
        assert replay.truncated_bytes == 0

    def test_torn_tail_is_truncated_and_tolerated(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal, store = _fill_store(path)
        store.create(JobRequest(circuits=("alu2",)), []).mark_cancelled()
        journal.close()
        intact_size = path.stat().st_size
        with open(path, "ab") as stream:
            stream.write(b"deadbeef\t{\"type\": \"torn")  # crash mid-write

        journal = JobJournal(path, fsync=False)
        replay = journal.open()
        assert replay.truncated_bytes > 0
        assert len(replay.jobs) == 1
        # The tail is physically gone, so future appends stay framed.
        journal.close()
        assert path.stat().st_size == intact_size

    def test_midfile_corruption_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal, store = _fill_store(path)
        first = store.create(JobRequest(circuits=("alu2",)), [])
        first.mark_cancelled()
        second = store.create(JobRequest(circuits=("f51m",)), [])
        second.mark_cancelled()
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000\tcorrupted-but-terminated\n"
        path.write_bytes(b"".join(lines))

        replay = JobJournal(path, fsync=False).open()
        assert replay.corrupt_lines == 1
        by_id = {job.id: job for job in replay.jobs}
        # first lost its cancel record to bit rot -> replays interrupted;
        # second is untouched.
        assert by_id[first.id].state is None
        assert by_id[second.id].state == "cancelled"

    def test_unknown_version_refuses_to_replay(self, tmp_path):
        path = tmp_path / "jobs.journal"
        path.write_bytes(_encode_record({"v": 99, "type": "meta", "next_id": 7}))
        with pytest.raises(JournalError):
            JobJournal(path, fsync=False).open()

    def test_compaction_keeps_live_records_and_id_counter(self, tmp_path):
        path = tmp_path / "jobs.journal"
        # A tiny threshold so every terminal transition compacts once
        # the doubling rule allows it.
        journal, store = _fill_store(path, compact_bytes=1)
        for key in ("alu2", "f51m", "vda"):
            store.create(JobRequest(circuits=(key,)), []).mark_cancelled()
        assert journal.compactions >= 1
        journal.close()

        replay = JobJournal(path, fsync=False).open()
        assert len(replay.jobs) == 3
        assert all(job.state == "cancelled" for job in replay.jobs)
        assert replay.next_id == 4  # the meta record pinned the counter

    def test_compaction_doubling_rule_prevents_thrash(self, tmp_path):
        journal, store = _fill_store(
            tmp_path / "jobs.journal", compact_bytes=1
        )
        store.create(JobRequest(circuits=("alu2",)), []).mark_cancelled()
        first_compactions = journal.compactions
        assert first_compactions >= 1
        # The next append is far below 2x the post-compaction size, so
        # no rewrite happens.
        store.create(JobRequest(circuits=("f51m",)), [])
        assert journal.compactions == first_compactions
        journal.close()


async def _with_service(test, **kwargs):
    service = SynthesisService(port=0, **kwargs)
    host, port = await service.start()
    try:
        return await test(service, host, port)
    finally:
        await service.shutdown()


class TestServiceReplay:
    def test_restart_serves_identical_bytes_and_rehydrates_cache(self, tmp_path):
        """Run a job to completion, shut down cleanly, restart on the
        same journal: the result bytes must match and a resubmission
        must be answered from the rehydrated cache."""
        journal = tmp_path / "jobs.journal"

        async def first_run(service, host, port):
            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            await poll_job(host, port, job["id"])
            status, body = await http_request(
                host, port, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 200
            return job["id"], body

        job_id, first_bytes = run(
            _with_service(first_run, concurrency=1, journal_path=journal)
        )

        async def second_run(service, host, port):
            replay = service.last_replay
            assert replay is not None and len(replay.jobs) == 1
            status, body = await http_request(
                host, port, "GET", f"/jobs/{job_id}/result"
            )
            assert status == 200
            assert body == first_bytes
            # Resubmission of replayed work: a cache hit, no queue trip.
            status, again = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            assert again["cached"] is True
            assert again["id"] != job_id  # ids keep counting past replay
            status, metrics = await http_json(host, port, "GET", "/metrics")
            assert metrics["result_cache"]["hits"] == 1
            assert metrics["journal"]["replayed_jobs"] == 1
            status, body = await http_request(
                host, port, "GET", f"/jobs/{again['id']}/result"
            )
            return body

        second_bytes = run(
            _with_service(second_run, concurrency=1, journal_path=journal)
        )
        assert second_bytes == first_bytes

    def test_graceful_shutdown_journals_queued_jobs_as_cancelled(self, tmp_path):
        journal = tmp_path / "jobs.journal"

        async def scenario(service, host, port):
            # Submit without letting the queue run it (the queue seam
            # the backpressure tests use too): the job stays queued, and
            # shutdown's cancel sweep must journal it.
            service.queue.submit = lambda job: None
            status, job = await http_json(
                host, port, "POST", "/jobs", {"circuits": ["alu2"]}
            )
            assert status == 202
            return job["id"]

        job_id = run(_with_service(scenario, concurrency=1, journal_path=journal))

        async def after_restart(service, host, port):
            status, payload = await http_json(host, port, "GET", f"/jobs/{job_id}")
            assert status == 200
            assert payload["status"] == "cancelled"

        run(_with_service(after_restart, concurrency=1, journal_path=journal))


def _spawn_server(journal: Path, extra: list[str] | None = None):
    """Start a ``bdsmaj serve`` subprocess on an ephemeral port; returns
    (process, port) once the listen line appears on stderr."""
    import re
    import subprocess

    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(src_root)
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    env["BDSMAJ_AUTH_TOKEN"] = ""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--arena",
            "off",
            "--concurrency",
            "1",
            "--journal",
            str(journal),
            *(extra or []),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    pattern = re.compile(r"listening on http://([0-9.]+):(\d+)")
    while True:
        line = process.stderr.readline()
        if not line:
            raise RuntimeError(
                f"server exited with {process.wait()} before listening"
            )
        match = pattern.search(line.decode("utf-8", "replace"))
        if match:
            return process, int(match.group(2))


class TestCrashReplay:
    def test_sigkill_mid_batch_replays_and_reruns(self, tmp_path):
        """SIGKILL a journaled server mid-batch; the restart must serve
        the finished job byte-identically, re-run the interrupted ones,
        and answer resubmissions from the rehydrated cache."""
        journal = tmp_path / "jobs.journal"
        process, port = _spawn_server(journal)
        try:

            async def submit_and_wait():
                status, first = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                await poll_job("127.0.0.1", port, first["id"])
                status, first_bytes = await http_request(
                    "127.0.0.1", port, "GET", f"/jobs/{first['id']}/result"
                )
                assert status == 200
                # Pile up more work than concurrency=1 drains instantly;
                # these are the jobs the SIGKILL interrupts.
                pending = []
                for key in ("f51m", "vda", "misex3"):
                    status, job = await http_json(
                        "127.0.0.1", port, "POST", "/jobs", {"circuits": [key]}
                    )
                    assert status == 202
                    pending.append(job["id"])
                return first["id"], first_bytes, pending

            first_id, first_bytes, pending = run(submit_and_wait())
        finally:
            process.kill()  # SIGKILL: no shutdown hooks, no cancel records
            process.wait()

        process, port = _spawn_server(journal)
        try:

            async def after_crash():
                # The finished job replays byte-identically...
                status, body = await http_request(
                    "127.0.0.1", port, "GET", f"/jobs/{first_id}/result"
                )
                assert status == 200
                assert body == first_bytes
                # ...and every interrupted job re-runs to completion
                # under its original id ("a crash loses nothing").
                for job_id in pending:
                    final = await poll_job("127.0.0.1", port, job_id)
                    assert final["status"] == "done"
                # Resubmitting replayed work hits the rehydrated cache.
                status, again = await http_json(
                    "127.0.0.1", port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                assert status == 202
                assert again["cached"] is True
                status, metrics = await http_json(
                    "127.0.0.1", port, "GET", "/metrics"
                )
                assert metrics["journal"]["replayed_jobs"] == 4

            run(after_crash())
        finally:
            process.terminate()
            process.wait(timeout=30)
