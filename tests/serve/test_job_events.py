"""Event-log truncation and finished-job expiry (long-lived servers).

A server that runs for weeks accumulates per-stage/per-circuit progress
events for every job it ever ran.  :class:`~repro.serve.JobStore`
bounds that: finished jobs keep at most ``event_cap`` wire events (the
head of the log is dropped, and ``/jobs/<id>/events`` reports the
truncation explicitly instead of silently skipping history), and at
most ``max_finished_jobs`` finished jobs are retained at all.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.flows import BatchReport
from repro.serve import (
    DEFAULT_EVENT_CAP,
    SynthesisService,
    JobRequest,
    JobStore,
    job_payload,
)

from .client import http_json, http_request


def run(coro):
    return asyncio.run(coro)


def _request(circuits=("alu2",)):
    return JobRequest(circuits=tuple(circuits))


class TestJobTruncation:
    def test_running_job_keeps_every_event(self):
        async def scenario():
            store = JobStore(event_cap=3)
            job = store.create(_request(), [])
            job.mark_running()
            for i in range(10):
                job.add_event({"type": "circuit", "message": f"line {i}"})
            # Still running: nothing dropped, late subscribers can
            # replay the full history.
            assert job.events_dropped == 0
            assert len(job.events) == 12
            return job

        run(scenario())

    def test_finish_truncates_to_cap_and_keeps_the_tail(self):
        async def scenario():
            store = JobStore(event_cap=3)
            job = store.create(_request(), [])
            job.mark_running()
            for i in range(10):
                job.add_event({"type": "circuit", "message": f"line {i}"})
            job.finish(BatchReport(flow="bds-maj"))
            assert len(job.events) == 3
            assert job.events_dropped == 10
            assert job.total_events == 13
            # The tail survives — most recent progress plus the
            # terminal state event.
            assert job.events[-1]["type"] == "state"
            assert job.events[-1]["status"] == "done"
            assert job.events[0]["message"] == "line 8"
            payload = job_payload(job)
            assert payload["events"] == 13
            assert payload["events_dropped"] == 10
            return job

        run(scenario())

    def test_cancel_and_fail_truncate_too(self):
        async def scenario():
            store = JobStore(event_cap=2)
            failed = store.create(_request(), [])
            failed.mark_running()
            for i in range(5):
                failed.add_event({"type": "circuit", "message": str(i)})
            failed.fail("boom")
            assert len(failed.events) == 2
            assert failed.events[-1]["status"] == "error"

            cancelled = store.create(_request(), [])
            cancelled.mark_running()
            for i in range(5):
                cancelled.add_event({"type": "circuit", "message": str(i)})
            cancelled.request_cancel()
            cancelled.mark_cancelled()
            assert len(cancelled.events) == 2
            assert cancelled.events[-1]["status"] == "cancelled"

        run(scenario())

    def test_unlimited_and_default_caps(self):
        async def scenario():
            unlimited = JobStore(event_cap=None).create(_request(), [])
            unlimited.mark_running()
            for i in range(600):
                unlimited.add_event({"type": "circuit", "message": str(i)})
            unlimited.finish(BatchReport(flow="bds-maj"))
            assert unlimited.events_dropped == 0

            capped = JobStore().create(_request(), [])  # default cap
            capped.mark_running()
            for i in range(600):
                capped.add_event({"type": "circuit", "message": str(i)})
            capped.finish(BatchReport(flow="bds-maj"))
            assert len(capped.events) == DEFAULT_EVENT_CAP
            assert capped.events_dropped == 603 - DEFAULT_EVENT_CAP

        run(scenario())

    def test_store_validates_knobs(self):
        with pytest.raises(ValueError):
            JobStore(event_cap=0)
        with pytest.raises(ValueError):
            JobStore(max_finished_jobs=-1)


class TestFinishedJobExpiry:
    def test_oldest_finished_jobs_expire_on_submission(self):
        async def scenario():
            store = JobStore(max_finished_jobs=2)
            finished = []
            for _ in range(3):
                job = store.create(_request(), [])
                job.mark_running()
                job.finish(BatchReport(flow="bds-maj"))
                finished.append(job)
            running = store.create(_request(), [])
            running.mark_running()
            # Creating one more job expires the oldest finished one.
            store.create(_request(), [])
            ids = [job.id for job in store.jobs()]
            assert finished[0].id not in ids
            assert finished[1].id in ids and finished[2].id in ids
            assert running.id in ids  # non-terminal jobs never expire
            assert store.get(finished[0].id) is None

        run(scenario())

    def test_unlimited_by_default(self):
        async def scenario():
            store = JobStore()
            for _ in range(10):
                job = store.create(_request(), [])
                job.mark_running()
                job.finish(BatchReport(flow="bds-maj"))
            assert len(store.jobs()) == 10

        run(scenario())


class TestStreamReportsTruncation:
    def test_stream_of_truncated_job_starts_with_explicit_notice(self):
        """End to end over HTTP: a finished job whose log was truncated
        streams one ``{"type": "truncated", "dropped": N}`` line, then
        the retained tail — never a silent gap."""

        async def scenario():
            service = SynthesisService(port=0, concurrency=1, event_cap=4)
            host, port = await service.start()
            try:
                _, job = await http_json(
                    host, port, "POST", "/jobs", {"circuits": ["alu2"]}
                )
                status, raw = await http_request(
                    host, port, "GET", f"/jobs/{job['id']}/events"
                )
                assert status == 200
                live = [json.loads(line) for line in raw.decode().splitlines()]
                # The live follow saw everything: no truncation line.
                assert all(event["type"] != "truncated" for event in live)

                # Replaying the finished job hits the truncated log.
                status, raw = await http_request(
                    host, port, "GET", f"/jobs/{job['id']}/events"
                )
                assert status == 200
                replay = [json.loads(line) for line in raw.decode().splitlines()]
                assert replay[0]["type"] == "truncated"
                assert replay[0]["job"] == job["id"]
                assert replay[0]["dropped"] == len(live) - 4
                assert replay[1:] == live[-4:]
                assert replay[-1]["status"] == "done"

                _, payload = await http_json(
                    host, port, "GET", f"/jobs/{job['id']}"
                )
                assert payload["events"] == len(live)
                assert payload["events_dropped"] == len(live) - 4
            finally:
                await service.shutdown()

        run(scenario())
