"""Unit tests for the serve wire format (submission validation and
status payloads)."""

from __future__ import annotations

import json

import pytest

from repro.api import InputItem
from repro.bdd.manager import DEFAULT_CACHE_CAPACITY
from repro.serve import Job, JobRequest, WireError, job_payload, parse_submission


def _body(**payload) -> bytes:
    return json.dumps(payload).encode()


class TestParseSubmission:
    def test_minimal_submission_gets_defaults(self):
        request = parse_submission(_body(circuits=["alu2"]))
        assert request == JobRequest(circuits=("alu2",))
        assert request.flow == "bds-maj"
        assert request.workers == 1
        assert request.priority == 0
        assert request.cache_capacity == DEFAULT_CACHE_CAPACITY

    def test_single_string_circuit_is_accepted(self):
        assert parse_submission(_body(circuits="alu2")).circuits == ("alu2",)

    def test_all_fields(self):
        request = parse_submission(
            _body(
                circuits=["alu2", "f51m"],
                flow="dc",
                workers=4,
                verify=True,
                cache_policy="lru",
                cache_capacity=1024,
                priority=-5,
            )
        )
        assert request.flow == "dc"
        assert request.workers == 4
        assert request.verify is True
        assert request.cache_policy == "lru"
        assert request.cache_capacity == 1024
        assert request.priority == -5

    def test_rejects_non_json(self):
        with pytest.raises(WireError, match="not valid JSON"):
            parse_submission(b"circuits=alu2")

    def test_rejects_non_object(self):
        with pytest.raises(WireError, match="JSON object"):
            parse_submission(b"[1, 2]")

    def test_rejects_unknown_fields(self):
        with pytest.raises(WireError, match="unknown submission fields: flows"):
            parse_submission(_body(circuits=["alu2"], flows="bds-maj"))

    @pytest.mark.parametrize("circuits", [None, [], [""], [1], ""])
    def test_rejects_bad_circuits(self, circuits):
        with pytest.raises(WireError, match="circuits"):
            parse_submission(_body(circuits=circuits))

    def test_rejects_unknown_flow(self):
        with pytest.raises(WireError, match="unknown batch flow"):
            parse_submission(_body(circuits=["alu2"], flow="mig"))

    def test_rejects_non_string_flow(self):
        with pytest.raises(WireError, match="'flow' must be a string"):
            parse_submission(_body(circuits=["alu2"], flow=7))

    def test_rejects_unknown_cache_policy(self):
        with pytest.raises(WireError, match="cache policy"):
            parse_submission(_body(circuits=["alu2"], cache_policy="arc"))

    @pytest.mark.parametrize("workers", [0, -2, "4", 1.5, True])
    def test_rejects_bad_workers(self, workers):
        with pytest.raises(WireError, match="workers"):
            parse_submission(_body(circuits=["alu2"], workers=workers))

    @pytest.mark.parametrize("capacity", [0, -1, "big", False])
    def test_rejects_bad_cache_capacity(self, capacity):
        with pytest.raises(WireError, match="cache.capacity"):
            parse_submission(_body(circuits=["alu2"], cache_capacity=capacity))

    def test_rejects_non_integer_priority(self):
        with pytest.raises(WireError, match="priority"):
            parse_submission(_body(circuits=["alu2"], priority="high"))

    def test_rejects_non_boolean_verify(self):
        with pytest.raises(WireError, match="verify"):
            parse_submission(_body(circuits=["alu2"], verify="yes"))


class TestJobPayload:
    def test_payload_shape(self):
        request = JobRequest(circuits=("alu2",), priority=3)
        job = Job("job-000007", request, [InputItem(name="alu2")])
        payload = job_payload(job)
        assert payload["id"] == "job-000007"
        assert payload["status"] == "queued"
        assert payload["circuits"] == ["alu2"]
        assert payload["priority"] == 3
        assert payload["error"] is None
        assert payload["result_ready"] is False
        assert payload["cancel_requested"] is False
        assert payload["events"] == 1  # the "queued" state event
