"""Shared test fixtures and helpers."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bdd import BDD


@pytest.fixture
def mgr() -> BDD:
    """A fresh manager with six variables a..f."""
    return BDD(list("abcdef"))


def all_assignments(names):
    """Iterate over every assignment (dict name -> bool) of ``names``."""
    names = list(names)
    for values in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, values))


def random_function(mgr: BDD, names, rng: random.Random, depth: int = 4) -> int:
    """A random BDD built from a random expression tree over ``names``."""
    if depth == 0 or rng.random() < 0.2:
        leaf = rng.choice([*names, "0", "1"])
        if leaf == "0":
            return mgr.ZERO
        if leaf == "1":
            return mgr.ONE
        edge = mgr.var(leaf)
        return edge ^ 1 if rng.random() < 0.5 else edge
    op = rng.choice(["and", "or", "xor", "ite", "not"])
    if op == "not":
        return random_function(mgr, names, rng, depth - 1) ^ 1
    left = random_function(mgr, names, rng, depth - 1)
    right = random_function(mgr, names, rng, depth - 1)
    if op == "and":
        return mgr.and_(left, right)
    if op == "or":
        return mgr.or_(left, right)
    if op == "xor":
        return mgr.xor(left, right)
    third = random_function(mgr, names, rng, depth - 1)
    return mgr.ite(left, right, third)
