"""Cross-module robustness and failure-injection tests.

Verifies the library fails loudly and precisely on malformed input,
and that the flows survive degenerate circuits (constants, buffers,
single-gate networks, shared outputs, very deep chains).
"""

from __future__ import annotations

import pytest

from repro.aig import aig_to_network, network_to_aig, resyn_quick
from repro.bdd import BDD, BDDError
from repro.benchgen import ripple_carry_adder
from repro.flows import FLOWS, abc_flow, bdsmaj_flow, dc_flow
from repro.mapping import map_network
from repro.network import (
    BlifError,
    LogicNetwork,
    NetworkError,
    check_equivalence,
    parse_blif,
    partition_with_bdds,
)


class TestDegenerateNetworks:
    def _run_all_flows(self, net):
        for name, flow in FLOWS.items():
            result = flow(net)
            assert result.equivalence is not None, name
            assert result.equivalence.equivalent, name

    def test_constant_only_circuit(self):
        net = LogicNetwork("consts")
        net.add_input("a")
        net.add_const("one", True)
        net.add_const("zero", False)
        net.add_output("one")
        net.add_output("zero")
        self._run_all_flows(net)

    def test_buffer_chain(self):
        net = LogicNetwork("bufs")
        net.add_input("a")
        previous = "a"
        for i in range(10):
            previous = net.add_buf(f"b{i}", previous)
        net.add_output(previous)
        self._run_all_flows(net)

    def test_single_inverter(self):
        net = LogicNetwork("inv")
        net.add_input("a")
        net.add_not("n", "a")
        net.add_output("n")
        self._run_all_flows(net)

    def test_output_is_input(self):
        net = LogicNetwork("wire")
        net.add_input("a")
        net.add_buf("o", "a")
        net.add_output("o")
        self._run_all_flows(net)

    def test_shared_driver_two_outputs(self):
        net = LogicNetwork("shared")
        net.add_input("a")
        net.add_input("b")
        net.add_and("g", "a", "b")
        net.add_buf("o1", "g")
        net.add_buf("o2", "g")
        net.add_output("o1")
        net.add_output("o2")
        self._run_all_flows(net)

    def test_redundant_function_collapses(self):
        # f = ab + ab' : flows must simplify to a (BDD canonicity).
        net = LogicNetwork("red")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", ("a", "b"), ("11", "10"))
        net.add_output("f")
        result = bdsmaj_flow(net)
        assert result.equivalence.equivalent
        assert result.total_nodes == 0  # plain literal, no gates

    def test_deep_chain_no_recursion_error(self):
        # 3000-level AND chain through every flow stage.
        net = LogicNetwork("deep")
        net.add_input("x0")
        net.add_input("y")
        previous = "x0"
        for i in range(3000):
            previous = net.add_and(f"n{i}", previous, "y")
        net.add_output(previous)
        for flow in (bdsmaj_flow, abc_flow, dc_flow):
            result = flow(net)
            assert result.equivalence.equivalent

    def test_wide_fanin_node(self):
        net = LogicNetwork("wide")
        names = [net.add_input(f"x{i}") for i in range(24)]
        net.add_or("o", *names)
        net.add_output("o")
        self._run_all_flows(net)


class TestErrorMessages:
    def test_bdd_unknown_variable(self):
        mgr = BDD(["a"])
        with pytest.raises(BDDError, match="unknown variable"):
            mgr.var("z")

    def test_network_cycle_message(self):
        net = LogicNetwork()
        net.add_node("x", ("y",), ("1",))
        net.add_node("y", ("x",), ("1",))
        with pytest.raises(NetworkError, match="cycle"):
            net.topological_order()

    def test_blif_reports_bad_row(self):
        with pytest.raises(BlifError, match="outside"):
            parse_blif(".model m\n.inputs a\n1 1\n.end")

    def test_simulate_missing_input(self):
        net = ripple_carry_adder(2)
        with pytest.raises(NetworkError, match="stimulus missing"):
            net.simulate({}, 1)


class TestPartitionPathologies:
    def test_empty_network(self):
        net = LogicNetwork("empty")
        net.add_input("a")
        assert partition_with_bdds(net) == []

    def test_all_outputs_are_nodes(self):
        net = ripple_carry_adder(4)
        entries = partition_with_bdds(net)
        outputs = {s.output for s, _, _ in entries}
        assert set(net.outputs) <= outputs

    def test_tiny_budgets_still_total(self):
        from repro.network import PartitionConfig

        net = ripple_carry_adder(5)
        config = PartitionConfig(max_support=2, max_bdd_nodes=2)
        entries = partition_with_bdds(net, config)
        emitted = set(net.inputs) | {s.output for s, _, _ in entries}
        for supernode, _, _ in entries:
            assert all(signal in emitted for signal in supernode.inputs)


class TestAigPathologies:
    def test_constant_output_network(self):
        net = LogicNetwork("k")
        net.add_input("a")
        net.add_node("o", ("a",), ("1", "0"))  # tautology
        net.add_output("o")
        aig = network_to_aig(net)
        back = aig_to_network(resyn_quick(aig), name="k")
        assert check_equivalence(net, back).equivalent

    def test_mapper_rejects_impossible(self):
        from repro.mapping import CellLibrary, MappingError

        net = LogicNetwork("g")
        net.add_input("a")
        net.add_input("b")
        net.add_and("o", "a", "b")
        net.add_output("o")
        with pytest.raises((MappingError, KeyError)):
            map_network(net, CellLibrary("empty"))

    def test_mapping_preserves_every_output_name(self):
        net = ripple_carry_adder(4)
        mapped = map_network(net)
        assert set(mapped.network.outputs) == set(net.outputs)
