"""Tests for the experiment harnesses (tables, figures, CLI)."""

from __future__ import annotations

import pytest

from repro.benchgen import BENCHMARKS
from repro.experiments import (
    PAPER_HEADLINES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    figure1,
    figure2,
    figure3,
    format_table1,
    format_table2,
    run_table1,
    run_table2,
    summarize_table1,
    summarize_table2,
)
from repro.experiments.cli import main as cli_main

SMALL = ["alu2", "f51m"]


class TestPaperData:
    def test_covers_all_benchmarks(self):
        assert set(PAPER_TABLE1) == set(BENCHMARKS)
        assert set(PAPER_TABLE2) == set(BENCHMARKS)

    def test_row_totals_consistent(self):
        for rows in PAPER_TABLE1.values():
            for row in rows.values():
                assert row.and_ + row.or_ + row.xor + row.xnor + row.maj == row.total

    def test_paper_averages_match_headlines(self):
        """Sanity-check the transcription against the paper's abstract."""
        maj_mean = sum(r["bds-maj"].total for r in PAPER_TABLE1.values()) / 17
        pga_mean = sum(r["bds-pga"].total for r in PAPER_TABLE1.values()) / 17
        assert 1 - maj_mean / pga_mean == pytest.approx(
            PAPER_HEADLINES["table1_node_reduction"], abs=0.005
        )
        area_maj = sum(r["bds-maj"][0] for r in PAPER_TABLE2.values()) / 17
        area_abc = sum(r["abc"][0] for r in PAPER_TABLE2.values()) / 17
        assert 1 - area_maj / area_abc == pytest.approx(
            PAPER_HEADLINES["table2_area_vs_abc"], abs=0.005
        )

    def test_bds_pga_never_has_maj(self):
        for rows in PAPER_TABLE1.values():
            assert rows["bds-pga"].maj == 0


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def entries(self):
        return run_table1(SMALL, verify=True)

    def test_entries_structure(self, entries):
        assert [e.key for e in entries] == SMALL
        for entry in entries:
            assert set(entry.counts) == {"bds-maj", "bds-pga"}
            assert entry.verified["bds-maj"] and entry.verified["bds-pga"]

    def test_pga_has_no_maj(self, entries):
        for entry in entries:
            assert entry.counts["bds-pga"]["maj"] == 0

    def test_summary_fields(self, entries):
        summary = summarize_table1(entries)
        assert summary["benchmarks"] == len(SMALL)
        assert 0 <= summary["maj_fraction"] <= 1
        assert summary["node_reduction"] > 0

    def test_format_includes_paper_rows(self, entries):
        text = format_table1(entries)
        assert "TABLE I" in text
        assert "(paper)" in text
        assert "29.1%" in text

    def test_format_without_paper(self, entries):
        text = format_table1(entries, include_paper=False)
        assert "(paper)" not in text.split("\n---")[0].split("Average")[0]


class TestTable2Harness:
    @pytest.fixture(scope="class")
    def entries(self):
        return run_table2(SMALL, verify=True)

    def test_rows_structure(self, entries):
        for entry in entries:
            assert set(entry.rows) == {"bds-maj", "bds-pga", "abc", "dc"}
            for area, gates, delay in entry.rows.values():
                assert area > 0 and gates > 0 and delay > 0

    def test_summary_and_format(self, entries):
        summary = summarize_table2(entries)
        assert "area_vs_abc" in summary
        text = format_table2(entries)
        assert "TABLE II" in text
        assert "CMOS 22nm" in text


class TestFigures:
    def test_figure1(self):
        result = figure1()
        assert result.num_candidates == 1
        assert result.dominator_function == "a"
        assert "digraph" in result.dot

    def test_figure2_reaches_literal_triple(self):
        result = figure2()
        assert any("[1, 1, 1]" in step for step in result.steps)

    def test_figure3_trace(self):
        result = figure3("f51m")
        assert any("partitioning" in line for line in result.lines)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "alu2" in out and "wallace16" in out

    def test_fig2(self, capsys):
        assert cli_main(["fig2"]) == 0
        assert "Maj(a, b, c)" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert cli_main(["table1", "--benchmarks", "f51m"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out

    def test_synth_benchmark(self, capsys, tmp_path):
        blif = tmp_path / "out.blif"
        assert cli_main(["synth", "f51m", "--flow", "bds-maj", "--blif-out", str(blif)]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert blif.exists()

    def test_synth_blif_input(self, capsys, tmp_path):
        from repro.benchgen import ripple_carry_adder
        from repro.network import to_blif

        path = tmp_path / "adder.blif"
        path.write_text(to_blif(ripple_carry_adder(3)))
        assert cli_main(["synth", str(path), "--flow", "dc"]) == 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["table1", "--benchmarks", "nope"])


class TestCliValidation:
    """Numeric options fail with a clean argparse usage error (exit
    code 2), never a traceback from deep inside the batch layer."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["batch", "--workers", "0"],
            ["batch", "--workers", "-3"],
            ["batch", "--workers", "two"],
            ["batch", "--cache-capacity", "0"],
            ["batch", "--cache-capacity", "-1"],
            ["serve", "--concurrency", "0"],
            ["serve", "--port", "-1"],
            ["serve", "--port", "70000"],
        ],
    )
    def test_nonpositive_numeric_options_are_usage_errors(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert ">= 1" in err or "integer" in err or "0..65535" in err

    def test_batch_config_mirrors_the_guards(self):
        from repro.flows import BatchConfig

        with pytest.raises(ValueError):
            BatchConfig(workers=0)
        with pytest.raises(ValueError):
            BatchConfig(cache_capacity=0)

    def test_cache_capacity_flag_is_threaded(self, tmp_path):
        import json

        out = tmp_path / "report.json"
        assert (
            cli_main(
                [
                    "batch",
                    "--benchmarks",
                    "f51m",
                    "--cache-capacity",
                    "16",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        # A 16-entry cache on f51m must evict; the default never does.
        assert payload["circuits"][0]["cache"]["evictions"] > 0

    def test_serve_subcommand_exists(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--concurrency" in out and "--port" in out
