"""Tests for Algorithm 1: majority construction, balancing, selection.

Each of the paper's theorems gets a direct test, the worked example of
Sections III.C/III.D is reproduced literally, and hypothesis drives the
certification over random functions.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.bdd.substitute import function_at
from repro.core import (
    MajorityConfig,
    MajorityDecomposition,
    MajorityDecompositionError,
    accepts_globally,
    balance_pair,
    certify,
    construct,
    decompose_majority,
    is_better,
    optimize,
)

from ..conftest import random_function


@pytest.fixture
def majority_function(mgr):
    return mgr.from_expr("a & b | b & c | a & c")


class TestTheorem31Existence:
    """Theorem 3.1: every function admits a majority decomposition.

    The constructive proof sets two of the three functions equal to F
    row-wise; the β-construction realizes this for any non-constant Fa,
    so construction must never fail regardless of the candidate.
    """

    def test_construction_succeeds_for_every_internal_node(self, mgr):
        rng = random.Random(71)
        for _ in range(25):
            f = random_function(mgr, "abcde", rng)
            if mgr.is_constant(f):
                continue
            for node in mgr.nodes_reachable([f]):
                fa = function_at(mgr, node)
                decomposition = construct(mgr, f, fa)
                certify(mgr, f, decomposition)

    def test_construction_with_unrelated_fa(self, mgr):
        # Fa need not even appear in F's BDD.
        f = mgr.from_expr("a & b | c")
        fa = mgr.from_expr("d ^ e")
        decomposition = construct(mgr, f, fa)
        certify(mgr, f, decomposition)

    def test_constant_fa_rejected(self, mgr):
        f = mgr.from_expr("a | b")
        with pytest.raises(MajorityDecompositionError):
            construct(mgr, f, mgr.ONE)


class TestTheorem32Construction:
    def test_fb_fc_equal_f_on_disagreement_set(self, mgr):
        """Where Fa != F both Fb and Fc must equal F (proof case i)."""
        rng = random.Random(73)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if mgr.is_constant(f):
                continue
            for node in mgr.nodes_reachable([f]):
                fa = function_at(mgr, node)
                decomposition = construct(mgr, f, fa)
                disagreement = mgr.xor(fa, f)
                assert mgr.and_(disagreement, mgr.xor(decomposition.fb, f)) == mgr.ZERO
                assert mgr.and_(disagreement, mgr.xor(decomposition.fc, f)) == mgr.ZERO

    def test_h_or_w_agrees_with_f_elsewhere(self, mgr):
        """On the agreement set at least one of Fb, Fc equals F
        (Equation 2 instantiated by the Theorem 3.3 seeds)."""
        rng = random.Random(79)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if mgr.is_constant(f):
                continue
            for node in mgr.nodes_reachable([f]):
                fa = function_at(mgr, node)
                decomposition = construct(mgr, f, fa)
                either_agrees = mgr.or_(
                    mgr.xnor(decomposition.fb, f), mgr.xnor(decomposition.fc, f)
                )
                assert either_agrees == mgr.ONE


class TestPaperExampleSectionIIIC:
    """F = ab + bc + ac with Fa = a: H = b + c, W = bc,
    Fb = b + c, Fc = bc, Maj(a, b+c, bc) == F."""

    def test_construction_matches_paper(self, mgr, majority_function):
        fa = mgr.var("a")
        decomposition = construct(mgr, majority_function, fa)
        assert decomposition.fb == mgr.from_expr("b | c")
        assert decomposition.fc == mgr.from_expr("b & c")
        certify(mgr, majority_function, decomposition)

    def test_balancing_matches_paper(self, mgr, majority_function):
        """Section III.D: rebalancing (Fb, Fc) = (b+c, bc) must yield
        (b, c) — i.e. Maj(a, b, c)."""
        fa = mgr.var("a")
        decomposition = construct(mgr, majority_function, fa)
        optimized = optimize(mgr, majority_function, decomposition)
        sizes = sorted(optimized.sizes(mgr))
        assert sizes == [1, 1, 1], "expected the literal triple (a, b, c)"
        certify(mgr, majority_function, optimized)

    def test_full_algorithm_finds_literal_triple(self, mgr, majority_function):
        decomposition = decompose_majority(mgr, majority_function)
        assert decomposition is not None
        assert sorted(decomposition.sizes(mgr)) == [1, 1, 1]
        assert {decomposition.fa, decomposition.fb, decomposition.fc} == {
            mgr.var("a"),
            mgr.var("b"),
            mgr.var("c"),
        }


class TestTheorem34Balancing:
    def test_balance_pair_preserves_majority(self, mgr):
        rng = random.Random(83)
        for _ in range(25):
            f = random_function(mgr, "abcd", rng)
            if mgr.is_constant(f):
                continue
            nodes = mgr.nodes_reachable([f])
            fa = function_at(mgr, nodes[rng.randrange(len(nodes))])
            decomposition = construct(mgr, f, fa)
            fb, fc = balance_pair(mgr, decomposition.fb, decomposition.fc)
            certify(mgr, f, MajorityDecomposition(decomposition.fa, fb, fc))
            fa2, fb2 = balance_pair(mgr, decomposition.fa, decomposition.fb)
            certify(mgr, f, MajorityDecomposition(fa2, fb2, decomposition.fc))

    def test_balance_pair_identity_when_equal(self, mgr):
        x = mgr.from_expr("a & b")
        assert balance_pair(mgr, x, x) == (x, x)

    def test_optimize_never_worsens(self, mgr):
        rng = random.Random(89)
        for _ in range(20):
            f = random_function(mgr, "abcde", rng)
            if mgr.is_constant(f):
                continue
            nodes = mgr.nodes_reachable([f])
            fa = function_at(mgr, nodes[-1])
            decomposition = construct(mgr, f, fa)
            optimized = optimize(mgr, f, decomposition)
            assert optimized.total_size(mgr) <= decomposition.total_size(mgr)
            certify(mgr, f, optimized)

    def test_optimize_respects_iteration_limit(self, mgr, majority_function):
        config = MajorityConfig(max_balance_iterations=0)
        fa = mgr.var("a")
        decomposition = construct(mgr, majority_function, fa, config)
        optimized = optimize(mgr, majority_function, decomposition, config)
        assert optimized.parts() == decomposition.parts()


class TestSelectionMetrics:
    def _triple(self, mgr, *exprs):
        return MajorityDecomposition(*(mgr.from_expr(e) for e in exprs))

    def test_smaller_sum_wins(self, mgr):
        small = self._triple(mgr, "a", "b", "c")
        large = self._triple(mgr, "a & b | c", "b | c", "a ^ c")
        assert is_better(mgr, small, large)
        assert not is_better(mgr, large, small)

    def test_k_dominance_certificate(self, mgr):
        small = self._triple(mgr, "a", "b", "c")
        scaled = self._triple(mgr, "a & b", "b & c", "a ^ b ^ c")
        # Every component of `small` is >= 1.5x smaller: dominance.
        assert is_better(mgr, small, scaled, k=1.5)

    def test_tie_breaks_on_largest_component(self, mgr):
        balanced = self._triple(mgr, "a & b", "b & c", "a & c")  # sizes 2,2,2
        skewed = MajorityDecomposition(
            mgr.from_expr("a"), mgr.from_expr("b"), mgr.from_expr("a ^ b ^ c ^ d")
        )  # sizes 1,1,4
        assert is_better(mgr, balanced, skewed)

    def test_global_acceptance_requires_progress(self, mgr, majority_function):
        good = self._triple(mgr, "a", "b", "c")
        assert accepts_globally(mgr, majority_function, good, k=1.6)
        trivial = MajorityDecomposition(
            mgr.var("a"), majority_function, majority_function
        )
        assert not accepts_globally(mgr, majority_function, trivial, k=1.6)

    def test_global_acceptance_checks_each_component(self, mgr):
        f = mgr.from_expr("(a | b) & (c | d) & (a ^ d)")  # a larger function
        original = mgr.size(f)
        # Component as large as the original: rejected even if sum is less.
        lopsided = MajorityDecomposition(mgr.var("a"), mgr.var("b"), f)
        assert not accepts_globally(mgr, f, lopsided, k=1.6)


class TestAlgorithmEndToEnd:
    def test_always_certified(self, mgr):
        rng = random.Random(97)
        for _ in range(30):
            f = random_function(mgr, "abcde", rng)
            decomposition = decompose_majority(mgr, f)
            if decomposition is not None:
                certify(mgr, f, decomposition)

    def test_constant_has_no_decomposition(self, mgr):
        assert decompose_majority(mgr, mgr.ONE) is None
        assert decompose_majority(mgr, mgr.ZERO) is None

    def test_adder_carry_is_pure_majority(self, mgr):
        """The full-adder carry is MAJ(a, b, cin) — the motivating
        datapath pattern; Algorithm 1 must reduce it to literals."""
        carry = mgr.from_expr("a & b | (a ^ b) & c")
        decomposition = decompose_majority(mgr, carry)
        assert decomposition is not None
        assert sorted(decomposition.sizes(mgr)) == [1, 1, 1]

    def test_respects_candidate_cap(self, mgr):
        from repro.core import MDominatorConfig

        f = mgr.from_expr("a & b | b & c | a & c")
        config = MajorityConfig()
        config.mdominator = MDominatorConfig(max_candidates=1)
        decomposition = decompose_majority(mgr, f, config)
        assert decomposition is not None
        certify(mgr, f, decomposition)


@settings(max_examples=120, deadline=None)
@given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_property_majority_decomposition_certified(table):
    """For arbitrary 4-variable functions, whenever Algorithm 1 returns
    a triple it must satisfy Maj(Fa,Fb,Fc) == F."""
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    decomposition = decompose_majority(mgr, f)
    if decomposition is not None:
        certify(mgr, f, decomposition)


@settings(max_examples=80, deadline=None)
@given(
    table=st.integers(min_value=0, max_value=(1 << 16) - 1),
    node_choice=st.integers(min_value=0, max_value=63),
)
def test_property_construction_valid_for_any_candidate(table, node_choice):
    """β-construction (Thm 3.2 + 3.3) is valid for *any* internal node."""
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    if mgr.is_constant(f):
        return
    nodes = mgr.nodes_reachable([f])
    fa = function_at(mgr, nodes[node_choice % len(nodes)])
    decomposition = construct(mgr, f, fa)
    certify(mgr, f, decomposition)
