"""Tests for the m-dominator search (paper Section III.B, Figure 1)."""

from __future__ import annotations

import random

from repro.bdd import BDD
from repro.bdd.substitute import function_at
from repro.core import MDominatorConfig, find_m_dominators

from ..conftest import random_function


class TestFigureOne:
    """The paper's Figure 1: BDD of F = ab + bc + ac has exactly one
    non-trivial m-dominator, the node whose function is the last
    variable in the order (node `a` in the paper's order c,b,a)."""

    def test_paper_order_finds_bottom_literal(self):
        mgr = BDD(["c", "b", "a"])
        f = mgr.from_expr("a & b | b & c | a & c")
        candidates = find_m_dominators(mgr, f)
        assert len(candidates) == 1
        assert function_at(mgr, candidates[0].node) == mgr.var("a")

    def test_alphabetic_order_finds_bottom_literal(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.from_expr("a & b | b & c | a & c")
        candidates = find_m_dominators(mgr, f)
        assert len(candidates) == 1
        assert function_at(mgr, candidates[0].node) == mgr.var("c")

    def test_dominator_has_multiple_regular_inedges(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.from_expr("a & b | b & c | a & c")
        (candidate,) = find_m_dominators(mgr, f)
        assert candidate.regular_fanin >= 2


class TestSelectionCriteria:
    def test_constant_has_no_candidates(self, mgr):
        assert find_m_dominators(mgr, mgr.ONE) == []

    def test_root_excluded(self, mgr):
        rng = random.Random(101)
        for _ in range(20):
            f = random_function(mgr, "abcd", rng)
            if mgr.is_constant(f):
                continue
            for candidate in find_m_dominators(mgr, f):
                assert candidate.node != f >> 1

    def test_candidates_ranked_by_fanin(self, mgr):
        rng = random.Random(103)
        for _ in range(20):
            f = random_function(mgr, "abcde", rng)
            candidates = find_m_dominators(mgr, f)
            fanins = [c.regular_fanin for c in candidates]
            assert fanins == sorted(fanins, reverse=True)

    def test_max_candidates_cap(self, mgr):
        rng = random.Random(107)
        config = MDominatorConfig(max_candidates=2)
        for _ in range(10):
            f = random_function(mgr, "abcdef", rng, depth=5)
            assert len(find_m_dominators(mgr, f, config)) <= 2

    def test_strict_fanin_filter(self, mgr):
        config = MDominatorConfig(min_regular_fanin=3, relax_if_empty=False)
        f = mgr.from_expr("a & b | b & c | a & c")
        assert find_m_dominators(mgr, f, config) == []

    def test_relaxation_recovers_candidates(self, mgr):
        config = MDominatorConfig(min_regular_fanin=3, relax_if_empty=True)
        f = mgr.from_expr("a & b | b & c | a & c")
        assert find_m_dominators(mgr, f, config)

    def test_simple_dominators_excluded_by_default(self, mgr):
        """In F = (a^b) ^ c the node testing c is an x-dominator, so it
        must not be offered as an m-dominator candidate."""
        f = mgr.from_expr("(a ^ b) ^ c")
        c_node = mgr.var("c") >> 1
        candidates = find_m_dominators(mgr, f)
        assert all(candidate.node != c_node for candidate in candidates)

    def test_simple_dominator_exclusion_can_be_disabled(self, mgr):
        config = MDominatorConfig(exclude_simple_dominators=False, min_regular_fanin=1)
        f = mgr.from_expr("(a ^ b) ^ c")
        c_node = mgr.var("c") >> 1
        candidates = find_m_dominators(mgr, f, config)
        assert any(candidate.node == c_node for candidate in candidates)
