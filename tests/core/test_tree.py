"""Tests for factoring trees (interning, folding, counting, evaluation)."""

from __future__ import annotations

import pytest

from repro.bdd import BDD
from repro.core import TreeBuilder, tree_from_bdd

from ..conftest import all_assignments


@pytest.fixture
def builder():
    return TreeBuilder()


class TestInterning:
    def test_constants_fixed_ids(self, builder):
        assert builder.const(False) == TreeBuilder.CONST0
        assert builder.const(True) == TreeBuilder.CONST1

    def test_literals_interned(self, builder):
        assert builder.literal("x") == builder.literal("x")
        assert builder.literal("x") != builder.literal("y")

    def test_commutative_sharing(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        assert builder.and_(a, b) == builder.and_(b, a)
        assert builder.or_(a, b) == builder.or_(b, a)
        assert builder.xor(a, b) == builder.xor(b, a)

    def test_maj_children_sorted(self, builder):
        a, b, c = (builder.literal(n) for n in "abc")
        assert builder.maj(a, b, c) == builder.maj(c, a, b)

    def test_structural_sharing_across_roots(self, builder):
        a, b, c = (builder.literal(n) for n in "abc")
        shared = builder.and_(a, b)
        root1 = builder.or_(shared, c)
        root2 = builder.xor(shared, c)
        counts = builder.count_ops([root1, root2])
        assert counts["and"] == 1  # shared subtree counted once


class TestFolding:
    def test_and_constants(self, builder):
        a = builder.literal("a")
        assert builder.and_(a, builder.CONST0) == builder.CONST0
        assert builder.and_(a, builder.CONST1) == a
        assert builder.and_(a, a) == a

    def test_or_constants(self, builder):
        a = builder.literal("a")
        assert builder.or_(a, builder.CONST1) == builder.CONST1
        assert builder.or_(a, builder.CONST0) == a

    def test_xor_folds(self, builder):
        a = builder.literal("a")
        assert builder.xor(a, a) == builder.CONST0
        assert builder.xor(a, builder.CONST0) == a
        assert builder.xor(a, builder.CONST1) == builder.not_(a)

    def test_double_negation(self, builder):
        a = builder.literal("a")
        assert builder.not_(builder.not_(a)) == a

    def test_not_of_constants(self, builder):
        assert builder.not_(builder.CONST0) == builder.CONST1
        assert builder.not_(builder.CONST1) == builder.CONST0

    def test_xor_with_negated_child_becomes_xnor(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        node = builder.xor(a, builder.not_(b))
        assert builder.op(node) == "xnor"
        assert builder.children(node) == tuple(sorted((a, b)))

    def test_xnor_with_negated_child_becomes_xor(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        node = builder.xnor(builder.not_(a), b)
        assert builder.op(node) == "xor"

    def test_maj_folds(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        assert builder.maj(a, a, b) == a
        assert builder.maj(builder.CONST0, a, b) == builder.and_(a, b)
        assert builder.maj(builder.CONST1, a, b) == builder.or_(a, b)

    def test_mux_expansion(self, builder):
        s, t, e = (builder.literal(n) for n in "ste")
        node = builder.mux(s, t, e)
        assert builder.op(node) == "or"
        for assignment in all_assignments("ste"):
            expected = assignment["t"] if assignment["s"] else assignment["e"]
            assert builder.eval(node, assignment) == expected

    def test_mux_with_equal_branches(self, builder):
        s, t = builder.literal("s"), builder.literal("t")
        # or(and(s,t), and(~s,t)) does not fold structurally, but the
        # constant branches must.
        assert builder.mux(s, builder.CONST1, builder.CONST0) == s


class TestEvaluation:
    def test_full_adder_sum(self, builder):
        a, b, cin = (builder.literal(n) for n in ("a", "b", "cin"))
        total = builder.xor(builder.xor(a, b), cin)
        for assignment in all_assignments(["a", "b", "cin"]):
            expected = (assignment["a"] + assignment["b"] + assignment["cin"]) % 2
            assert builder.eval(total, assignment) == bool(expected)

    def test_maj_eval(self, builder):
        a, b, c = (builder.literal(n) for n in "abc")
        node = builder.maj(a, b, c)
        for assignment in all_assignments("abc"):
            expected = sum(assignment.values()) >= 2
            assert builder.eval(node, assignment) == expected

    def test_xnor_eval(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        node = builder.xnor(a, b)
        for assignment in all_assignments("ab"):
            assert builder.eval(node, assignment) == (assignment["a"] == assignment["b"])


class TestAnalysis:
    def test_count_ops_by_kind(self, builder):
        a, b, c = (builder.literal(n) for n in "abc")
        root = builder.maj(builder.xor(a, b), builder.and_(a, c), builder.or_(b, c))
        counts = builder.count_ops([root])
        assert counts == {"and": 1, "or": 1, "xor": 1, "xnor": 0, "maj": 1}

    def test_inverters_not_counted(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        root = builder.and_(builder.not_(a), b)
        counts = builder.count_ops([root])
        assert sum(counts.values()) == 1

    def test_depth(self, builder):
        a, b, c, d = (builder.literal(n) for n in "abcd")
        chain = builder.and_(builder.and_(builder.and_(a, b), c), d)
        assert builder.depth(chain) == 3
        assert builder.depth(a) == 0

    def test_support(self, builder):
        a, b = builder.literal("a"), builder.literal("b")
        root = builder.xor(a, builder.not_(b))
        assert builder.support(root) == {"a", "b"}

    def test_to_expression_smoke(self, builder):
        a, b, c = (builder.literal(n) for n in "abc")
        root = builder.maj(a, builder.not_(b), c)
        text = builder.to_expression(root)
        assert "MAJ" in text and "~b" in text


class TestTreeFromBdd:
    def test_round_trip_equivalence(self):
        mgr = BDD(["a", "b", "c", "d"])
        builder = TreeBuilder()
        f = mgr.from_expr("(a & b) ^ (c | ~d)")
        root = tree_from_bdd(builder, mgr, f)
        for assignment in all_assignments("abcd"):
            assert builder.eval(root, assignment) == mgr.eval(f, assignment)

    def test_constants(self):
        mgr = BDD(["a"])
        builder = TreeBuilder()
        assert tree_from_bdd(builder, mgr, mgr.ONE) == builder.CONST1
        assert tree_from_bdd(builder, mgr, mgr.ZERO) == builder.CONST0
