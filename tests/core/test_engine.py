"""Tests for the combined BDS+MAJ decomposition engine."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.core import DecompositionEngine, EngineConfig, TreeBuilder

from ..conftest import all_assignments, random_function


def engine_for(mgr, **config_kwargs):
    return DecompositionEngine(mgr, TreeBuilder(), EngineConfig(**config_kwargs))


def assert_tree_equals_bdd(engine, f, names):
    mgr, builder = engine.mgr, engine.builder
    root = engine.decompose(f)
    for assignment in all_assignments(names):
        assert builder.eval(root, assignment) == mgr.eval(f, assignment), (
            f"mismatch at {assignment}"
        )
    return root


class TestBaseCases:
    def test_constants(self, mgr):
        engine = engine_for(mgr)
        assert engine.decompose(mgr.ONE) == TreeBuilder.CONST1
        assert engine.decompose(mgr.ZERO) == TreeBuilder.CONST0

    def test_literal(self, mgr):
        engine = engine_for(mgr)
        root = engine.decompose(mgr.var("a"))
        assert engine.builder.op(root) == "lit"

    def test_negated_literal(self, mgr):
        engine = engine_for(mgr)
        root = engine.decompose(mgr.var("a") ^ 1)
        assert engine.builder.op(root) == "not"


class TestEquivalence:
    def test_random_functions_five_vars(self, mgr):
        rng = random.Random(109)
        engine = engine_for(mgr)
        for _ in range(25):
            f = random_function(mgr, "abcde", rng, depth=5)
            assert_tree_equals_bdd(engine, f, "abcde")

    def test_full_adder(self, mgr):
        engine = engine_for(mgr)
        carry = mgr.from_expr("a & b | (a ^ b) & c")
        total = mgr.from_expr("a ^ b ^ c")
        assert_tree_equals_bdd(engine, carry, "abc")
        assert_tree_equals_bdd(engine, total, "abc")

    def test_without_majority_still_equivalent(self, mgr):
        rng = random.Random(113)
        engine = engine_for(mgr, enable_majority=False)
        for _ in range(25):
            f = random_function(mgr, "abcde", rng, depth=5)
            assert_tree_equals_bdd(engine, f, "abcde")


class TestMajorityUsage:
    def test_majority_function_becomes_single_maj(self, mgr):
        engine = engine_for(mgr)
        f = mgr.from_expr("a & b | b & c | a & c")
        root = engine.decompose(f)
        assert engine.builder.op(root) == "maj"
        counts = engine.builder.count_ops([root])
        assert counts["maj"] == 1
        assert sum(counts.values()) == 1

    def test_bds_pga_mode_emits_no_maj(self, mgr):
        rng = random.Random(127)
        engine = engine_for(mgr, enable_majority=False)
        roots = []
        for _ in range(20):
            f = random_function(mgr, "abcde", rng, depth=5)
            roots.append(engine.decompose(f))
        counts = engine.builder.count_ops(roots)
        assert counts["maj"] == 0
        assert engine.stats.majority == 0

    def test_majority_reduces_node_count(self, mgr):
        """On the carry chain the MAJ engine must not be worse than the
        radix-2-only engine (Table I's claim in miniature)."""
        carry2 = mgr.from_expr(
            "(a & b | (a ^ b) & c) "  # carry of stage 1 ...
        )
        with_maj = engine_for(mgr)
        without_maj = engine_for(mgr, enable_majority=False)
        maj_nodes = with_maj.builder.total_nodes([with_maj.decompose(carry2)])
        plain_nodes = without_maj.builder.total_nodes([without_maj.decompose(carry2)])
        assert maj_nodes <= plain_nodes

    def test_stats_track_steps(self, mgr):
        engine = engine_for(mgr)
        engine.decompose(mgr.from_expr("a & b | b & c | a & c"))
        assert engine.stats.majority == 1


class TestSharing:
    def test_cache_hit_on_repeat(self, mgr):
        engine = engine_for(mgr)
        f = mgr.from_expr("a ^ b ^ c")
        first = engine.decompose(f)
        second = engine.decompose(f)
        assert first == second
        assert engine.stats.cache_hits >= 1

    def test_complement_shared_via_inverter(self, mgr):
        engine = engine_for(mgr)
        f = mgr.from_expr("a & b | c & d")
        tree_f = engine.decompose(f)
        tree_not_f = engine.decompose(f ^ 1)
        assert tree_not_f == engine.builder.not_(tree_f)

    def test_shared_subfunctions_share_trees(self, mgr):
        engine = engine_for(mgr)
        shared = mgr.from_expr("a ^ b")
        f = mgr.and_(shared, mgr.var("c"))
        g = mgr.or_(shared, mgr.var("d"))
        roots = [engine.decompose(f), engine.decompose(g)]
        counts = engine.builder.count_ops(roots)
        assert counts["xor"] + counts["xnor"] == 1  # a^b built once


class TestConfigGuards:
    def test_size_window_skips_majority(self, mgr):
        engine = engine_for(mgr, min_majority_size=100)
        f = mgr.from_expr("a & b | b & c | a & c")
        root = engine.decompose(f)
        assert engine.stats.majority == 0
        assert engine.builder.count_ops([root])["maj"] == 0

    def test_global_k_influences_acceptance(self, mgr):
        # With an absurd k nothing passes the global gate.
        engine = engine_for(mgr, global_k=100.0)
        f = mgr.from_expr("a & b | b & c | a & c")
        engine.decompose(f)
        assert engine.stats.majority == 0


@settings(max_examples=80, deadline=None)
@given(
    table=st.integers(min_value=0, max_value=(1 << 16) - 1),
    enable_majority=st.booleans(),
)
def test_property_engine_preserves_function(table, enable_majority):
    """End-to-end: decomposed tree == original function, bit for bit,
    for arbitrary 4-variable functions in both engine modes."""
    names = ["a", "b", "c", "d"]
    mgr = BDD(names)
    f = mgr.from_truth_table(table, names)
    engine = DecompositionEngine(mgr, TreeBuilder(), EngineConfig(enable_majority=enable_majority))
    root = engine.decompose(f)
    for row in range(16):
        assignment = {name: bool(row >> i & 1) for i, name in enumerate(names)}
        assert engine.builder.eval(root, assignment) == mgr.eval(f, assignment)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    enable_majority=st.booleans(),
)
def test_property_random_expression_tree_equivalence(seed, enable_majority):
    """For random expression-tree functions (the conftest generator),
    the factored tree — majority on and off — evaluates identically to
    the source BDD on every assignment."""
    names = "abcde"
    mgr = BDD(list(names))
    rng = random.Random(seed)
    f = random_function(mgr, names, rng, depth=5)
    engine = DecompositionEngine(
        mgr, TreeBuilder(), EngineConfig(enable_majority=enable_majority)
    )
    root = engine.decompose(f)
    for assignment in all_assignments(names):
        assert engine.builder.eval(root, assignment) == mgr.eval(f, assignment)
    if not enable_majority:
        assert engine.stats.majority == 0
        assert engine.builder.count_ops([root]).get("maj", 0) == 0
