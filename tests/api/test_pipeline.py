"""Tests for the composable pipeline layer (`repro.api`).

The centerpiece is the stage-composition equivalence suite: every
registered pipeline must produce a ``FlowResult`` identical — down to
the serialized networks — to the pre-refactor one-shot flow recipe
(`bds_optimize`/`dc_optimize`/the resyn2 chain + `finish_flow`) on
real registry circuits.
"""

from __future__ import annotations

import pytest

from repro.aig import aig_to_network, network_to_aig, resyn2
from repro.api import (
    FunctionStage,
    InputItem,
    Pipeline,
    PipelineError,
    PipelineObserver,
    PipelineRegistry,
    get_pipeline,
    pipeline_names,
    register_pipeline,
    stage,
    standard_stages,
)
from repro.benchgen import build_benchmark
from repro.flows import (
    FLOWS,
    BdsFlowConfig,
    DcFlowConfig,
    bds_optimize,
    dc_optimize,
    finish_flow,
)
from repro.network import to_blif

#: Registry circuits the equivalence suite pins (>= 3, per the issue).
EQUIVALENCE_CIRCUITS = ("alu2", "f51m", "vda")


@pytest.fixture(scope="module")
def networks():
    return {key: build_benchmark(key) for key in EQUIVALENCE_CIRCUITS}


def reference_flow(flow: str, network):
    """The pre-refactor flow recipe, reproduced verbatim."""
    if flow in ("bds-maj", "bds-pga"):
        config = BdsFlowConfig(enable_majority=(flow == "bds-maj"), verify=False)
        decomposed, counts, trace = bds_optimize(network, config)
        return finish_flow(
            flow,
            network,
            decomposed,
            0.0,
            node_counts=counts,
            verify=False,
            cache_stats=trace.cache_summary(),
        )
    if flow == "abc":
        optimized = aig_to_network(
            resyn2(network_to_aig(network)), name=network.name, detect_xor=True
        )
        return finish_flow(flow, network, optimized, 0.0, verify=False)
    optimized = dc_optimize(network, DcFlowConfig(verify=False))
    return finish_flow(flow, network, optimized, 0.0, verify=False)


def pipeline_config(flow: str):
    if flow in ("bds-maj", "bds-pga"):
        return BdsFlowConfig(enable_majority=(flow == "bds-maj"), verify=False)
    if flow == "dc":
        return DcFlowConfig(verify=False)
    from repro.flows import AbcFlowConfig

    return AbcFlowConfig(verify=False)


def assert_results_identical(actual, expected):
    """Every deterministic ``FlowResult`` field must match (wall-clock
    timings are the one legitimately nondeterministic field)."""
    assert actual.flow == expected.flow
    assert actual.benchmark == expected.benchmark
    assert actual.node_counts == expected.node_counts
    assert actual.cache_stats == expected.cache_stats
    assert actual.total_nodes == expected.total_nodes
    assert actual.table2_row() == expected.table2_row()
    assert to_blif(actual.optimized) == to_blif(expected.optimized)
    assert to_blif(actual.mapped.network) == to_blif(expected.mapped.network)
    assert actual.mapped.cell_histogram() == expected.mapped.cell_histogram()


class TestStageCompositionEquivalence:
    @pytest.mark.parametrize("flow", ["bds-maj", "bds-pga", "abc", "dc"])
    @pytest.mark.parametrize("circuit", EQUIVALENCE_CIRCUITS)
    def test_pipeline_matches_prerefactor_flow(self, networks, flow, circuit):
        network = networks[circuit]
        expected = reference_flow(flow, network)
        actual = get_pipeline(flow).run(network, pipeline_config(flow))
        assert_results_identical(actual, expected)

    def test_flows_shim_routes_through_registry(self, networks):
        network = networks["alu2"]
        shim = FLOWS["bds-maj"](network, BdsFlowConfig(verify=False))
        direct = get_pipeline("bds-maj").run(network, BdsFlowConfig(verify=False))
        assert_results_identical(shim, direct)

    def test_verification_still_runs_and_passes(self, networks):
        result = get_pipeline("bds-maj").run(networks["alu2"])
        assert result.equivalence is not None and result.equivalence.equivalent

    def test_pga_pipeline_forces_majority_off_on_shared_config(self, networks):
        config = BdsFlowConfig(verify=False)  # enable_majority defaults True
        result = get_pipeline("bds-pga").run(networks["alu2"], config)
        assert result.node_counts["maj"] == 0
        assert config.enable_majority is False


class TestPipelineExecution:
    def test_accepts_registry_key_string(self):
        result = get_pipeline("bds-maj").run("alu2", BdsFlowConfig(verify=False))
        assert result.benchmark == "alu2"

    def test_accepts_input_item(self):
        item = InputItem(name="alu2", kind="registry")
        result = get_pipeline("bds-maj").run(item, BdsFlowConfig(verify=False))
        assert result.benchmark == "alu2"

    def test_rejects_unknown_source_type(self):
        with pytest.raises(PipelineError, match="cannot run pipeline"):
            get_pipeline("bds-maj").run(42)

    def test_run_context_records_timings_and_events(self):
        network = build_benchmark("alu2")
        ctx = get_pipeline("bds-maj").run_context(network, BdsFlowConfig(verify=False))
        stage_names = [t.stage for t in ctx.timings]
        assert stage_names == [
            "load-input",
            "build-bdds",
            "reorder",
            "decompose",
            "rewrite",
            "map",
            "verify",
        ]
        assert all(t.seconds >= 0.0 for t in ctx.timings)
        # Events: one start + one end per stage, interleaved in order.
        kinds = [(e.kind, e.stage) for e in ctx.events]
        assert kinds[:2] == [
            ("stage_start", "load-input"),
            ("stage_end", "load-input"),
        ]
        assert len(ctx.events) == 2 * len(stage_names)
        # Only the optimization stages feed optimize_seconds.
        optimize_total = sum(
            t.seconds
            for t in ctx.timings
            if t.stage in ("build-bdds", "reorder", "decompose", "rewrite")
        )
        assert ctx.optimize_seconds == pytest.approx(optimize_total)

    def test_observer_hooks_fire_in_order(self):
        seen: list[tuple[str, str]] = []

        class Recorder(PipelineObserver):
            def on_stage_start(self, ctx, stage):
                seen.append(("start", stage.name))

            def on_stage_end(self, ctx, stage, seconds):
                assert seconds >= 0.0
                seen.append(("end", stage.name))

        pipeline = get_pipeline("bds-maj").optimize_prefix()
        pipeline.run_context(
            build_benchmark("alu2"),
            BdsFlowConfig(verify=False),
            observers=[Recorder()],
        )
        assert seen[0] == ("start", "load-input")
        assert seen[-1] == ("end", "rewrite")
        assert len(seen) == 2 * len(pipeline.stages)
        # Starts and ends interleave: every stage closes before the next opens.
        for i in range(0, len(seen), 2):
            assert seen[i][0] == "start" and seen[i + 1][0] == "end"
            assert seen[i][1] == seen[i + 1][1]

    def test_callback_hooks(self):
        started: list[str] = []
        get_pipeline("abc").run(
            build_benchmark("alu2"),
            pipeline_config("abc"),
            on_stage_start=lambda ctx, s: started.append(s.name),
        )
        assert started == ["load-input", "strash", "rewrite", "emit", "map", "verify"]


class TestComposition:
    def test_up_to_stops_before_mapping(self):
        pipeline = get_pipeline("bds-maj").up_to("rewrite")
        ctx = pipeline.run_context(build_benchmark("alu2"), BdsFlowConfig(verify=False))
        assert ctx.optimized is not None
        assert ctx.mapped is None
        with pytest.raises(PipelineError, match="did not run a map stage"):
            ctx.to_result()

    def test_optimize_prefix_matches_bds_optimize(self):
        network = build_benchmark("f51m")
        decomposed, counts, trace = bds_optimize(
            network, BdsFlowConfig(verify=False)
        )
        ctx = get_pipeline("bds-maj").optimize_prefix().run_context(
            network, BdsFlowConfig(verify=False)
        )
        assert ctx.node_counts == counts
        assert ctx.cache_stats == trace.cache_summary()
        assert to_blif(ctx.optimized) == to_blif(decomposed)

    def test_unknown_stage_name_raises(self):
        with pytest.raises(PipelineError, match="no stage"):
            get_pipeline("bds-maj").up_to("fuse-layers")

    def test_replace_and_insert_return_new_pipelines(self):
        base = get_pipeline("bds-maj")
        marker = FunctionStage("noop", lambda ctx: ctx)
        inserted = base.insert_after("rewrite", marker)
        assert "noop" in inserted.stage_names()
        assert "noop" not in base.stage_names()
        swapped = base.replace("verify", marker)
        assert swapped.stage_names().count("noop") == 1

    def test_custom_stage_via_decorator_runs(self):
        @stage("count-outputs")
        def count_outputs(ctx):
            ctx.scratch["num_outputs"] = len(ctx.network.outputs)

        pipeline = get_pipeline("bds-maj").up_to("rewrite").insert_after(
            "load-input", count_outputs
        )
        ctx = pipeline.run_context(build_benchmark("alu2"), BdsFlowConfig(verify=False))
        assert ctx.scratch["num_outputs"] == len(build_benchmark("alu2").outputs)

    def test_duplicate_stage_names_rejected(self):
        noop = FunctionStage("noop", lambda ctx: ctx)
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline("bad", [noop, FunctionStage("noop", lambda ctx: ctx)])


class TestRegistry:
    def test_builtin_pipelines_in_paper_order(self):
        assert pipeline_names()[:4] == ["bds-maj", "bds-pga", "abc", "dc"]

    def test_unknown_pipeline_raises(self):
        with pytest.raises(PipelineError, match="unknown pipeline"):
            get_pipeline("bds-2025")

    def test_custom_flow_is_a_one_liner(self):
        S = standard_stages
        name = "bds-maj-nosift-test"
        pipeline = register_pipeline(
            Pipeline(
                name,
                [
                    S.LoadInput(),
                    S.BuildBdds(),
                    S.Decompose(),
                    S.RewriteTrees(),
                    S.MapNetwork(),
                    S.VerifyEquivalence(),
                ],
                default_config=lambda: BdsFlowConfig(reorder=False, verify=False),
            )
        )
        assert get_pipeline(name) is pipeline
        result = pipeline.run(build_benchmark("alu2"))
        assert result.flow == name
        assert result.total_nodes > 0

    def test_duplicate_registration_needs_replace(self):
        registry = PipelineRegistry()
        noop = FunctionStage("noop", lambda ctx: ctx)
        pipeline = Pipeline("p", [noop])
        registry.register(pipeline)
        with pytest.raises(PipelineError, match="already registered"):
            registry.register(Pipeline("p", [noop]))
        replacement = Pipeline("p", [noop])
        assert registry.register(replacement, replace=True) is replacement
        assert registry.get("p") is replacement
        assert "p" in registry and len(registry) == 1
