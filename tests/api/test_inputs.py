"""Tests for the pluggable input-source layer (`repro.api.inputs`)."""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    BlifFileSource,
    BlifGlobSource,
    InputItem,
    InputSourceError,
    RegistrySource,
    resolve_source,
)
from repro.benchgen import BENCHMARKS, build_benchmark
from repro.benchgen.registry import benchmark_keys
from repro.network import to_blif


def _write_blifs(directory, keys):
    paths = []
    for key in keys:
        path = directory / f"{key}.blif"
        path.write_text(to_blif(build_benchmark(key)))
        paths.append(path)
    return paths


class TestRegistrySource:
    def test_default_is_whole_registry_in_table_order(self):
        items = RegistrySource().items()
        assert [item.name for item in items] == list(BENCHMARKS)
        assert all(item.kind == "registry" for item in items)

    def test_category_filter(self):
        items = RegistrySource(category="hdl").items()
        assert [item.name for item in items] == benchmark_keys("hdl")

    def test_explicit_keys_preserved_in_order(self):
        items = RegistrySource(["f51m", "alu2"]).items()
        assert [item.name for item in items] == ["f51m", "alu2"]

    def test_unknown_key_fails_eagerly(self):
        with pytest.raises(InputSourceError, match="nope"):
            RegistrySource(["alu2", "nope"])

    def test_items_load(self):
        (item,) = RegistrySource(["alu2"]).items()
        network = item.load()
        assert network.name == "alu2"


class TestBlifFileSource:
    def test_single_file(self, tmp_path):
        (path,) = _write_blifs(tmp_path, ["alu2"])
        (item,) = BlifFileSource(str(path)).items()
        assert item.name == "alu2"
        assert item.kind == "blif"
        assert item.load().name == "alu2"

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(InputSourceError, match="no such BLIF file"):
            BlifFileSource(str(tmp_path / "ghost.blif"))


class TestBlifGlobSource:
    def test_sorted_order_regardless_of_creation_order(self, tmp_path):
        # Create out of lexicographic order on purpose.
        _write_blifs(tmp_path, ["vda", "alu2", "f51m"])
        items = BlifGlobSource(str(tmp_path / "*.blif")).items()
        assert [item.name for item in items] == ["alu2", "f51m", "vda"]

    def test_deterministic_across_instances(self, tmp_path):
        _write_blifs(tmp_path, ["f51m", "alu2"])
        pattern = str(tmp_path / "*.blif")
        first = BlifGlobSource(pattern).items()
        second = BlifGlobSource(pattern).items()
        assert first == second

    def test_empty_glob_is_an_error(self, tmp_path):
        with pytest.raises(InputSourceError, match="matched no BLIF files"):
            BlifGlobSource(str(tmp_path / "*.blif"))

    def test_items_load_parsed_networks(self, tmp_path):
        _write_blifs(tmp_path, ["alu2"])
        (item,) = BlifGlobSource(str(tmp_path / "*.blif")).items()
        network = item.load()
        assert set(network.outputs) == set(build_benchmark("alu2").outputs)


class TestResolveSource:
    def test_registry_key_wins(self):
        source = resolve_source("alu2")
        assert isinstance(source, RegistrySource)

    def test_path_becomes_file_source(self, tmp_path):
        (path,) = _write_blifs(tmp_path, ["alu2"])
        assert isinstance(resolve_source(str(path)), BlifFileSource)

    def test_glob_becomes_glob_source(self, tmp_path):
        _write_blifs(tmp_path, ["alu2", "f51m"])
        source = resolve_source(str(tmp_path / "*.blif"))
        assert isinstance(source, BlifGlobSource)
        assert len(source.items()) == 2

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(InputSourceError):
            resolve_source(str(tmp_path / "missing.blif"))


class TestInputItem:
    def test_picklable_for_worker_pools(self, tmp_path):
        (path,) = _write_blifs(tmp_path, ["alu2"])
        for item in (
            InputItem(name="alu2", kind="registry"),
            InputItem(name="alu2", kind="blif", path=str(path)),
        ):
            clone = pickle.loads(pickle.dumps(item))
            assert clone == item
            assert clone.load().name == "alu2"

    def test_origin(self, tmp_path):
        assert InputItem(name="alu2").origin == "alu2"
        item = InputItem(name="x", kind="blif", path="/some/x.blif")
        assert item.origin == "/some/x.blif"

    def test_unknown_kind_rejected_on_load(self):
        with pytest.raises(InputSourceError):
            InputItem(name="x", kind="weird").load()
