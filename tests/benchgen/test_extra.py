"""Functional verification of the extra circuit generators."""

from __future__ import annotations

import random

import pytest

from repro.benchgen.extra import (
    barrel_shifter,
    booth_multiplier,
    comparator,
    kogge_stone_adder,
    parity_tree,
)

from .test_arithmetic import drive, unpack_bus, unpack_scalar

RNG = random.Random(0xA5)
COUNT = 40


class TestKoggeStone:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_addition(self, width):
        net = kogge_stone_adder(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        cin = [RNG.getrandbits(1) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width), "cin": (cin, 0)}, COUNT)
        sums = unpack_bus(values, "sum", width, COUNT)
        couts = unpack_scalar(values, "cout", COUNT)
        for i in range(COUNT):
            total = a[i] + b[i] + cin[i]
            assert sums[i] == total % (1 << width)
            assert couts[i] == total >> width

    def test_log_depth(self):
        # Parallel prefix: depth grows logarithmically, not linearly.
        assert kogge_stone_adder(32).depth() < 20


class TestBooth:
    @pytest.mark.parametrize("width", [4, 8])
    def test_multiplication(self, width):
        net = booth_multiplier(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        products = unpack_bus(values, "prod", 2 * width, COUNT)
        for i in range(COUNT):
            assert products[i] == a[i] * b[i], (a[i], b[i])

    def test_exhaustive_4bit(self):
        net = booth_multiplier(4)
        for a in range(16):
            for b in range(16):
                values = drive(net, {"a": ([a], 4), "b": ([b], 4)}, 1)
                assert unpack_bus(values, "prod", 8, 1)[0] == a * b


class TestBarrel:
    @pytest.mark.parametrize("width", [8, 16])
    def test_shift(self, width):
        net = barrel_shifter(width)
        select_bits = (width - 1).bit_length()
        data = [RNG.getrandbits(width) for _ in range(COUNT)]
        amount = [RNG.randrange(width) for _ in range(COUNT)]
        values = drive(
            net, {"d": (data, width), "s": (amount, select_bits)}, COUNT
        )
        outputs = unpack_bus(values, "q", width, COUNT)
        for i in range(COUNT):
            expected = (data[i] << amount[i]) & ((1 << width) - 1)
            assert outputs[i] == expected

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            barrel_shifter(12)


class TestComparator:
    def test_random(self):
        width = 12
        net = comparator(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        lt = unpack_scalar(values, "lt", COUNT)
        eq = unpack_scalar(values, "eq", COUNT)
        gt = unpack_scalar(values, "gt", COUNT)
        for i in range(COUNT):
            assert lt[i] == int(a[i] < b[i])
            assert eq[i] == int(a[i] == b[i])
            assert gt[i] == int(a[i] > b[i])

    def test_exactly_one_flag(self):
        net = comparator(6)
        for _ in range(30):
            a, b = RNG.getrandbits(6), RNG.getrandbits(6)
            values = drive(net, {"a": ([a], 6), "b": ([b], 6)}, 1)
            assert values["lt"] + values["eq"] + values["gt"] == 1


class TestParity:
    @pytest.mark.parametrize("width", [3, 16, 32])
    def test_parity(self, width):
        net = parity_tree(width)
        xs = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"x": (xs, width)}, COUNT)
        result = unpack_scalar(values, "p", COUNT)
        for i in range(COUNT):
            assert result[i] == bin(xs[i]).count("1") % 2


class TestThroughFlows:
    """The extra circuits must synthesize and verify through BDS-MAJ."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: kogge_stone_adder(8),
            lambda: booth_multiplier(4),
            lambda: barrel_shifter(8),
            lambda: comparator(8),
            lambda: parity_tree(16),
        ],
    )
    def test_bdsmaj_flow(self, factory):
        from repro.flows import bdsmaj_flow

        net = factory()
        result = bdsmaj_flow(net)
        assert result.equivalence is not None and result.equivalence.equivalent
