"""Tests for the MCNC stand-ins, random generators and the registry."""

from __future__ import annotations

import random

import pytest

from repro.benchgen import (
    BENCHMARKS,
    benchmark_keys,
    build_benchmark,
    get_benchmark,
    hamming_corrector,
    key_mixing_network,
    random_control_network,
    random_pla_network,
)
from repro.benchgen.mcnc import alu2, dalu


class TestAlu2:
    @pytest.fixture(scope="class")
    def net(self):
        return alu2()

    def test_interface(self, net):
        assert len(net.inputs) == 10
        assert len(net.outputs) == 6

    def _run(self, net, a, b, cin, op):
        stimulus = {}
        for i in range(3):
            stimulus[f"a{i}"] = a >> i & 1
            stimulus[f"b{i}"] = b >> i & 1
            stimulus[f"op{i}"] = op >> i & 1
        stimulus["cin"] = cin
        values = net.simulate(stimulus, 1)
        result = sum(values[f"r{i}"] << i for i in range(3))
        return result, values["cout"], values["zero"], values["ovf"]

    def test_add_operation(self, net):
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    result, cout, zero, _ = self._run(net, a, b, cin, op=0)
                    total = a + b + cin
                    assert result == total % 8
                    assert cout == total >> 3
                    assert zero == int(total % 8 == 0)

    def test_sub_operation(self, net):
        # op=1: a - b - 1 + cin  (two's complement with cin as borrow-not)
        for a in range(8):
            for b in range(8):
                result, _, _, _ = self._run(net, a, b, cin=1, op=1)
                assert result == (a - b) % 8

    def test_logic_operations(self, net):
        for a in range(8):
            for b in range(8):
                assert self._run(net, a, b, 0, op=2)[0] == a & b
                assert self._run(net, a, b, 0, op=3)[0] == a | b
                assert self._run(net, a, b, 0, op=4)[0] == a ^ b
                assert self._run(net, a, b, 0, op=5)[0] == (a ^ b) ^ 7
                assert self._run(net, a, b, 0, op=6)[0] == a ^ 7  # NOT a
                assert self._run(net, a, b, 0, op=7)[0] == b  # PASS b

    def test_overflow_flag(self, net):
        # 3 + 3 = 6 overflows 3-bit signed range [-4, 3].
        _, _, _, ovf = self._run(net, 3, 3, 0, op=0)
        assert ovf == 1
        _, _, _, ovf = self._run(net, 1, 1, 0, op=0)
        assert ovf == 0


class TestDalu:
    def test_interface(self):
        net = dalu()
        assert len(net.inputs) == 75
        assert len(net.outputs) == 16

    def test_add_operation(self):
        net = dalu()
        rng = random.Random(11)
        for _ in range(8):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            stimulus = {name: 0 for name in net.inputs}
            for i in range(16):
                stimulus[f"a{i}"] = a >> i & 1
                stimulus[f"b{i}"] = b >> i & 1
            values = net.simulate(stimulus, 1)
            result = sum(values[f"y{i}"] << i for i in range(16))
            assert result == (a + b) % (1 << 16)


class TestHammingCorrector:
    @pytest.fixture(scope="class")
    def net(self):
        return hamming_corrector()

    def test_interface(self, net):
        assert len(net.inputs) == 41  # matches C1355
        assert len(net.outputs) == 32

    @staticmethod
    def _encode(data: int) -> tuple[int, int]:
        """Compute check bits and overall parity for 32-bit ``data``."""
        from repro.benchgen.ecc import _code_positions

        positions = _code_positions()
        checks = 0
        for j in range(6):
            parity = 0
            for i, position in enumerate(positions):
                if position >> j & 1:
                    parity ^= data >> i & 1
            checks |= parity << j
        overall = bin(data).count("1") ^ bin(checks).count("1")
        return checks, overall & 1

    def _run(self, net, data: int, checks: int, parity: int) -> int:
        stimulus = {f"d{i}": data >> i & 1 for i in range(32)}
        stimulus.update({f"c{j}": checks >> j & 1 for j in range(6)})
        stimulus.update({"p": parity, "en_a": 1, "en_b": 1})
        values = net.simulate(stimulus, 1)
        return sum(values[f"o{i}"] << i for i in range(32))

    def test_clean_word_passes_through(self, net):
        rng = random.Random(13)
        for _ in range(10):
            data = rng.getrandbits(32)
            checks, parity = self._encode(data)
            assert self._run(net, data, checks, parity) == data

    def test_single_data_error_corrected(self, net):
        rng = random.Random(17)
        for _ in range(10):
            data = rng.getrandbits(32)
            checks, parity = self._encode(data)
            flipped_bit = rng.randrange(32)
            corrupted = data ^ (1 << flipped_bit)
            # The stored parity is unchanged; the recomputed overall
            # parity then mismatches, enabling correction.
            assert self._run(net, corrupted, checks, parity) == data

    def test_double_error_not_miscorrected(self, net):
        data = 0x12345678
        checks, parity = self._encode(data)
        corrupted = data ^ 0b11  # two errors: parity unchanged
        # SEC-DED: with overall parity matching, correction is disabled.
        result = self._run(net, corrupted, checks, parity)
        assert result == corrupted  # passed through, not miscorrected

    def test_enables_gate_correction(self, net):
        data = 0xDEADBEEF
        checks, parity = self._encode(data)
        corrupted = data ^ 1
        stimulus = {f"d{i}": corrupted >> i & 1 for i in range(32)}
        stimulus.update({f"c{j}": checks >> j & 1 for j in range(6)})
        stimulus.update({"p": parity, "en_a": 1, "en_b": 0})
        values = net.simulate(stimulus, 1)
        result = sum(values[f"o{i}"] << i for i in range(32))
        assert result == corrupted  # correction disabled


class TestRandomGenerators:
    def test_control_network_deterministic(self):
        first = random_control_network("t", 16, 8, 60, seed=5)
        second = random_control_network("t", 16, 8, 60, seed=5)
        assert first.node_names == second.node_names
        other = random_control_network("t", 16, 8, 60, seed=6)
        assert first.node_names != other.node_names or any(
            first.node(n).cover != other.node(n).cover for n in first.node_names
        )

    def test_control_network_interface(self):
        net = random_control_network("t", 20, 10, 80, seed=1)
        assert len(net.inputs) == 20
        assert len(net.outputs) == 10
        net.validate()

    def test_pla_network_valid(self):
        net = random_pla_network("t", 12, 6, 40, seed=3)
        net.validate()
        assert len(net.outputs) == 6

    def test_key_mixing_valid(self):
        net = key_mixing_network("t", data_bits=16, key_bits=16, rounds=2, seed=9)
        net.validate()
        assert len(net.inputs) == 32
        assert len(net.outputs) == 16


class TestRegistry:
    def test_all_seventeen_present(self):
        assert len(BENCHMARKS) == 17
        assert len(benchmark_keys("mcnc")) == 10
        assert len(benchmark_keys("hdl")) == 7

    def test_displays_match_paper_labels(self):
        displays = {b.display for b in BENCHMARKS.values()}
        assert {"alu2", "C6288", "C1355", "Wallace 16 bit", "CLA 64 bit"} <= displays

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_every_benchmark_builds_and_validates(self, key):
        net = build_benchmark(key)
        net.validate()
        assert net.num_nodes > 0
        assert net.outputs
