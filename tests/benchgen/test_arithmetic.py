"""Functional verification of the arithmetic benchmark generators.

Every circuit is simulated against Python integer arithmetic on random
operands (bit-parallel, many vectors per pass).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.benchgen import (
    array_multiplier,
    carry_lookahead_adder,
    four_operand_adder,
    multiply_accumulate,
    reciprocal,
    restoring_divider,
    ripple_carry_adder,
    square_root,
    wallace_multiplier,
)
from repro.network import LogicNetwork


def pack_operands(values: list[int], prefix: str, width: int) -> dict[str, int]:
    """Pack per-vector operand values into bit-parallel stimulus."""
    stimulus = {}
    for bit in range(width):
        packed = 0
        for position, value in enumerate(values):
            if value >> bit & 1:
                packed |= 1 << position
        stimulus[f"{prefix}{bit}"] = packed
    return stimulus


def unpack_bus(values: dict[str, int], prefix: str, width: int, count: int) -> list[int]:
    """Reassemble per-vector integers from packed output bits."""
    results = [0] * count
    for bit in range(width):
        packed = values.get(f"{prefix}{bit}", 0)
        for position in range(count):
            if packed >> position & 1:
                results[position] |= 1 << bit
    return results


def pack_scalar(values: list[int], name: str) -> dict[str, int]:
    packed = 0
    for position, value in enumerate(values):
        if value & 1:
            packed |= 1 << position
    return {name: packed}


def unpack_scalar(values: dict[str, int], name: str, count: int) -> list[int]:
    packed = values[name]
    return [packed >> position & 1 for position in range(count)]


def drive(net: LogicNetwork, operands: dict[str, tuple[list[int], int]], count: int) -> dict[str, int]:
    stimulus: dict[str, int] = {}
    for prefix, (values, width) in operands.items():
        if width == 0:
            stimulus.update(pack_scalar(values, prefix))
        else:
            stimulus.update(pack_operands(values, prefix, width))
    return net.simulate(stimulus, count)


COUNT = 48
RNG = random.Random(20130529)  # DAC'13 publication date


class TestAdders:
    def test_ripple_carry(self):
        width = 12
        net = ripple_carry_adder(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        sums = unpack_bus(values, "sum", width, COUNT)
        couts = unpack_scalar(values, "cout", COUNT)
        for i in range(COUNT):
            total = a[i] + b[i]
            assert sums[i] == total % (1 << width)
            assert couts[i] == total >> width

    @pytest.mark.parametrize("width", [4, 16, 64])
    def test_carry_lookahead(self, width):
        net = carry_lookahead_adder(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        cin = [RNG.getrandbits(1) for _ in range(COUNT)]
        values = drive(
            net, {"a": (a, width), "b": (b, width), "cin": (cin, 0)}, COUNT
        )
        sums = unpack_bus(values, "sum", width, COUNT)
        couts = unpack_scalar(values, "cout", COUNT)
        for i in range(COUNT):
            total = a[i] + b[i] + cin[i]
            assert sums[i] == total % (1 << width)
            assert couts[i] == total >> width

    def test_cla_rejects_bad_width(self):
        with pytest.raises(ValueError):
            carry_lookahead_adder(24)

    def test_cla_exhaustive_small(self):
        net = carry_lookahead_adder(4)
        for a in range(16):
            for b in range(16):
                for cin in (0, 1):
                    values = drive(
                        net, {"a": ([a], 4), "b": ([b], 4), "cin": ([cin], 0)}, 1
                    )
                    total = a + b + cin
                    assert unpack_bus(values, "sum", 4, 1)[0] == total % 16
                    assert unpack_scalar(values, "cout", 1)[0] == total >> 4

    def test_four_operand(self):
        width = 16
        net = four_operand_adder(width)
        operands = {
            prefix: ([RNG.getrandbits(width) for _ in range(COUNT)], width)
            for prefix in ("a", "b", "c", "d")
        }
        values = drive(net, operands, COUNT)
        sums = unpack_bus(values, "sum", width + 2, COUNT)
        for i in range(COUNT):
            expected = sum(operands[p][0][i] for p in ("a", "b", "c", "d"))
            assert sums[i] == expected


class TestMultipliers:
    @pytest.mark.parametrize("width,builder", [(4, array_multiplier), (8, array_multiplier), (16, array_multiplier)])
    def test_array_multiplier(self, width, builder):
        net = builder(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        products = unpack_bus(values, "prod", 2 * width, COUNT)
        for i in range(COUNT):
            assert products[i] == a[i] * b[i]

    def test_array_multiplier_exhaustive_4bit(self):
        net = array_multiplier(4)
        for a in range(16):
            for b in range(16):
                values = drive(net, {"a": ([a], 4), "b": ([b], 4)}, 1)
                assert unpack_bus(values, "prod", 8, 1)[0] == a * b

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_wallace_multiplier(self, width):
        net = wallace_multiplier(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        products = unpack_bus(values, "prod", 2 * width, COUNT)
        for i in range(COUNT):
            assert products[i] == a[i] * b[i]

    def test_wallace_shallower_than_array(self):
        assert wallace_multiplier(16).depth() < array_multiplier(16).depth()

    def test_mac(self):
        width = 16
        net = multiply_accumulate(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.getrandbits(width) for _ in range(COUNT)]
        acc = [RNG.getrandbits(2 * width) for _ in range(COUNT)]
        values = drive(
            net, {"a": (a, width), "b": (b, width), "acc": (acc, 2 * width)}, COUNT
        )
        results = unpack_bus(values, "mac", 2 * width + 1, COUNT)
        for i in range(COUNT):
            assert results[i] == a[i] * b[i] + acc[i]


class TestDividers:
    def test_restoring_divider(self):
        width = 18
        net = restoring_divider(width)
        a = [RNG.getrandbits(width) for _ in range(COUNT)]
        b = [RNG.randint(1, (1 << width) - 1) for _ in range(COUNT)]
        values = drive(net, {"a": (a, width), "b": (b, width)}, COUNT)
        quotients = unpack_bus(values, "q", width, COUNT)
        remainders = unpack_bus(values, "r", width, COUNT)
        for i in range(COUNT):
            assert quotients[i] == a[i] // b[i], f"{a[i]} / {b[i]}"
            assert remainders[i] == a[i] % b[i]

    def test_divider_exhaustive_small(self):
        net = restoring_divider(4)
        for a in range(16):
            for b in range(1, 16):
                values = drive(net, {"a": ([a], 4), "b": ([b], 4)}, 1)
                assert unpack_bus(values, "q", 4, 1)[0] == a // b
                assert unpack_bus(values, "r", 4, 1)[0] == a % b

    def test_reciprocal(self):
        width = 19
        net = reciprocal(width)
        xs = [RNG.randint(1, (1 << width) - 1) for _ in range(COUNT)]
        values = drive(net, {"x": (xs, width)}, COUNT)
        results = unpack_bus(values, "q", width, COUNT)
        for i in range(COUNT):
            assert results[i] == (1 << (width - 1)) // xs[i]

    def test_reciprocal_identity_edge(self):
        width = 19
        net = reciprocal(width)
        values = drive(net, {"x": ([1], width)}, 1)
        assert unpack_bus(values, "q", width, 1)[0] == 1 << (width - 1)


class TestSquareRoot:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_square_root_random(self, width):
        net = square_root(width)
        ns = [RNG.getrandbits(width) for _ in range(COUNT)]
        values = drive(net, {"n": (ns, width)}, COUNT)
        roots = unpack_bus(values, "root", width // 2, COUNT)
        for i in range(COUNT):
            assert roots[i] == math.isqrt(ns[i]), ns[i]

    def test_square_root_exhaustive_8bit(self):
        net = square_root(8)
        for n in range(256):
            values = drive(net, {"n": ([n], 8)}, 1)
            assert unpack_bus(values, "root", 4, 1)[0] == math.isqrt(n)

    def test_square_root_rejects_odd_width(self):
        with pytest.raises(ValueError):
            square_root(7)

    def test_perfect_squares(self):
        net = square_root(16)
        for root in (0, 1, 7, 100, 255):
            values = drive(net, {"n": ([root * root], 16)}, 1)
            assert unpack_bus(values, "root", 8, 1)[0] == root
