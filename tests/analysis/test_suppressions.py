"""Suppression semantics: justified disables silence, bare ones don't."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

FLAGGED = "key = hash(name)  {comment}\n"
MODULE = "repro.flows.batch"


def test_justified_disable_suppresses_and_keeps_inventory():
    source = FLAGGED.format(
        comment="# bdslint: disable=DET002 -- key feeds a debug log, never a report"
    )
    result = analyze_source(source, module=MODULE)
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET002"]
    assert result.suppressed[0].justification == (
        "key feeds a debug log, never a report"
    )
    assert result.clean


def test_unjustified_disable_is_rejected_and_ignored():
    source = FLAGGED.format(comment="# bdslint: disable=DET002")
    result = analyze_source(source, module=MODULE)
    fired = sorted(f.rule for f in result.findings)
    # Both the hidden violation AND the bad suppression are reported.
    assert fired == ["DET002", "SUP001"]
    assert result.suppressed == []
    assert not result.clean


def test_empty_justification_is_rejected():
    source = FLAGGED.format(comment="# bdslint: disable=DET002 -- ")
    result = analyze_source(source, module=MODULE)
    assert "SUP001" in [f.rule for f in result.findings]


def test_disable_covers_only_named_rules_on_its_own_line():
    source = textwrap.dedent(
        """
        key = hash(name)  # bdslint: disable=DET001 -- wrong rule named
        other = hash(name)
        """
    )
    result = analyze_source(source, module=MODULE)
    assert [f.rule for f in result.findings] == ["DET002", "DET002"]


def test_disable_lists_multiple_rules():
    source = (
        "for item in {hash(x)}:  "
        "# bdslint: disable=DET001,DET002 -- fixture exercising both rules\n"
        "    print(item)\n"
    )
    result = analyze_source(source, module=MODULE)
    assert result.findings == []
    assert sorted(f.rule for f in result.suppressed) == ["DET001", "DET002"]


def test_sup001_itself_cannot_be_suppressed():
    source = "key = hash(name)  # bdslint: disable=DET002,SUP001\n"
    result = analyze_source(source, module=MODULE)
    assert "SUP001" in [f.rule for f in result.findings]
