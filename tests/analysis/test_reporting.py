"""Reporter contract: JSON schema, text rendering, exit codes, CLI."""

from __future__ import annotations

import json

from repro.analysis import analyze_source, render_json, render_text
from repro.analysis.cli import run
from repro.analysis.report import JSON_SCHEMA, exit_code

DIRTY = "key = hash(name)\nstamp = __import__\nfor x in {1, 2}:\n    print(x)\n"
MODULE = "repro.flows.batch"


def dirty_result():
    return analyze_source(DIRTY, module=MODULE, path="src/repro/flows/fx.py")


def test_json_schema_shape():
    payload = json.loads(render_json(dirty_result()))
    assert payload["schema"] == JSON_SCHEMA == "bdslint-report/v1"
    assert set(payload) == {"schema", "findings", "suppressed", "summary"}
    summary = payload["summary"]
    assert summary["files"] == 1
    assert summary["findings"] == len(payload["findings"]) == 2
    assert summary["by_rule"] == {"DET001": 1, "DET002": 1}
    assert summary["by_severity"] == {"error": 2}
    for entry in payload["findings"]:
        assert set(entry) == {
            "rule",
            "name",
            "severity",
            "path",
            "line",
            "col",
            "module",
            "message",
        }


def test_json_suppressed_entries_carry_justification():
    source = "key = hash(name)  # bdslint: disable=DET002 -- fixture\n"
    result = analyze_source(source, module=MODULE)
    payload = json.loads(render_json(result))
    assert payload["findings"] == []
    (entry,) = payload["suppressed"]
    assert entry["justification"] == "fixture"


def test_findings_sorted_by_location():
    result = dirty_result()
    keys = [f.sort_key() for f in result.findings]
    assert keys == sorted(keys)


def test_text_report_lines_and_summary():
    text = render_text(dirty_result())
    lines = text.splitlines()
    assert lines[0].startswith("src/repro/flows/fx.py:1:")
    assert "DET002" in lines[0]
    assert lines[-1] == "bdslint: 1 file(s) checked, 2 error(s)"


def test_exit_codes():
    assert exit_code(dirty_result()) == 1
    clean = analyze_source("x = 1\n", module=MODULE)
    assert exit_code(clean) == 0


def test_cli_runs_over_tree(tmp_path, capsys):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "__init__.py").write_text("")
    (package / "mod.py").write_text("value = 1\n")
    assert run([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "no unsuppressed findings" in out


def test_cli_json_and_select(tmp_path, capsys):
    target = tmp_path / "repro_like.py"
    target.write_text("import time\nasync def f():\n    time.sleep(1)\n")
    # Out of scope for every rule pack (module not under repro.*): clean.
    assert run([str(target), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA
    # Unknown selector is a usage error, not a crash.
    assert run([str(target), "--select", "NOPE"]) == 2


def test_cli_reports_findings_from_scoped_tree(tmp_path, capsys):
    # Recreate a repro.flows module on disk so module-name derivation
    # (walking __init__.py markers) puts it in DET scope.
    root = tmp_path / "repro" / "flows"
    root.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (root / "__init__.py").write_text("")
    (root / "emit.py").write_text("key = hash(name)\n")
    assert run([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out
