"""Fixture-snippet coverage: every rule's positive and negative cases.

Each test feeds a small source snippet to :func:`analyze_source` under
a module name inside (or outside) the rule's scope and asserts exactly
which findings fire.  These snippets are the rule pack's executable
specification.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import REGISTRY, analyze_source


def rules_fired(source, module="repro.flows.batch"):
    result = analyze_source(textwrap.dedent(source), module=module)
    return [f.rule for f in result.findings]


def test_registry_ships_at_least_ten_rules():
    assert len(REGISTRY.rules()) >= 10


def test_every_rule_has_rationale_and_valid_severity():
    for rule in REGISTRY.rules():
        assert rule.rationale, rule.id
        assert rule.severity in ("error", "warning", "info"), rule.id


# ---------------------------------------------------------------------------
# DET001 — unsorted set iteration
# ---------------------------------------------------------------------------

DET001_POSITIVE = [
    "for item in {1, 2, 3}:\n    print(item)\n",
    "rows = [x for x in set(data)]\n",
    "names = list({'a', 'b'} | extra_set())\n",
    "line = ','.join({'a', 'b'})\n",
    """
    def emit(data):
        pending = set(data)
        for item in pending:
            print(item)
    """,
    """
    def emit(data):
        pending: set[str] = set()
        pending.update(data)
        rows = tuple(pending)
        return rows
    """,
]


@pytest.mark.parametrize("source", DET001_POSITIVE)
def test_det001_flags_order_sensitive_set_iteration(source):
    assert "DET001" in rules_fired(source)


DET001_NEGATIVE = [
    "for item in sorted({1, 2, 3}):\n    print(item)\n",
    "total = sum({1, 2, 3})\n",
    "count = len(set(data))\n",
    "if x in {1, 2, 3}:\n    pass\n",
    "union = set(a) | set(b)\n",
    "for item in [1, 2, 3]:\n    print(item)\n",
    """
    def emit(data):
        pending = set(data)
        pending = list(data)  # rebound to a non-set: inference drops it
        for item in pending:
            print(item)
    """,
]


@pytest.mark.parametrize("source", DET001_NEGATIVE)
def test_det001_allows_order_insensitive_consumption(source):
    assert "DET001" not in rules_fired(source)


def test_det001_scoped_to_report_affecting_modules():
    source = "for item in {1, 2}:\n    print(item)\n"
    assert "DET001" in rules_fired(source, module="repro.serve.wire")
    assert "DET001" in rules_fired(source, module="repro.network.partition")
    assert "DET001" not in rules_fired(source, module="repro.serve.server")
    assert "DET001" not in rules_fired(source, module="repro.experiments.cli")


# ---------------------------------------------------------------------------
# DET002 — builtin hash()
# ---------------------------------------------------------------------------


def test_det002_flags_builtin_hash():
    assert "DET002" in rules_fired("key = hash(name)\n")


def test_det002_allows_hashlib_and_rebound_hash():
    assert "DET002" not in rules_fired(
        "import hashlib\nkey = hashlib.sha256(blob).hexdigest()\n"
    )
    assert "DET002" not in rules_fired(
        "from zlib import crc32 as hash\nkey = hash(blob)\n"
    )
    assert "DET002" not in rules_fired("key = obj.hash(name)\n")


# ---------------------------------------------------------------------------
# DET003 — wall-clock reads
# ---------------------------------------------------------------------------


def test_det003_flags_wall_clock_reads():
    assert "DET003" in rules_fired("import time\nstamp = time.time()\n")
    assert "DET003" in rules_fired(
        "from datetime import datetime\nstamp = datetime.now()\n"
    )
    assert "DET003" in rules_fired(
        "import time as clock\nstamp = clock.time_ns()\n"
    )


def test_det003_allows_monotonic_timers():
    assert "DET003" not in rules_fired(
        "import time\nelapsed = time.perf_counter()\n"
    )
    assert "DET003" not in rules_fired("import time\nt = time.monotonic()\n")


# ---------------------------------------------------------------------------
# ASY001/ASY002/ASY003 — blocking calls in async def
# ---------------------------------------------------------------------------


def test_asy001_flags_time_sleep_in_async_def():
    source = """
    import time
    async def handler():
        time.sleep(1)
    """
    assert "ASY001" in rules_fired(source, module="repro.serve.server")


def test_asy001_ignores_sync_and_out_of_scope():
    sync = "import time\ndef worker():\n    time.sleep(1)\n"
    assert "ASY001" not in rules_fired(sync, module="repro.serve.server")
    in_async = """
    import time
    async def handler():
        time.sleep(1)
    """
    assert "ASY001" not in rules_fired(in_async, module="repro.flows.batch")


def test_asy001_sync_def_nested_in_async_is_executor_material():
    source = """
    import time
    async def handler(loop):
        def blocking():
            time.sleep(1)
        await loop.run_in_executor(None, blocking)
    """
    assert "ASY001" not in rules_fired(source, module="repro.serve.server")


def test_asy002_flags_open_and_fsync_in_async_def():
    source = """
    import os
    async def handler(path, fd):
        with open(path) as fh:
            data = fh.read()
        os.fsync(fd)
    """
    fired = rules_fired(source, module="repro.serve.server")
    assert fired.count("ASY002") == 2


def test_asy002_allows_sync_open():
    source = "def loader(path):\n    return open(path).read()\n"
    assert "ASY002" not in rules_fired(source, module="repro.serve.cache")


def test_asy003_flags_subprocess_in_async_def():
    source = """
    import subprocess
    async def handler():
        subprocess.run(["ls"])
    """
    assert "ASY003" in rules_fired(source, module="repro.serve.shard")


def test_asy003_allows_asyncio_subprocess():
    source = """
    import asyncio
    async def handler():
        proc = await asyncio.create_subprocess_exec("ls")
        await proc.wait()
    """
    assert "ASY003" not in rules_fired(source, module="repro.serve.shard")


# ---------------------------------------------------------------------------
# ASY004 — blocking pool/executor teardown in async def
# ---------------------------------------------------------------------------


def test_asy004_flags_join_terminate_and_shutdown_wait():
    source = """
    async def teardown(pool, executor):
        pool.terminate()
        pool.join()
        executor.shutdown(wait=True)
    """
    fired = rules_fired(source, module="repro.serve.queue")
    assert fired.count("ASY004") == 3


def test_asy004_allows_awaited_and_str_join():
    source = """
    async def teardown(process, parts):
        await process.wait()
        label = ",".join(parts)
        executor.shutdown(wait=False)
    """
    assert "ASY004" not in rules_fired(source, module="repro.serve.queue")


# ---------------------------------------------------------------------------
# RES001 — SharedMemory attach outside the arena
# ---------------------------------------------------------------------------


def test_res001_flags_raw_attach_everywhere_but_arena():
    source = """
    from multiprocessing import shared_memory
    block = shared_memory.SharedMemory(name="bdsmaj-arena")
    """
    assert "RES001" in rules_fired(source, module="repro.serve.server")
    assert "RES001" in rules_fired(source, module="repro.flows.batch")
    assert "RES001" not in rules_fired(source, module="repro.bdd.arena")


def test_res001_allows_owning_create():
    source = """
    from multiprocessing.shared_memory import SharedMemory
    block = SharedMemory(name="bdsmaj-arena", create=True, size=1024)
    """
    assert "RES001" not in rules_fired(source, module="repro.serve.server")


# ---------------------------------------------------------------------------
# RES002 — journal write without fsync
# ---------------------------------------------------------------------------


def test_res002_flags_write_without_fsync_in_journal():
    source = """
    def append(handle, line):
        handle.write(line)
        handle.flush()
    """
    assert "RES002" in rules_fired(source, module="repro.serve.journal")


def test_res002_allows_fsynced_writes_and_other_modules():
    durable = """
    import os
    def append(handle, line):
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    """
    assert "RES002" not in rules_fired(durable, module="repro.serve.journal")
    volatile = "def append(handle, line):\n    handle.write(line)\n"
    assert "RES002" not in rules_fired(volatile, module="repro.serve.wire")


# ---------------------------------------------------------------------------
# RES003 — unguarded pool acquisition
# ---------------------------------------------------------------------------


def test_res003_flags_bare_pool_construction():
    source = """
    import multiprocessing
    def run():
        pool = multiprocessing.get_context("spawn").Pool(4)
        pool.map(work, items)
        pool.close()
    """
    assert "RES003" in rules_fired(source)


def test_res003_allows_with_try_and_acquire_then_try():
    guarded = """
    import multiprocessing
    def run():
        with multiprocessing.get_context("spawn").Pool(4) as pool:
            pool.map(work, items)
    """
    assert "RES003" not in rules_fired(guarded)
    acquire_then_try = """
    def run(pool_manager):
        pool = pool_manager.acquire(4)
        try:
            pool.map(work, items)
        finally:
            pool_manager.release(pool)
    """
    assert "RES003" not in rules_fired(acquire_then_try)
    lock_acquire = "def run(lock):\n    lock.acquire()\n    lock.release()\n"
    assert "RES003" not in rules_fired(lock_acquire)


# ---------------------------------------------------------------------------
# RES004 — awaited stream read without a wait_for bound
# ---------------------------------------------------------------------------

RES004_POSITIVE = [
    """
    async def handle(reader):
        line = await reader.readline()
        return line
    """,
    """
    async def slurp(reader, length):
        return await reader.readexactly(length)
    """,
    """
    async def drain(process):
        while await process.stderr.readline():
            pass
    """,
    """
    async def body(reader):
        data = await reader.read(1024)
        return data
    """,
]

RES004_NEGATIVE = [
    # wait_for-wrapped reads are bounded.
    """
    import asyncio
    async def handle(reader, timeout):
        line = await asyncio.wait_for(reader.readline(), timeout)
        return line
    """,
    """
    import asyncio
    async def slurp(reader, length):
        return await asyncio.wait_for(reader.readexactly(length), 60.0)
    """,
    # Synchronous file reads never await anything.
    """
    def load(path):
        with open(path, "rb") as stream:
            return stream.read()
    """,
]


@pytest.mark.parametrize("source", RES004_POSITIVE)
def test_res004_flags_unbounded_awaited_reads(source):
    assert "RES004" in rules_fired(source, module="repro.serve.server")


@pytest.mark.parametrize("source", RES004_NEGATIVE)
def test_res004_allows_bounded_and_sync_reads(source):
    assert "RES004" not in rules_fired(source, module="repro.serve.server")


def test_res004_scoped_to_the_serving_layer():
    source = """
    async def handle(reader):
        return await reader.readline()
    """
    assert "RES004" not in rules_fired(source, module="repro.flows.batch")


def test_res004_suppression_needs_justification():
    justified = """
    async def follow(reader):
        while True:
            line = await reader.readline()  # bdslint: disable=RES004 -- stream ends at peer EOF by design
            if not line:
                return
    """
    result_rules = rules_fired(justified, module="repro.serve.shard")
    assert "RES004" not in result_rules
    bare = """
    async def follow(reader):
        return await reader.readline()  # bdslint: disable=RES004
    """
    fired = rules_fired(bare, module="repro.serve.shard")
    assert "RES004" in fired  # unjustified suppression is ignored...
    assert "SUP001" in fired  # ...and is itself a finding


# ---------------------------------------------------------------------------
# ENG001 — subtable surgery without cache flush
# ---------------------------------------------------------------------------


def test_eng001_flags_surgery_without_flush():
    source = """
    class Manager:
        def evict(self, level, key):
            del self._subtables[level][key]
    """
    assert "ENG001" in rules_fired(source, module="repro.bdd.manager")
    repoint = """
    class Manager:
        def swap(self, level, key, node):
            self._subtables[level][key] = node
    """
    assert "ENG001" in rules_fired(repoint, module="repro.bdd.manager")


def test_eng001_allows_flushed_surgery_and_appends():
    flushed = """
    class Manager:
        def evict(self, level, key):
            del self._subtables[level][key]
            self._cache.clear()
    """
    assert "ENG001" not in rules_fired(flushed, module="repro.bdd.manager")
    append_only = """
    class Manager:
        def add_level(self):
            self._subtables.append({})
    """
    assert "ENG001" not in rules_fired(append_only, module="repro.bdd.manager")


# ---------------------------------------------------------------------------
# ENG002 — refcount helpers outside the manager
# ---------------------------------------------------------------------------


def test_eng002_flags_foreign_refcount_calls():
    source = "def rebuild(mgr, level, high, low):\n    return mgr._mk(level, high, low)\n"
    assert "ENG002" in rules_fired(source, module="repro.bdd.substitute")
    deref = "def drop(mgr, edge):\n    mgr._deref(edge)\n"
    assert "ENG002" in rules_fired(deref, module="repro.bdd.sift")


def test_eng002_exempts_manager_and_self_calls():
    source = "def rebuild(mgr, level, high, low):\n    return mgr._mk(level, high, low)\n"
    assert "ENG002" not in rules_fired(source, module="repro.bdd.manager")
    self_call = """
    class Manager:
        def mk_public(self, level, high, low):
            return self._mk(level, high, low)
    """
    assert "ENG002" not in rules_fired(self_call, module="repro.bdd.sift")


# ---------------------------------------------------------------------------
# PARSE001 — unparseable source
# ---------------------------------------------------------------------------


def test_parse001_reports_syntax_errors():
    result = analyze_source("def broken(:\n", module="repro.flows.batch")
    assert [f.rule for f in result.findings] == ["PARSE001"]
    assert result.findings[0].severity == "error"
