"""The repository's own source must satisfy its contracts.

This is the local mirror of CI's ``lint-contracts`` job: running the
full rule pack over ``src/`` must yield zero unsuppressed findings,
and every suppression must carry a justification (enforced by SUP001,
so "zero findings" already implies it — the second assertion documents
the inventory).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import analyze_paths

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def result():
    return analyze_paths([os.path.abspath(SRC)])


def test_src_has_zero_unsuppressed_findings(result):
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]


def test_every_suppression_is_justified(result):
    for finding in result.suppressed:
        assert finding.justification, finding
