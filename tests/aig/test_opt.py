"""Tests for AIG optimization passes (balance / rewrite / refactor / resyn2)."""

from __future__ import annotations

import random

import pytest

from repro.aig import (
    Aig,
    aig_to_network,
    balance,
    network_to_aig,
    refactor,
    resyn2,
    resyn_quick,
    rewrite,
)
from repro.benchgen import ripple_carry_adder, wallace_multiplier
from repro.benchgen.random_logic import random_control_network
from repro.network import check_equivalence


def random_aig(seed: int, num_inputs: int = 8, num_gates: int = 60) -> Aig:
    rng = random.Random(seed)
    aig = Aig()
    pool = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a, b = rng.sample(pool, 2)
        literal = aig.and_(a ^ rng.getrandbits(1), b ^ rng.getrandbits(1))
        pool.append(literal)
    for index in range(6):
        aig.add_output(f"y{index}", pool[-(index + 1)] ^ rng.getrandbits(1))
    return aig


def equivalent(left: Aig, right: Aig, num_inputs: int, vectors: int = 256) -> bool:
    rng = random.Random(99)
    names = left.inputs
    assert names == right.inputs
    mask = (1 << vectors) - 1
    stimulus = {name: rng.getrandbits(vectors) for name in names}
    return left.simulate(stimulus, mask) == right.simulate(stimulus, mask)


class TestBalance:
    def test_balance_reduces_chain_depth(self):
        aig = Aig()
        literals = [aig.add_input(f"x{i}") for i in range(16)]
        chain = literals[0]
        for literal in literals[1:]:
            chain = aig.and_(chain, literal)
        aig.add_output("o", chain)
        balanced = balance(aig)
        assert balanced.depth() == 4  # log2(16)
        assert equivalent(aig, balanced, 16)

    def test_balance_preserves_function(self):
        for seed in range(5):
            aig = random_aig(seed)
            assert equivalent(aig, balance(aig), 8)

    def test_balance_does_not_duplicate_shared_logic(self):
        aig = Aig()
        a, b, c = (aig.add_input(n) for n in "abc")
        shared = aig.and_(a, b)
        aig.add_output("x", aig.and_(shared, c))
        aig.add_output("y", aig.and_(shared, c ^ 1))
        balanced = balance(aig)
        assert balanced.size() <= aig.size()


class TestRefactor:
    def test_refactor_removes_redundancy(self):
        # Build (a&b) | (a&~b) == a the hard way.
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        redundant = aig.or_(aig.and_(a, b), aig.and_(a, b ^ 1))
        aig.add_output("o", redundant)
        optimized = refactor(aig, max_leaves=4)
        assert optimized.size() < aig.size()
        assert equivalent(aig, optimized, 2)

    def test_refactor_preserves_function(self):
        for seed in range(6):
            aig = random_aig(seed, num_gates=80)
            optimized = refactor(aig)
            assert equivalent(aig, optimized, 8), f"seed {seed}"

    def test_rewrite_preserves_function(self):
        for seed in range(6):
            aig = random_aig(seed + 100)
            optimized = rewrite(aig)
            assert equivalent(aig, optimized, 8), f"seed {seed}"

    def test_zero_cost_mode_never_grows(self):
        aig = random_aig(7)
        base = aig.cleanup().size()
        assert rewrite(aig, zero_cost=True).size() <= base


class TestResyn2:
    def test_resyn2_never_worse(self):
        for seed in (1, 2, 3):
            aig = random_aig(seed, num_gates=100)
            optimized = resyn2(aig)
            assert optimized.size() <= aig.cleanup().size()
            assert equivalent(aig, optimized, 8)

    def test_resyn2_on_adder_network(self):
        net = ripple_carry_adder(6)
        aig = network_to_aig(net)
        optimized = resyn2(aig)
        back = aig_to_network(optimized, name=net.name)
        assert check_equivalence(net, back).equivalent

    def test_resyn_quick_equivalent(self):
        net = random_control_network("rc", 12, 6, 80, seed=42)
        aig = network_to_aig(net)
        optimized = resyn_quick(aig)
        back = aig_to_network(optimized, name=net.name)
        assert check_equivalence(net, back).equivalent

    @pytest.mark.slow
    def test_resyn2_on_multiplier(self):
        net = wallace_multiplier(4)
        aig = network_to_aig(net)
        optimized = resyn2(aig)
        back = aig_to_network(optimized, name=net.name)
        assert check_equivalence(net, back).equivalent
        assert optimized.size() <= aig.size()
