"""Tests for the AIG core, truth utilities and conversions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    Aig,
    aig_to_network,
    cover_to_table,
    full_mask,
    isop,
    network_to_aig,
    synthesize_table,
    var_mask,
)
from repro.benchgen import ripple_carry_adder
from repro.network import check_equivalence


class TestAigCore:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.and_(a, Aig.ZERO) == Aig.ZERO
        assert aig.and_(a, Aig.ONE) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, a ^ 1) == Aig.ZERO

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.num_nodes() == 1

    def test_de_morgan_via_or(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        or_ab = aig.or_(a, b)
        aig.add_output("o", or_ab)
        values = aig.simulate({"a": 0b0101, "b": 0b0011}, 0b1111)
        assert values["o"] == 0b0111

    def test_xor_and_maj(self):
        aig = Aig()
        a, b, c = (aig.add_input(n) for n in "abc")
        aig.add_output("x", aig.xor_(a, b))
        aig.add_output("m", aig.maj(a, b, c))
        for vector in range(8):
            stim = {"a": vector & 1, "b": vector >> 1 & 1, "c": vector >> 2 & 1}
            values = aig.simulate(stim, 1)
            assert values["x"] == stim["a"] ^ stim["b"]
            assert values["m"] == int(stim["a"] + stim["b"] + stim["c"] >= 2)

    def test_size_counts_only_reachable(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        kept = aig.and_(a, b)
        aig.and_(a, b ^ 1)  # dead node
        aig.add_output("o", kept)
        assert aig.num_nodes() == 2
        assert aig.size() == 1

    def test_cleanup_drops_dead_logic(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        kept = aig.and_(a, b)
        aig.and_(a ^ 1, b)
        aig.add_output("o", kept)
        fresh = aig.cleanup()
        assert fresh.num_nodes() == 1
        assert fresh.simulate({"a": 1, "b": 1}, 1)["o"] == 1

    def test_depth(self):
        aig = Aig()
        literals = [aig.add_input(f"x{i}") for i in range(8)]
        chain = literals[0]
        for literal in literals[1:]:
            chain = aig.and_(chain, literal)
        aig.add_output("o", chain)
        assert aig.depth() == 7

    def test_duplicate_input_rejected(self):
        aig = Aig()
        aig.add_input("a")
        with pytest.raises(ValueError):
            aig.add_input("a")


class TestTruthTables:
    def test_var_masks(self):
        assert var_mask(0, 2) == 0b1010
        assert var_mask(1, 2) == 0b1100
        assert full_mask(3) == 0xFF

    @settings(max_examples=120, deadline=None)
    @given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_isop_round_trip(self, table):
        rows = isop(table, 4)
        assert cover_to_table(rows, 4) == table

    @settings(max_examples=60, deadline=None)
    @given(table=st.integers(min_value=0, max_value=255))
    def test_isop_is_irredundant_cover(self, table):
        rows = isop(table, 3)
        # Each row must contribute at least one minterm of the function.
        for index, row in enumerate(rows):
            rest = rows[:index] + rows[index + 1 :]
            assert cover_to_table([row], 3) & table == cover_to_table([row], 3)
            assert cover_to_table(rest, 3) != table or len(rows) == 1

    @settings(max_examples=80, deadline=None)
    @given(table=st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_synthesize_table_correct(self, table):
        aig = Aig()
        leaves = [aig.add_input(f"x{i}") for i in range(4)]
        literal = synthesize_table(aig, table, leaves, 4)
        aig.add_output("f", literal)
        for minterm in range(16):
            stim = {f"x{i}": minterm >> i & 1 for i in range(4)}
            assert aig.simulate(stim, 1)["f"] == (table >> minterm & 1)


class TestConversions:
    def test_network_round_trip(self):
        net = ripple_carry_adder(5)
        aig = network_to_aig(net)
        back = aig_to_network(aig, name=net.name)
        assert check_equivalence(net, back).equivalent

    def test_aig_network_is_gate_level(self):
        net = ripple_carry_adder(3)
        back = aig_to_network(network_to_aig(net))
        for name in back.node_names:
            node = back.node(name)
            assert len(node.fanins) <= 2

    def test_inverted_and_constant_outputs(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output("not_a", a ^ 1)
        aig.add_output("always", Aig.ONE)
        aig.add_output("never", Aig.ZERO)
        net = aig_to_network(aig)
        values = net.simulate({"a": 1}, 1)
        assert values == {"not_a": 0, "always": 1, "never": 0}

    def test_shared_inverters(self):
        aig = Aig()
        a, b, c = (aig.add_input(n) for n in "abc")
        aig.add_output("x", aig.and_(a ^ 1, b))
        aig.add_output("y", aig.and_(a ^ 1, c))
        net = aig_to_network(aig)
        inverters = [
            n for n in net.node_names if net.node(n).cover == ("0",)
        ]
        assert len(inverters) == 1
