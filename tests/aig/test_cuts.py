"""Tests for k-feasible cut enumeration."""

from __future__ import annotations

import random

from repro.aig import Aig, cut_truth_table, enumerate_cuts, full_mask


def small_aig():
    aig = Aig()
    a, b, c, d = (aig.add_input(n) for n in "abcd")
    ab = aig.and_(a, b)
    cd = aig.and_(c, d)
    root = aig.and_(ab, cd ^ 1)
    aig.add_output("o", root)
    return aig, (a, b, c, d, ab, cd, root)


class TestEnumeration:
    def test_trivial_cut_always_present(self):
        aig, (_, _, _, _, ab, cd, root) = small_aig()
        cuts = enumerate_cuts(aig)
        for node in (ab >> 1, cd >> 1, root >> 1):
            assert (node,) in cuts[node]

    def test_leaf_cut_of_root(self):
        aig, (a, b, c, d, _, _, root) = small_aig()
        cuts = enumerate_cuts(aig, k=4)
        leaves = tuple(sorted(x >> 1 for x in (a, b, c, d)))
        assert leaves in cuts[root >> 1]

    def test_k_bound_respected(self):
        rng = random.Random(3)
        aig = Aig()
        pool = [aig.add_input(f"x{i}") for i in range(10)]
        for _ in range(60):
            l, r = rng.sample(pool, 2)
            pool.append(aig.and_(l ^ rng.getrandbits(1), r ^ rng.getrandbits(1)))
        aig.add_output("o", pool[-1])
        for k in (2, 3, 4, 6):
            cuts = enumerate_cuts(aig, k=k)
            for node_cuts in cuts.values():
                assert all(len(cut) <= k for cut in node_cuts)

    def test_per_node_cap(self):
        rng = random.Random(7)
        aig = Aig()
        pool = [aig.add_input(f"x{i}") for i in range(8)]
        for _ in range(80):
            l, r = rng.sample(pool, 2)
            pool.append(aig.and_(l, r ^ 1))
        aig.add_output("o", pool[-1])
        cuts = enumerate_cuts(aig, k=4, max_cuts_per_node=3)
        assert all(len(c) <= 3 for c in cuts.values())

    def test_dominated_cuts_pruned(self):
        aig, (a, b, _, _, ab, _, _) = small_aig()
        cuts = enumerate_cuts(aig)
        node_cuts = cuts[ab >> 1]
        # (a, b) is present; any superset of it would be dominated.
        as_sets = [set(c) for c in node_cuts]
        for i, cut in enumerate(as_sets):
            assert not any(other < cut for j, other in enumerate(as_sets) if j != i)


class TestCutFunctions:
    def test_truth_table_of_root_cut(self):
        aig, (a, b, c, d, _, _, root) = small_aig()
        leaves = tuple(x >> 1 for x in (a, b, c, d))
        table = cut_truth_table(aig, root >> 1, leaves)
        for minterm in range(16):
            va, vb, vc, vd = (minterm >> i & 1 for i in range(4))
            expected = (va & vb) & (1 - (vc & vd))
            assert (table >> minterm & 1) == expected

    def test_cut_functions_match_simulation(self):
        rng = random.Random(11)
        aig = Aig()
        pool = [aig.add_input(f"x{i}") for i in range(6)]
        for _ in range(40):
            l, r = rng.sample(pool, 2)
            pool.append(aig.and_(l ^ rng.getrandbits(1), r ^ rng.getrandbits(1)))
        aig.add_output("o", pool[-1])
        cuts = enumerate_cuts(aig, k=4)
        for node, node_cuts in list(cuts.items())[:30]:
            if not aig.is_and(node):
                continue
            for cut in node_cuts:
                if cut == (node,):
                    continue
                table = cut_truth_table(aig, node, cut)
                assert 0 <= table <= full_mask(len(cut))
