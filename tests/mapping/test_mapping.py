"""Tests for the cell library, mapper and STA."""

from __future__ import annotations

import pytest

from repro.benchgen import ripple_carry_adder, wallace_multiplier
from repro.mapping import (
    CellLibrary,
    MappingError,
    analyze,
    classify_gate,
    cmos22_library,
    map_network,
    nand_only_library,
)
from repro.network import LogicNetwork, check_equivalence


class TestLibrary:
    def test_paper_cells_present(self):
        library = cmos22_library()
        for function in ("inv", "nand2", "nor2", "xor2", "xnor2", "maj3"):
            assert library.has(function)

    def test_relative_ordering(self):
        library = cmos22_library()
        assert library.cell("inv").area < library.cell("nand2").area
        assert library.cell("nand2").area < library.cell("xor2").area
        assert library.cell("xor2").area < library.cell("maj3").area
        assert library.cell("nand2").delay < library.cell("nor2").delay

    def test_duplicate_rejected(self):
        library = cmos22_library()
        with pytest.raises(ValueError):
            library.add(library.cell("inv"))

    def test_nand_only_subset(self):
        library = nand_only_library()
        assert not library.has("xor2")
        assert not library.has("maj3")
        assert library.has("nand2")


class TestClassifyGate:
    def _node(self, net_builder):
        net = LogicNetwork()
        for name in "abc":
            net.add_input(name)
        node_name = net_builder(net)
        return net.node(node_name)

    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda n: n.add_and("g", "a", "b"), ("and", False)),
            (lambda n: n.add_nand("g", "a", "b"), ("and", True)),
            (lambda n: n.add_or("g", "a", "b"), ("or", False)),
            (lambda n: n.add_nor("g", "a", "b"), ("or", True)),
            (lambda n: n.add_xor("g", "a", "b"), ("xor", False)),
            (lambda n: n.add_xnor("g", "a", "b"), ("xor", True)),
            (lambda n: n.add_maj("g", "a", "b", "c"), ("maj", False)),
            (lambda n: n.add_mux("g", "a", "b", "c"), ("mux", False)),
            (lambda n: n.add_not("g", "a"), ("buf", True)),
            (lambda n: n.add_buf("g", "a"), ("buf", False)),
            (lambda n: n.add_const("g", True), ("const1", False)),
            (lambda n: n.add_const("g", False), ("const0", False)),
        ],
    )
    def test_classification(self, builder, expected):
        node = self._node(builder)
        kind, out_inv, _ = classify_gate(node)
        assert (kind, out_inv) == expected

    def test_sop_fallback(self):
        net = LogicNetwork()
        for name in "abc":
            net.add_input(name)
        net.add_node("g", ("a", "b", "c"), ("110", "011", "101"))
        kind, _, _ = classify_gate(net.node("g"))
        assert kind == "sop"


def small_gate_network() -> LogicNetwork:
    net = LogicNetwork("gates")
    for name in ("a", "b", "c", "d"):
        net.add_input(name)
    net.add_xor("x", "a", "b")
    net.add_maj("m", "x", "c", "d")
    net.add_nand("n", "a", "c")
    net.add_or("o", "m", "n")
    net.add_not("y", "o")
    net.add_output("y")
    net.add_output("m")
    return net


class TestMapper:
    def test_equivalence_after_mapping(self):
        net = small_gate_network()
        mapped = map_network(net)
        assert check_equivalence(net, mapped.network).equivalent

    def test_only_library_cells_used(self):
        mapped = map_network(small_gate_network())
        legal = set(mapped.library.functions) | {"wire"}
        for cell in mapped.cell_of.values():
            assert cell.function in legal

    def test_direct_assignment_preserves_maj_and_xor(self):
        mapped = map_network(small_gate_network())
        histogram = mapped.cell_histogram()
        assert histogram.get("maj3", 0) >= 1
        assert histogram.get("xor2", 0) + histogram.get("xnor2", 0) >= 1

    def test_phase_assignment_shares_inverters(self):
        # Mapping y = ~(a & b) should produce a single NAND, no INV.
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_nand("y", "a", "b")
        net.add_output("y")
        mapped = map_network(net)
        histogram = mapped.cell_histogram()
        assert histogram.get("nand2", 0) == 1
        assert histogram.get("inv", 0) == 0

    def test_and_maps_to_two_cells_max(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_and("y", "a", "b")
        net.add_output("y")
        mapped = map_network(net)
        assert mapped.gate_count <= 2

    def test_mux_and_sop_are_expanded(self):
        net = LogicNetwork()
        for name in ("s", "t", "e"):
            net.add_input(name)
        net.add_mux("m", "s", "t", "e")
        net.add_node("w", ("s", "t", "e"), ("11-", "-01"))
        net.add_output("m")
        net.add_output("w")
        mapped = map_network(net)
        assert check_equivalence(net, mapped.network).equivalent

    def test_nand_only_library_still_equivalent(self):
        net = small_gate_network()
        mapped = map_network(net, nand_only_library())
        assert check_equivalence(net, mapped.network).equivalent
        assert "xor2" not in mapped.cell_histogram()

    def test_constant_outputs(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_const("k", True)
        net.add_output("k")
        mapped = map_network(net)
        assert check_equivalence(net, mapped.network).equivalent
        assert mapped.gate_count == 0  # tie cells are free

    def test_input_passthrough_output(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_output("a")
        mapped = map_network(net)
        assert mapped.network.outputs == ("a",)

    def test_adder_mapping_equivalence(self):
        net = ripple_carry_adder(6)
        mapped = map_network(net)
        assert check_equivalence(net, mapped.network).equivalent

    def test_missing_cells_raise(self):
        # An empty library cannot map anything.
        net = small_gate_network()
        with pytest.raises((MappingError, KeyError)):
            map_network(net, CellLibrary("empty"))


class TestSta:
    def test_report_fields(self):
        mapped = map_network(small_gate_network())
        report = analyze(mapped)
        assert report.area == pytest.approx(mapped.area)
        assert report.gate_count == mapped.gate_count
        assert report.delay > 0
        assert report.depth >= 2
        assert report.critical_path[-1] in mapped.network.outputs or True

    def test_deeper_circuit_has_larger_delay(self):
        shallow = map_network(ripple_carry_adder(2))
        deep = map_network(ripple_carry_adder(12))
        assert analyze(deep).delay > analyze(shallow).delay

    def test_wallace_mapping_smoke(self):
        net = wallace_multiplier(4)
        mapped = map_network(net)
        report = analyze(mapped)
        assert check_equivalence(net, mapped.network).equivalent
        assert report.gate_count > 40

    def test_empty_network(self):
        net = LogicNetwork()
        net.add_input("a")
        mapped = map_network(net)
        report = analyze(mapped)
        assert report.delay == 0.0
        assert report.gate_count == 0
