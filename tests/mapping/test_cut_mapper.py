"""Tests for the cut-based Boolean-matching mapper."""

from __future__ import annotations

import pytest

from repro.benchgen import ripple_carry_adder, wallace_multiplier
from repro.benchgen.extra import comparator, parity_tree
from repro.benchgen.random_logic import random_control_network
from repro.mapping import analyze, cut_map_network, map_network, nand_only_library
from repro.mapping.cut_mapper import _build_match_tables, _permute_phase_table
from repro.mapping.library import cmos22_library
from repro.network import LogicNetwork, check_equivalence


class TestMatchTables:
    def test_permute_phase_identity(self):
        # nand table unchanged by identity permutation / no phases.
        assert _permute_phase_table(0b0111, (0, 1), (False, False), 2) == 0b0111

    def test_phase_turns_nand_into_or(self):
        # nand(a', b') = a + b.
        table = _permute_phase_table(0b0111, (0, 1), (True, True), 2)
        assert table == 0b1110

    def test_all_two_input_functions_matched(self):
        """With input/output phases, the nand/nor/xor family covers all
        16 two-input functions except constants and projections."""
        tables = _build_match_tables(cmos22_library())
        bucket = tables[2]
        matched = set(bucket)
        for table in range(16):
            if table in (0b0000, 0b1111, 0b1010, 0b0101, 0b1100, 0b0011):
                continue  # constants and single-literal projections
            assert table in matched, bin(table)

    def test_majority_matched_by_maj3(self):
        tables = _build_match_tables(cmos22_library())
        match = tables[3][0b11101000]
        assert match.cell.function == "maj3"
        assert match.extra_inverters == 0

    def test_nand_only_library_has_no_xor_match(self):
        tables = _build_match_tables(nand_only_library())
        assert 0b0110 not in tables[2] or tables[2][0b0110].cell.function != "xor2"


class TestCutMapping:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ripple_carry_adder(5),
            lambda: wallace_multiplier(4),
            lambda: comparator(6),
            lambda: parity_tree(12),
            lambda: random_control_network("rc", 10, 5, 70, seed=3),
        ],
    )
    def test_equivalence(self, factory):
        net = factory()
        mapped = cut_map_network(net)
        assert check_equivalence(net, mapped.network).equivalent

    def test_only_library_cells(self):
        net = ripple_carry_adder(4)
        mapped = cut_map_network(net)
        legal = set(mapped.library.functions) | {"wire"}
        assert all(cell.function in legal for cell in mapped.cell_of.values())

    def test_xor_cells_recovered_from_parity(self):
        """Boolean matching must find XOR cells in a parity tree AIG."""
        mapped = cut_map_network(parity_tree(16))
        histogram = mapped.cell_histogram()
        assert histogram.get("xor2", 0) + histogram.get("xnor2", 0) >= 10

    def test_nand_only_library_works(self):
        net = ripple_carry_adder(4)
        mapped = cut_map_network(net, nand_only_library())
        assert check_equivalence(net, mapped.network).equivalent
        assert "xor2" not in mapped.cell_histogram()

    def test_beats_or_matches_structural_on_parity(self):
        """On XOR-rich logic the Boolean matcher should not lose to the
        structural mapper fed with the raw AND/INV network."""
        from repro.aig import aig_to_network, network_to_aig

        net = parity_tree(16)
        # Structural mapper on the strashed AND/INV form (no gate hints).
        stripped = aig_to_network(network_to_aig(net), name="stripped")
        structural = map_network(stripped)
        boolean = cut_map_network(net)
        assert boolean.area <= structural.area

    def test_constant_and_passthrough_outputs(self):
        net = LogicNetwork("edge")
        net.add_input("a")
        net.add_const("k", True)
        net.add_buf("o", "a")
        net.add_output("k")
        net.add_output("o")
        mapped = cut_map_network(net)
        assert check_equivalence(net, mapped.network).equivalent

    def test_timing_analysis_runs(self):
        mapped = cut_map_network(ripple_carry_adder(6))
        report = analyze(mapped)
        assert report.gate_count > 0
        assert report.delay > 0
