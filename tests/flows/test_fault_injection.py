"""Chaos tests: deterministic fault injection against the batch layer.

Every test installs a :class:`~repro.faults.FaultPlan` in-process
(fork-started pool workers inherit it) and asserts the robustness
contract the plan attacks: a SIGKILLed worker never hangs the batch,
deadline exhaustion produces byte-deterministic error rows, an armed
but quiescent plan costs nothing, and a failed arena attach degrades
instead of killing the worker.
"""

from __future__ import annotations

import json

import pytest

from repro.bdd import BDD, BddArena
from repro.bdd.arena import attach_worker_arena, current_arena
from repro.faults import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    arm_from_env,
    current_plan,
    inject,
    install_plan,
)
from repro.flows import BatchConfig, run_batch


@pytest.fixture(autouse=True)
def _disarm():
    """Every test starts disarmed and never leaks its plan."""
    previous = install_plan(None)
    yield
    install_plan(previous)


def _plan(*rules: dict) -> FaultPlan:
    return FaultPlan.from_json(json.dumps({"seed": 7, "faults": list(rules)}))


class TestPlanParsing:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            _plan({"site": "batch.wrker", "action": "kill"})

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            _plan({"site": "batch.worker", "action": "explode"})

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault rule field"):
            _plan({"site": "batch.worker", "action": "kill", "when": "now"})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_non_object_plan_rejected(self):
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_json("[]")

    def test_roundtrip_preserves_rules(self):
        plan = _plan(
            {"site": "batch.worker", "action": "kill", "match": "c432:1"},
            {"site": "journal.append", "action": "error", "after": 3, "times": 0},
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_json() == plan.to_json()
        assert again.seed == 7

    def test_arm_from_env_installs_and_empty_env_does_not(self):
        assert arm_from_env({}) is None
        assert current_plan() is None
        plan_json = _plan({"site": "batch.worker", "action": "stall"}).to_json()
        installed = arm_from_env({ENV_VAR: plan_json})
        assert installed is not None
        assert current_plan() is installed

    def test_arm_from_env_fails_loudly_on_malformed_plan(self):
        with pytest.raises(FaultPlanError):
            arm_from_env({ENV_VAR: '{"faults": [{"site": "bogus"}]}'})


class TestFiringDiscipline:
    def test_match_after_and_times_gate_the_action(self):
        install_plan(
            _plan(
                {
                    "site": "batch.worker",
                    "action": "error",
                    "match": "f51m:",
                    "after": 1,
                    "times": 1,
                }
            )
        )
        inject("batch.worker", "alu2:1")  # wrong key: never matches
        inject("batch.worker", "f51m:1")  # hit 0 < after: passes
        with pytest.raises(FaultInjected):
            inject("batch.worker", "f51m:2")  # hit 1: fires
        inject("batch.worker", "f51m:3")  # times budget spent: passes
        assert current_plan().stats() == {"rules": 1, "hits": 3, "fired": 1}

    def test_probability_draws_are_seeded_deterministic(self):
        rule = {
            "site": "batch.stage",
            "action": "error",
            "probability": 0.5,
            "times": 0,
        }

        def pattern() -> list[bool]:
            fired = []
            install_plan(_plan(rule))
            for hit in range(32):
                try:
                    inject("batch.stage", f"c432:stage{hit}")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert True in first and False in first  # the coin actually flips


class TestWorkerKill:
    def test_sigkilled_worker_never_hangs_the_batch(self):
        """A plan that SIGKILLs the worker running f51m's first attempt:
        the batch must detect the death, retry, and finish with every
        circuit ok — the exact hang the flight dispatcher exists for."""
        install_plan(
            _plan({"site": "batch.worker", "action": "kill", "match": "f51m:1"})
        )
        report = run_batch(
            ["alu2", "f51m"],
            BatchConfig(workers=2, max_retries=2, retry_backoff=0.01),
        )
        assert [c.benchmark for c in report.circuits] == ["alu2", "f51m"]
        assert all(c.ok for c in report.circuits)
        assert report.worker_deaths >= 1
        assert report.retries >= 1

    def test_error_action_becomes_an_isolated_error_row(self):
        install_plan(
            _plan(
                {"site": "batch.worker", "action": "error", "match": "f51m:1"}
            )
        )
        report = run_batch(["alu2", "f51m"], BatchConfig(workers=1))
        alu2, f51m = report.circuits
        assert alu2.ok
        assert f51m.status == "error"
        assert f51m.error == (
            "FaultInjected: injected fault at batch.worker (f51m:1)"
        )


STALL_F51M = {
    "site": "batch.worker",
    "action": "stall",
    "match": "f51m:",
    "seconds": 0.8,
    "times": 0,
}


class TestDeadlineExhaustion:
    def test_exhausted_circuit_reports_deterministic_timeout_row(self):
        install_plan(_plan(STALL_F51M))
        config = BatchConfig(
            workers=1, circuit_timeout=0.5, max_retries=1, retry_backoff=0.01
        )
        report = run_batch(["f51m"], config)
        (row,) = report.circuits
        assert row.status == "error"
        assert row.reason == "timeout"
        assert row.error == (
            "TimeoutError: exceeded circuit_timeout=0.5s on 2 attempt(s)"
        )
        assert report.timeouts == 2
        assert report.retries == 1

    def test_serial_and_parallel_exhaustion_rows_byte_identical(self):
        """With f51m stalled past the deadline on every attempt, the
        serial (post-hoc) and parallel (preemptive) deadline paths must
        exhaust into the same report bytes."""
        stall = dict(STALL_F51M, seconds=1.5)
        config = dict(circuit_timeout=1.0, max_retries=1, retry_backoff=0.01)
        install_plan(_plan(stall))
        serial = run_batch(["alu2", "f51m"], BatchConfig(workers=1, **config))
        install_plan(_plan(stall))  # fresh counters for the pool run
        parallel = run_batch(["alu2", "f51m"], BatchConfig(workers=2, **config))
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        alu2, f51m = serial.circuits
        assert alu2.ok  # a healthy circuit is untouched by the deadline
        assert f51m.reason == "timeout"
        assert f51m.error == (
            "TimeoutError: exceeded circuit_timeout=1s on 2 attempt(s)"
        )


class TestQuiescentPlan:
    def test_armed_but_quiescent_plan_preserves_byte_identity(self):
        """The golden contract with the fault layer armed: a plan whose
        rules never match must not perturb report bytes for any worker
        count."""
        quiescent = _plan(
            {"site": "batch.worker", "action": "kill", "match": "no-such-bench:"}
        )
        install_plan(quiescent)
        serial = run_batch(["alu2", "f51m"], BatchConfig(workers=1))
        install_plan(quiescent)
        parallel = run_batch(["alu2", "f51m"], BatchConfig(workers=4))
        assert serial.to_json() == parallel.to_json()
        assert all(c.ok for c in serial.circuits)


class TestArenaAttachFault:
    def test_attach_fault_degrades_to_arena_less_worker(self):
        mgr = BDD(["a", "b"])
        roots = {"f": mgr.and_(mgr.var("a"), mgr.var("b"))}
        arena = BddArena.publish(mgr, roots)
        try:
            install_plan(
                _plan({"site": "arena.attach", "action": "error"})
            )
            attach_worker_arena(arena.name)
            assert current_arena() is None  # degraded, not dead
            install_plan(None)
            attach_worker_arena(arena.name)
            try:
                assert current_arena() is not None
            finally:
                attach_worker_arena(None)
        finally:
            arena.unlink()
