"""Warm worker pools and arena-backed verification.

The load-bearing assertion: a batch run through a reused
:class:`WarmPoolManager` pool — with or without a shared BDD arena
attached to the workers — produces **byte-identical** reports to the
cold-pool (and serial) paths, for 1 and 4 workers alike.  Warm serving
is a latency optimization, never a different answer.
"""

from __future__ import annotations

import pytest

from repro.bdd import BDD
from repro.bdd.arena import BddArena, attach_worker_arena, current_arena
from repro.benchgen import build_benchmark
from repro.flows import BatchConfig, WarmPoolManager, run_batch
from repro.flows.batch import batch_pool, synthesize_one
from repro.network import global_bdds

CIRCUITS = ["alu2", "f51m"]


def _publish_arena(keys) -> BddArena:
    manager = BDD([])
    roots: dict[str, int] = {}
    for name in keys:
        network = build_benchmark(name)
        manager, edges = global_bdds(network, mgr=manager, max_nodes=300_000)
        for output, edge in edges.items():
            roots[f"{name}/{output}"] = edge
    return BddArena.publish(manager, roots)


class TestWarmPoolManager:
    def test_acquire_release_cycle_counts_warm_and_cold(self):
        manager = WarmPoolManager()
        try:
            pool = manager.acquire(2)
            assert manager.stats()["cold_acquires"] == 1
            manager.release(pool)
            assert manager.stats()["idle_pools"] == 1
            again = manager.acquire(2)
            assert again is pool
            assert manager.stats()["warm_acquires"] == 1
            manager.release(again)
        finally:
            manager.drain()
        assert manager.stats()["idle_pools"] == 0
        with pytest.raises(RuntimeError, match="drained"):
            manager.acquire(2)

    def test_pools_are_keyed_by_size(self):
        manager = WarmPoolManager()
        try:
            two = manager.acquire(2)
            manager.release(two)
            # A different size must not reuse the parked pool.
            one = manager.acquire(1)
            assert one is not two
            manager.release(one)
            assert manager.stats()["cold_acquires"] == 2
        finally:
            manager.drain()

    def test_dead_parked_pool_is_respawned(self):
        manager = WarmPoolManager(ping_timeout=5.0)
        try:
            pool = manager.acquire(1)
            manager.release(pool)
            pool.terminate()  # simulate OOM-killed workers while parked
            pool.join()
            replacement = manager.acquire(1)
            assert replacement is not pool
            assert manager.stats()["respawns"] == 1
            manager.release(replacement)
        finally:
            manager.drain()

    def test_batch_pool_discards_on_exception(self):
        manager = WarmPoolManager()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                with batch_pool(1, manager=manager):
                    raise RuntimeError("boom")
            assert manager.stats()["discards"] == 1
            assert manager.stats()["idle_pools"] == 0
        finally:
            manager.drain()


class TestByteIdentity:
    def test_cold_warm_and_arena_paths_are_byte_identical(self):
        """Cold 1-worker, cold 4-worker, warm 4-worker (twice, so the
        second run really reuses a parked pool) and arena-attached warm
        runs must serialize identically — verification included."""
        config_serial = BatchConfig(flow="bds-maj", workers=1, verify=True)
        config_parallel = BatchConfig(flow="bds-maj", workers=4, verify=True)
        expected = run_batch(CIRCUITS, config_serial).to_json()
        assert run_batch(CIRCUITS, config_parallel).to_json() == expected

        arena = _publish_arena(CIRCUITS)
        try:
            warm = WarmPoolManager(arena_name=arena.name)
            try:
                first = run_batch(CIRCUITS, config_parallel, pool=warm)
                second = run_batch(CIRCUITS, config_parallel, pool=warm)
                assert first.to_json() == expected
                assert second.to_json() == expected
                stats = warm.stats()
                assert stats["cold_acquires"] == 1
                assert stats["warm_acquires"] == 1
            finally:
                warm.drain()

            # Serial path with the arena installed in-process.
            attach_worker_arena(arena)
            try:
                assert run_batch(CIRCUITS, config_serial).to_json() == expected
            finally:
                attach_worker_arena(None)
        finally:
            arena.unlink()


class TestArenaVerify:
    def test_absent_circuit_falls_back_to_simulation(self):
        """A circuit missing from the arena must still verify (through
        check_equivalence), with the same reported boolean."""
        arena = _publish_arena(["f51m"])
        attach_worker_arena(arena)
        try:
            config = BatchConfig(flow="bds-maj", verify=True)
            in_arena = synthesize_one("f51m", config)
            not_in_arena = synthesize_one("alu2", config)
            assert in_arena.verified is True
            assert not_in_arena.verified is True
        finally:
            attach_worker_arena(None)
            arena.unlink()

    def test_no_arena_means_no_state(self):
        assert current_arena() is None
        config = BatchConfig(flow="bds-maj", verify=True)
        assert synthesize_one("alu2", config).verified is True
