"""Reorder-policy threading: config → flow → batch → CLI → serve wire.

The policy surface is one string (``none|once|converge|dynamic``)
validated at every entry point; ``once`` is the published default whose
outputs the golden test pins byte-identical.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.flows import REORDER_POLICIES, BatchConfig, run_batch
from repro.flows.bds import BdsFlowConfig, normalize_reorder_policy
from repro.serve import JobRequest, WireError, parse_submission


class TestNormalization:
    def test_policies(self):
        assert REORDER_POLICIES == ("none", "once", "converge", "dynamic")
        for policy in REORDER_POLICIES:
            assert normalize_reorder_policy(policy) == policy

    def test_boolean_compatibility(self):
        assert normalize_reorder_policy(True) == "once"
        assert normalize_reorder_policy(False) == "none"
        assert normalize_reorder_policy(None) == "none"
        assert BdsFlowConfig(reorder=True).reorder == "once"
        assert BdsFlowConfig(reorder=False).reorder == "none"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            normalize_reorder_policy("sometimes")
        with pytest.raises(ValueError):
            BdsFlowConfig(reorder="sometimes")
        with pytest.raises(ValueError):
            BatchConfig(reorder="sometimes")


class TestBatchPolicies:
    @pytest.mark.parametrize("policy", REORDER_POLICIES)
    def test_every_policy_synthesizes_cleanly(self, policy):
        report = run_batch(["alu2"], BatchConfig(reorder=policy, verify=True))
        circuit = report.circuits[0]
        assert circuit.ok
        assert circuit.verified is True

    def test_converge_never_worse_than_once(self):
        once = run_batch(["alu2"], BatchConfig(reorder="once"))
        converge = run_batch(["alu2"], BatchConfig(reorder="converge"))
        assert converge.circuits[0].total_nodes <= once.circuits[0].total_nodes

    def test_none_differs_from_default_but_default_is_once(self):
        default = run_batch(["alu2"], BatchConfig())
        once = run_batch(["alu2"], BatchConfig(reorder="once"))
        none = run_batch(["alu2"], BatchConfig(reorder="none"))
        assert default.to_json() == once.to_json()
        assert none.circuits[0].steps["sifted"] == 0
        assert default.circuits[0].steps["sifted"] > 0


class TestCli:
    def test_batch_reorder_flag(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        assert (
            cli_main(
                [
                    "batch",
                    "--benchmarks",
                    "alu2",
                    "--reorder",
                    "converge",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        payload = json.loads(output.read_text())
        assert payload["summary"]["failed"] == 0

    def test_batch_rejects_unknown_reorder(self):
        with pytest.raises(SystemExit):
            cli_main(["batch", "--benchmarks", "alu2", "--reorder", "sometimes"])


class TestServeWire:
    def test_reorder_field_round_trips(self):
        request = parse_submission(
            json.dumps({"circuits": ["alu2"], "reorder": "dynamic"}).encode()
        )
        assert request.reorder == "dynamic"
        assert request.batch_config().reorder == "dynamic"

    def test_default_is_once(self):
        request = parse_submission(json.dumps({"circuits": ["alu2"]}).encode())
        assert request.reorder == "once"

    def test_rejects_bad_reorder_values(self):
        with pytest.raises(WireError):
            parse_submission(
                json.dumps({"circuits": ["alu2"], "reorder": "sometimes"}).encode()
            )
        with pytest.raises(WireError):
            parse_submission(
                json.dumps({"circuits": ["alu2"], "reorder": 3}).encode()
            )
        with pytest.raises(ValueError):
            JobRequest(circuits=("alu2",), reorder="sometimes").batch_config()
