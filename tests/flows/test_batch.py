"""Tests for the parallel batch-synthesis service."""

from __future__ import annotations

import json

import pytest

from repro.flows import BatchConfig, BatchReport, CircuitReport, run_batch
from repro.flows import batch as batch_module

SMALL = ["alu2", "f51m"]


class TestConfig:
    def test_rejects_unknown_flow(self):
        with pytest.raises(ValueError):
            BatchConfig(flow="abc")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            BatchConfig(workers=0)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return run_batch(SMALL, BatchConfig(workers=1))

    @pytest.fixture(scope="class")
    def parallel_report(self):
        return run_batch(SMALL, BatchConfig(workers=4))

    def test_json_byte_identical_across_worker_counts(
        self, serial_report, parallel_report
    ):
        assert serial_report.to_json() == parallel_report.to_json()

    def test_csv_byte_identical_across_worker_counts(
        self, serial_report, parallel_report
    ):
        assert serial_report.to_csv() == parallel_report.to_csv()

    def test_report_preserves_input_order(self, parallel_report):
        assert [c.benchmark for c in parallel_report.circuits] == SMALL

    def test_cache_counters_populated(self, serial_report):
        for circuit in serial_report.circuits:
            assert circuit.cache["hits"] > 0
            assert circuit.cache["misses"] > 0
            assert 0.0 < circuit.cache["hit_rate"] < 1.0

    def test_timing_collected_but_not_serialized(self, serial_report):
        assert serial_report.total_seconds > 0.0
        assert serial_report.elapsed_seconds > 0.0
        default_payload = json.loads(serial_report.to_json())
        assert "seconds" not in default_payload["circuits"][0]
        assert "elapsed_seconds" not in default_payload
        timed_payload = json.loads(serial_report.to_json(include_timing=True))
        assert "seconds" in timed_payload["circuits"][0]
        # Serial run: summed synthesis time cannot exceed true elapsed.
        assert timed_payload["total_seconds"] <= timed_payload["elapsed_seconds"]


class TestFailureIsolation:
    def test_unknown_benchmark_does_not_abort_batch(self):
        report = run_batch(["alu2", "definitely-not-a-circuit", "f51m"])
        assert [c.status for c in report.circuits] == ["ok", "error", "ok"]
        failed = report.circuits[1]
        assert failed.error is not None and "definitely-not-a-circuit" in failed.error
        summary = report.summary()
        assert summary["ok"] == 2 and summary["failed"] == 1

    def test_raising_circuit_is_isolated(self, monkeypatch):
        real_build = batch_module.build_benchmark

        def exploding_build(key):
            if key == "f51m":
                raise RuntimeError("synthetic failure")
            return real_build(key)

        monkeypatch.setattr(batch_module, "build_benchmark", exploding_build)
        report = run_batch(["f51m", "alu2"], BatchConfig(workers=1))
        assert [c.status for c in report.circuits] == ["error", "ok"]
        assert "synthetic failure" in report.circuits[0].error

    def test_failed_rows_survive_serialization(self):
        report = BatchReport(
            flow="bds-maj",
            circuits=[
                CircuitReport(
                    benchmark="x", flow="bds-maj", status="error", error="Boom: nope"
                )
            ],
        )
        assert "Boom: nope" in report.to_json()
        assert "Boom: nope" in report.to_csv()


class TestReportContent:
    @pytest.fixture(scope="class")
    def report(self):
        return run_batch(["f51m"], BatchConfig(verify=True))

    def test_verification_recorded(self, report):
        assert report.circuits[0].verified is True

    def test_node_counts_match_table1_shape(self, report):
        counts = report.circuits[0].node_counts
        assert set(counts) == {"and", "or", "xor", "xnor", "maj"}
        assert report.circuits[0].total_nodes == sum(counts.values())

    def test_csv_has_header_and_rows(self, report):
        lines = report.to_csv().splitlines()
        assert lines[0].startswith("benchmark,flow,status,")
        assert len(lines) == 2
        assert lines[1].startswith("f51m,bds-maj,ok,")

    def test_json_schema_tag(self, report):
        payload = json.loads(report.to_json())
        assert payload["schema"] == batch_module.REPORT_SCHEMA
        assert payload["summary"]["circuits"] == 1


class TestCli:
    def test_batch_subcommand_writes_report(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        out = tmp_path / "report.json"
        assert (
            cli_main(
                ["batch", "--benchmarks", "f51m", "--workers", "1", "--output", str(out)]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["circuits"][0]["benchmark"] == "f51m"

    def test_batch_csv_to_stdout(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert cli_main(["batch", "--benchmarks", "f51m", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("benchmark,flow,status,")
