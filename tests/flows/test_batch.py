"""Tests for the parallel batch-synthesis service."""

from __future__ import annotations

import json

import pytest

from repro.flows import (
    BatchCancelled,
    BatchConfig,
    BatchReport,
    CircuitReport,
    run_batch,
)
from repro.flows import batch as batch_module

SMALL = ["alu2", "f51m"]


class TestConfig:
    def test_rejects_unknown_flow(self):
        with pytest.raises(ValueError):
            BatchConfig(flow="not-a-flow")

    def test_accepts_every_registered_flow(self):
        for flow in ("bds-maj", "bds-pga", "abc", "dc"):
            assert BatchConfig(flow=flow).flow == flow

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            BatchConfig(workers=0)

    def test_rejects_unknown_cache_policy(self):
        with pytest.raises(ValueError):
            BatchConfig(cache_policy="random")


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return run_batch(SMALL, BatchConfig(workers=1))

    @pytest.fixture(scope="class")
    def parallel_report(self):
        return run_batch(SMALL, BatchConfig(workers=4))

    def test_json_byte_identical_across_worker_counts(
        self, serial_report, parallel_report
    ):
        assert serial_report.to_json() == parallel_report.to_json()

    def test_csv_byte_identical_across_worker_counts(
        self, serial_report, parallel_report
    ):
        assert serial_report.to_csv() == parallel_report.to_csv()

    def test_report_preserves_input_order(self, parallel_report):
        assert [c.benchmark for c in parallel_report.circuits] == SMALL

    def test_cache_counters_populated(self, serial_report):
        for circuit in serial_report.circuits:
            assert circuit.cache["hits"] > 0
            assert circuit.cache["misses"] > 0
            assert 0.0 < circuit.cache["hit_rate"] < 1.0

    def test_timing_collected_but_not_serialized(self, serial_report):
        assert serial_report.total_seconds > 0.0
        assert serial_report.elapsed_seconds > 0.0
        default_payload = json.loads(serial_report.to_json())
        assert "seconds" not in default_payload["circuits"][0]
        assert "elapsed_seconds" not in default_payload
        timed_payload = json.loads(serial_report.to_json(include_timing=True))
        assert "seconds" in timed_payload["circuits"][0]
        # Serial run: summed synthesis time cannot exceed true elapsed.
        assert timed_payload["total_seconds"] <= timed_payload["elapsed_seconds"]


class TestFailureIsolation:
    def test_unknown_benchmark_does_not_abort_batch(self):
        report = run_batch(["alu2", "definitely-not-a-circuit", "f51m"])
        assert [c.status for c in report.circuits] == ["ok", "error", "ok"]
        failed = report.circuits[1]
        assert failed.error is not None and "definitely-not-a-circuit" in failed.error
        summary = report.summary()
        assert summary["ok"] == 2 and summary["failed"] == 1

    def test_raising_circuit_is_isolated(self, monkeypatch):
        real_build = batch_module.build_benchmark

        def exploding_build(key):
            if key == "f51m":
                raise RuntimeError("synthetic failure")
            return real_build(key)

        monkeypatch.setattr(batch_module, "build_benchmark", exploding_build)
        report = run_batch(["f51m", "alu2"], BatchConfig(workers=1))
        assert [c.status for c in report.circuits] == ["error", "ok"]
        assert "synthetic failure" in report.circuits[0].error

    def test_failed_rows_survive_serialization(self):
        report = BatchReport(
            flow="bds-maj",
            circuits=[
                CircuitReport(
                    benchmark="x", flow="bds-maj", status="error", error="Boom: nope"
                )
            ],
        )
        assert "Boom: nope" in report.to_json()
        assert "Boom: nope" in report.to_csv()


class TestReportContent:
    @pytest.fixture(scope="class")
    def report(self):
        return run_batch(["f51m"], BatchConfig(verify=True))

    def test_verification_recorded(self, report):
        assert report.circuits[0].verified is True

    def test_node_counts_match_table1_shape(self, report):
        counts = report.circuits[0].node_counts
        assert set(counts) == {"and", "or", "xor", "xnor", "maj"}
        assert report.circuits[0].total_nodes == sum(counts.values())

    def test_csv_has_header_and_rows(self, report):
        lines = report.to_csv().splitlines()
        assert lines[0].startswith("benchmark,flow,status,")
        assert len(lines) == 2
        assert lines[1].startswith("f51m,bds-maj,ok,")

    def test_json_schema_tag(self, report):
        payload = json.loads(report.to_json())
        assert payload["schema"] == batch_module.REPORT_SCHEMA
        assert payload["summary"]["circuits"] == 1


class TestFileInputs:
    """Batches over BLIF files via the pluggable input layer."""

    @pytest.fixture(scope="class")
    def blif_dir(self, tmp_path_factory):
        from repro.benchgen import build_benchmark
        from repro.network import to_blif

        directory = tmp_path_factory.mktemp("blifs")
        for key in ("f51m", "alu2"):
            (directory / f"{key}.blif").write_text(to_blif(build_benchmark(key)))
        return directory

    def test_glob_source_batch_deterministic_across_workers(self, blif_dir):
        from repro.api import BlifGlobSource

        source = BlifGlobSource(str(blif_dir / "*.blif"))
        serial = run_batch(source, BatchConfig(workers=1))
        parallel = run_batch(source, BatchConfig(workers=4))
        assert serial.to_json() == parallel.to_json()
        # Sorted glob order, not creation order.
        assert [c.benchmark for c in serial.circuits] == ["alu2", "f51m"]
        assert all(c.ok for c in serial.circuits)

    def test_file_and_registry_rows_agree(self, blif_dir):
        from repro.api import BlifFileSource

        via_file = run_batch(
            BlifFileSource(str(blif_dir / "f51m.blif")), BatchConfig()
        ).circuits[0]
        via_registry = run_batch(["f51m"], BatchConfig()).circuits[0]
        assert via_file.node_counts == via_registry.node_counts
        assert via_file.cache == via_registry.cache
        assert via_file.steps == via_registry.steps

    def test_mixed_items_and_keys(self, blif_dir):
        from repro.api import InputItem

        items = [
            "alu2",
            InputItem(name="f51m", kind="blif", path=str(blif_dir / "f51m.blif")),
        ]
        report = run_batch(items, BatchConfig())
        assert [c.benchmark for c in report.circuits] == ["alu2", "f51m"]
        assert all(c.ok for c in report.circuits)

    def test_unreadable_file_is_isolated(self, blif_dir):
        from repro.api import InputItem

        items = [
            InputItem(name="ghost", kind="blif", path=str(blif_dir / "ghost.blif")),
            "f51m",
        ]
        report = run_batch(items, BatchConfig())
        assert [c.status for c in report.circuits] == ["error", "ok"]
        assert "ghost" in (report.circuits[0].error or "")


class TestNonBddFlows:
    """The pipeline registry lets the batch service run abc/dc too."""

    @pytest.mark.parametrize("flow", ["abc", "dc"])
    def test_flow_runs_and_verifies(self, flow):
        report = run_batch(["f51m"], BatchConfig(flow=flow, verify=True))
        circuit = report.circuits[0]
        assert circuit.ok
        assert circuit.verified is True
        # Non-BDS flows do not define Table-I counts or trace steps.
        assert circuit.node_counts == {}
        assert circuit.steps == {}

    def test_deterministic_across_workers(self):
        keys = ["alu2", "f51m"]
        serial = run_batch(keys, BatchConfig(flow="dc", workers=1))
        parallel = run_batch(keys, BatchConfig(flow="dc", workers=4))
        assert serial.to_json() == parallel.to_json()


class TestCachePolicy:
    def test_lru_batch_is_deterministic(self):
        config = BatchConfig(cache_policy="lru")
        first = run_batch(["f51m"], config)
        second = run_batch(["f51m"], config)
        assert first.to_json() == second.to_json()
        assert first.circuits[0].cache["hits"] > 0

    def test_fifo_default_counters_unchanged(self):
        """The default policy must reproduce the historical counters
        (FIFO eviction order is part of the determinism contract)."""
        default = run_batch(["f51m"], BatchConfig())
        explicit = run_batch(["f51m"], BatchConfig(cache_policy="fifo"))
        assert default.to_json() == explicit.to_json()


class TestCli:
    def test_batch_subcommand_writes_report(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        out = tmp_path / "report.json"
        assert (
            cli_main(
                ["batch", "--benchmarks", "f51m", "--workers", "1", "--output", str(out)]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["circuits"][0]["benchmark"] == "f51m"

    def test_batch_csv_to_stdout(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert cli_main(["batch", "--benchmarks", "f51m", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("benchmark,flow,status,")

    def test_batch_files_flag(self, tmp_path, capsys):
        from repro.benchgen import build_benchmark
        from repro.experiments.cli import main as cli_main
        from repro.network import to_blif

        (tmp_path / "f51m.blif").write_text(to_blif(build_benchmark("f51m")))
        out = tmp_path / "report.json"
        assert (
            cli_main(
                ["batch", "--files", str(tmp_path / "*.blif"), "--output", str(out)]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert [c["benchmark"] for c in payload["circuits"]] == ["f51m"]
        assert payload["summary"]["failed"] == 0

    def test_batch_files_empty_glob_is_clear_error(self, tmp_path):
        from repro.experiments.cli import main as cli_main

        with pytest.raises(SystemExit, match="matched no BLIF files"):
            cli_main(["batch", "--files", str(tmp_path / "*.blif")])

    def test_batch_files_combined_with_benchmarks(self, tmp_path, capsys):
        from repro.benchgen import build_benchmark
        from repro.experiments.cli import main as cli_main
        from repro.network import to_blif

        (tmp_path / "f51m.blif").write_text(to_blif(build_benchmark("f51m")))
        out = tmp_path / "report.json"
        assert (
            cli_main(
                [
                    "batch",
                    "--benchmarks",
                    "alu2",
                    "--files",
                    str(tmp_path / "*.blif"),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert [c["benchmark"] for c in payload["circuits"]] == ["alu2", "f51m"]

    def test_batch_files_with_category_keeps_registry_rows(self, tmp_path):
        """An explicit --category is a registry request even when the
        batch also pulls in globbed files."""
        from repro.benchgen import build_benchmark
        from repro.benchgen.registry import benchmark_keys
        from repro.experiments.cli import main as cli_main
        from repro.network import to_blif

        (tmp_path / "zz_extra.blif").write_text(to_blif(build_benchmark("f51m")))
        out = tmp_path / "report.json"
        assert (
            cli_main(
                [
                    "batch",
                    "--category",
                    "mcnc",
                    "--files",
                    str(tmp_path / "*.blif"),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        names = [c["benchmark"] for c in payload["circuits"]]
        assert names == [*benchmark_keys("mcnc"), "zz_extra"]

    def test_batch_cache_policy_flag(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert (
            cli_main(
                ["batch", "--benchmarks", "f51m", "--cache-policy", "lru", "--format", "csv"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("benchmark,flow,status,")


class TestEmptyBatch:
    """A source resolving to zero items is a valid (vacuous) batch."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_empty_input_returns_empty_report(self, workers):
        report = run_batch([], BatchConfig(workers=workers))
        assert report.circuits == []
        assert report.flow == "bds-maj"

    def test_empty_report_serializes(self):
        report = run_batch([], BatchConfig(workers=8))
        payload = json.loads(report.to_json())
        assert payload["circuits"] == []
        assert payload["summary"]["circuits"] == 0
        assert payload["summary"]["ok"] == 0
        assert payload["summary"]["cache_hit_rate"] == 0.0
        lines = report.to_csv().splitlines()
        assert len(lines) == 1  # header only
        assert lines[0].startswith("benchmark,flow,status,")

    def test_empty_registry_source(self):
        from repro.api import RegistrySource

        report = run_batch(RegistrySource([]), BatchConfig(workers=4))
        assert report.circuits == []


class TestCancellation:
    def test_serial_cancel_before_first_circuit(self):
        with pytest.raises(BatchCancelled):
            run_batch(["f51m", "alu2"], BatchConfig(), cancel=lambda: True)

    def test_serial_cancel_between_circuits(self):
        seen: list[str] = []
        with pytest.raises(BatchCancelled, match="after 1 of 2"):
            run_batch(
                ["f51m", "alu2"],
                BatchConfig(),
                progress=seen.append,
                cancel=lambda: len(seen) >= 1,
            )
        assert len(seen) == 1  # alu2 never started

    def test_serial_cancel_mid_circuit_between_stages(self):
        """A serial batch polls the hook before every pipeline stage,
        so a single-circuit job can still be cancelled mid-flight."""
        stages_seen: list[str] = []

        def stage_progress(_benchmark, event):
            if event.kind == "stage_end":
                stages_seen.append(event.stage)

        with pytest.raises(BatchCancelled, match="while synthesizing 'f51m'"):
            run_batch(
                ["f51m"],
                BatchConfig(),
                cancel=lambda: len(stages_seen) >= 2,
                stage_progress=stage_progress,
            )
        # It stopped partway through the pipeline, not after the circuit.
        assert len(stages_seen) == 2

    def test_parallel_cancel_reaps_pool(self):
        with pytest.raises(BatchCancelled):
            run_batch(
                ["f51m", "alu2", "vda"],
                BatchConfig(workers=2),
                cancel=lambda: True,
            )

    def test_no_cancel_hook_is_unchanged(self):
        report = run_batch(["f51m"], BatchConfig(), cancel=None)
        assert report.circuits[0].ok


class TestPoolLifecycle:
    def test_clean_exit_closes_pool(self):
        from repro.flows import batch_pool

        with batch_pool(2) as pool:
            assert pool.map(len, (["a"], ["b", "c"])) == [1, 2]
        with pytest.raises(ValueError):
            pool.apply(len, (["d"],))  # closed and joined

    def test_keyboard_interrupt_terminates_pool(self):
        """Ctrl-C mid-batch must reap the workers before propagating."""
        from repro.flows import batch_pool

        with pytest.raises(KeyboardInterrupt):
            with batch_pool(2) as pool:
                raise KeyboardInterrupt
        with pytest.raises(ValueError):
            pool.apply(len, (["d"],))  # terminated and joined

    def test_cancellation_terminates_pool(self):
        from repro.flows import batch_pool

        with pytest.raises(BatchCancelled):
            with batch_pool(2) as pool:
                raise BatchCancelled("stop")
        with pytest.raises(ValueError):
            pool.apply(len, (["d"],))


class TestStageProgress:
    def test_serial_batch_streams_stage_events(self):
        events: list[tuple[str, object]] = []
        run_batch(
            ["f51m"],
            BatchConfig(),
            stage_progress=lambda benchmark, event: events.append((benchmark, event)),
        )
        assert events and all(benchmark == "f51m" for benchmark, _ in events)
        kinds = [event.kind for _, event in events]
        assert kinds.count("stage_start") == kinds.count("stage_end")
        starts = [event.stage for _, event in events if event.kind == "stage_start"]
        assert "decompose" in starts
        ends = [event for _, event in events if event.kind == "stage_end"]
        assert all(event.seconds is not None for event in ends)

    def test_stage_events_cover_the_optimize_prefix(self):
        from repro.api import get_pipeline

        streamed: list[object] = []
        run_batch(
            ["f51m"],
            BatchConfig(),
            stage_progress=lambda _benchmark, event: streamed.append(event),
        )
        stage_names = get_pipeline("bds-maj").optimize_prefix().stage_names()
        expected = sorted(
            (kind, name)
            for name in stage_names
            for kind in ("stage_start", "stage_end")
        )
        assert sorted((e.kind, e.stage) for e in streamed) == expected


class TestCacheCapacity:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BatchConfig(cache_capacity=0)
        with pytest.raises(ValueError):
            BatchConfig(cache_capacity=-5)

    def test_default_capacity_keeps_counters(self):
        from repro.bdd.manager import DEFAULT_CACHE_CAPACITY

        default = run_batch(["f51m"], BatchConfig())
        explicit = run_batch(
            ["f51m"], BatchConfig(cache_capacity=DEFAULT_CACHE_CAPACITY)
        )
        assert default.to_json() == explicit.to_json()

    def test_tiny_capacity_still_correct_but_evicts(self):
        tiny = run_batch(["f51m"], BatchConfig(cache_capacity=16, verify=True))
        circuit = tiny.circuits[0]
        assert circuit.ok and circuit.verified is True
        assert circuit.cache["evictions"] > 0
        # Node counts are a function of the circuit, not the cache.
        reference = run_batch(["f51m"], BatchConfig()).circuits[0]
        assert circuit.node_counts == reference.node_counts
