"""Integration tests: the four synthesis flows on real circuits.

Every flow must (a) preserve the function — checked exhaustively for
small circuits — and (b) expose the qualitative relationships the paper
reports (MAJ nodes only in BDS-MAJ, node reduction vs BDS-PGA, ...).
"""

from __future__ import annotations

import pytest

from repro.benchgen import build_benchmark, ripple_carry_adder, wallace_multiplier
from repro.benchgen.random_logic import random_control_network, random_pla_network
from repro.flows import (
    FLOWS,
    AbcFlowConfig,
    BdsFlowConfig,
    DcFlowConfig,
    abc_flow,
    bds_optimize,
    bdsmaj_flow,
    bdspga_flow,
    dc_flow,
)
from repro.network import check_equivalence


@pytest.fixture(scope="module")
def adder():
    return ripple_carry_adder(5)


@pytest.fixture(scope="module")
def control():
    return random_control_network("ctl", 10, 5, 60, seed=77)


class TestBdsMajFlow:
    def test_adder_equivalent_and_uses_maj(self, adder):
        result = bdsmaj_flow(adder)
        assert result.equivalence is not None and result.equivalence.equivalent
        assert result.node_counts["maj"] > 0, "carry chain must yield MAJ nodes"

    def test_mapped_network_uses_maj_cells(self, adder):
        result = bdsmaj_flow(adder)
        assert result.mapped.cell_histogram().get("maj3", 0) > 0

    def test_control_logic_equivalent(self, control):
        result = bdsmaj_flow(control)
        assert result.equivalence.equivalent

    def test_node_counts_track_tree(self, adder):
        result = bdsmaj_flow(adder)
        assert result.total_nodes == sum(result.node_counts.values())
        assert set(result.node_counts) == {"and", "or", "xor", "xnor", "maj"}


class TestBdsPgaFlow:
    def test_never_emits_maj(self, adder, control):
        for net in (adder, control):
            result = bdspga_flow(net)
            assert result.node_counts["maj"] == 0
            assert result.mapped.cell_histogram().get("maj3", 0) == 0
            assert result.equivalence.equivalent

    def test_maj_flow_not_worse_on_datapath(self, adder):
        """Table I in miniature: BDS-MAJ total nodes <= BDS-PGA on an
        adder (the motivating datapath circuit)."""
        with_maj = bdsmaj_flow(adder)
        without = bdspga_flow(adder)
        assert with_maj.total_nodes <= without.total_nodes

    def test_shared_config_objects_not_required(self, adder):
        config = BdsFlowConfig()
        result = bdspga_flow(adder, config)
        assert result.node_counts["maj"] == 0


class TestAbcFlow:
    def test_equivalent(self, adder, control):
        for net in (adder, control):
            result = abc_flow(net)
            assert result.equivalence.equivalent

    def test_quick_mode_equivalent(self, adder):
        result = abc_flow(adder, AbcFlowConfig(quick=True))
        assert result.equivalence.equivalent

    def test_xor_recovered_but_maj_hidden(self, adder):
        """ABC's Boolean matcher recovers XOR cells, but majority
        structures stay hidden in the AND/INV mass (Section V.B.1)."""
        result = abc_flow(adder)
        histogram = result.mapped.cell_histogram()
        assert histogram.get("xor2", 0) + histogram.get("xnor2", 0) > 0
        assert histogram.get("maj3", 0) == 0


class TestDcFlow:
    def test_equivalent(self, adder, control):
        for net in (adder, control):
            result = dc_flow(net)
            assert result.equivalence.equivalent

    def test_preserves_rtl_xor(self, adder):
        """DC-like flow keeps RTL XOR gates -> XOR cells in the mapping."""
        result = dc_flow(adder)
        histogram = result.mapped.cell_histogram()
        assert histogram.get("xor2", 0) + histogram.get("xnor2", 0) > 0

    def test_never_emits_maj_cells(self, adder):
        result = dc_flow(adder)
        assert result.mapped.cell_histogram().get("maj3", 0) == 0

    def test_pla_collapse_helps(self):
        """On PLA-ish logic the collapsing flow must not blow up."""
        net = random_pla_network("pla", 10, 6, 40, seed=5)
        result = dc_flow(net)
        assert result.equivalence.equivalent


class TestFlowRegistry:
    def test_four_flows_in_paper_order(self):
        assert list(FLOWS) == ["bds-maj", "bds-pga", "abc", "dc"]

    def test_all_flows_on_small_alu(self):
        net = build_benchmark("alu2")
        rows = {}
        for name, flow in FLOWS.items():
            result = flow(net)
            assert result.equivalence.equivalent, name
            rows[name] = result.table2_row()
        # The headline claim, in miniature: BDS-MAJ smallest area.
        areas = {name: row[0] for name, row in rows.items()}
        assert areas["bds-maj"] == min(areas.values())
        assert areas["bds-maj"] < areas["bds-pga"]


class TestTrace:
    def test_stage_trace_populated(self, adder):
        decomposed, counts, trace = bds_optimize(adder)
        assert trace.supernodes > 0
        assert trace.majority_steps > 0
        assert trace.tree_nodes == sum(counts.values())


@pytest.mark.slow
class TestWallaceEndToEnd:
    def test_wallace8_all_flows(self):
        net = wallace_multiplier(8)
        maj_nodes = {}
        for name, flow in FLOWS.items():
            result = flow(net)
            assert result.equivalence.equivalent, name
            maj_nodes[name] = result.node_counts.get("maj", 0)
        assert maj_nodes["bds-maj"] > 0
        assert maj_nodes["bds-pga"] == 0
