"""Golden regression: the published batch report for all 10 MCNC
circuits, pinned byte-for-byte.

``golden_batch_mcnc.json`` was captured from ``bdsmaj batch --category
mcnc`` before the dynamic-reordering subsystem landed.  The default
policy (``reorder="once"``) must keep node counts, decomposition steps
and cache counters **byte-identical** to that capture — the new
``converge``/``dynamic`` policies are strictly opt-in, and nothing
published shifts.

If an intentional change moves these numbers, regenerate the golden
with::

    PYTHONPATH=src python -m repro.experiments.cli batch --category mcnc \
        --output tests/flows/golden_batch_mcnc.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.benchgen.registry import benchmark_keys
from repro.flows import BatchConfig, WarmPoolManager, run_batch

GOLDEN = Path(__file__).with_name("golden_batch_mcnc.json")


def test_mcnc_batch_report_is_byte_identical_to_golden():
    report = run_batch(benchmark_keys("mcnc"), BatchConfig())
    assert report.to_json() == GOLDEN.read_text()


def test_warm_pool_mcnc_batch_matches_golden():
    """The warm-serving path (reused worker pools, 4 workers) must pin
    to the very same golden bytes as the cold serial run — parked pools
    change latency, never the report."""
    manager = WarmPoolManager()
    try:
        report = run_batch(
            benchmark_keys("mcnc"), BatchConfig(workers=4), pool=manager
        )
    finally:
        manager.drain()
    assert report.to_json() == GOLDEN.read_text()


def test_golden_covers_all_ten_mcnc_circuits_cleanly():
    payload = json.loads(GOLDEN.read_text())
    assert [c["benchmark"] for c in payload["circuits"]] == benchmark_keys("mcnc")
    assert payload["summary"]["circuits"] == 10
    assert payload["summary"]["failed"] == 0
