"""Golden regression: the published batch report for all 10 MCNC
circuits, pinned byte-for-byte.

``golden_batch_mcnc.json`` was captured from ``bdsmaj batch --category
mcnc`` before the dynamic-reordering subsystem landed.  The default
policy (``reorder="once"``) must keep node counts, decomposition steps
and cache counters **byte-identical** to that capture — the new
``converge``/``dynamic`` policies are strictly opt-in, and nothing
published shifts.

If an intentional change moves these numbers, regenerate the golden
with::

    PYTHONPATH=src python -m repro.experiments.cli batch --category mcnc \
        --output tests/flows/golden_batch_mcnc.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bdd import BDD, BddArena, SharedNodeStore, WorkerArenaSpec
from repro.bdd.arena import attach_worker_arena
from repro.benchgen import build_benchmark
from repro.benchgen.registry import benchmark_keys
from repro.flows import BatchConfig, WarmPoolManager, run_batch
from repro.network import global_bdds

GOLDEN = Path(__file__).with_name("golden_batch_mcnc.json")

#: The arena snapshot used by the shared-store goldens: the small MCNC
#: circuits whose global BDDs build quickly (the serve layer's default).
_ARENA_CIRCUITS = ("alu2", "f51m", "misex3", "vda")


def _publish_arena_and_store() -> tuple[BddArena, SharedNodeStore]:
    """An arena over :data:`_ARENA_CIRCUITS` plus a shared store seeded
    with the arena's variable order — the pair the serve layer installs."""
    manager = BDD([])
    roots: dict[str, int] = {}
    for name in _ARENA_CIRCUITS:
        network = build_benchmark(name)
        manager, edges = global_bdds(network, mgr=manager, max_nodes=500_000)
        for output, edge in edges.items():
            roots[f"{name}/{output}"] = edge
    arena = BddArena.publish(manager, roots)
    store = SharedNodeStore.create(manager.var_names)
    return arena, store


def test_mcnc_batch_report_is_byte_identical_to_golden():
    report = run_batch(benchmark_keys("mcnc"), BatchConfig())
    assert report.to_json() == GOLDEN.read_text()


def test_warm_pool_mcnc_batch_matches_golden():
    """The warm-serving path (reused worker pools, 4 workers) must pin
    to the very same golden bytes as the cold serial run — parked pools
    change latency, never the report."""
    manager = WarmPoolManager()
    try:
        report = run_batch(
            benchmark_keys("mcnc"), BatchConfig(workers=4), pool=manager
        )
    finally:
        manager.drain()
    assert report.to_json() == GOLDEN.read_text()


def test_shared_store_verify_is_byte_identical_to_private_verify():
    """Serial verified run, store off vs store on: the writable shared
    unique table only accelerates the boolean ``verified`` answer —
    every node count, decomposition step and op-cache counter in the
    report must stay byte-identical.  Synthesis always runs on private
    managers; the store hosts only the verify cones."""
    config = BatchConfig(verify=True)
    private = run_batch(benchmark_keys("mcnc"), config).to_json()
    arena, store = _publish_arena_and_store()
    try:
        attach_worker_arena(WorkerArenaSpec(arena=arena, store=store))
        try:
            shared = run_batch(benchmark_keys("mcnc"), config).to_json()
            # The store really was exercised: verify rebuilt cones into
            # it (read before detaching — that closes the owner view).
            counters = store.counters()
        finally:
            attach_worker_arena(None)
        assert shared == private
        assert counters["nodes"] > 1
        assert counters["misses"] > 0
    finally:
        arena.unlink()
        store.unlink()


def test_shared_store_warm_pool_verify_matches_serial_bytes():
    """Four pool workers sharing one writable unique table produce the
    same verified-report bytes as the serial private run — cross-worker
    find-or-create changes who allocates a node, never what any report
    says."""
    private = run_batch(benchmark_keys("mcnc"), BatchConfig(verify=True)).to_json()
    arena, store = _publish_arena_and_store()
    manager = WarmPoolManager(
        arena_name=WorkerArenaSpec(arena=arena.name, store=store.handle())
    )
    try:
        report = run_batch(
            benchmark_keys("mcnc"),
            BatchConfig(verify=True, workers=4),
            pool=manager,
        )
        assert report.to_json() == private
        assert store.count > 1
    finally:
        manager.drain()
        arena.unlink()
        store.unlink()


def test_golden_covers_all_ten_mcnc_circuits_cleanly():
    payload = json.loads(GOLDEN.read_text())
    assert [c["benchmark"] for c in payload["circuits"]] == benchmark_keys("mcnc")
    assert payload["summary"]["circuits"] == 10
    assert payload["summary"]["failed"] == 0
