"""Setup shim for environments whose pip requires the legacy build path."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["bdsmaj=repro.experiments.cli:main"]},
    python_requires=">=3.10",
)
