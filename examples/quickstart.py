#!/usr/bin/env python3
"""Quickstart: decompose one function with majority logic.

Reproduces the paper's running example (Sections III.B-III.D): the
3-input majority F = ab + bc + ac is decomposed as Maj(Fa, Fb, Fc) via
its m-dominator, the Theorem 3.3 generalized-cofactor seeds, and one
round of cyclic balancing — ending at the literal triple Maj(a, b, c).

Run:  python examples/quickstart.py
"""

from repro.bdd import BDD
from repro.bdd.substitute import function_at
from repro.core import construct, decompose_majority, find_m_dominators, optimize


def main() -> None:
    # 1. Build the function as a BDD (variable order c, b, a — the
    #    order the paper's Figure 1 is drawn in).
    mgr = BDD(["c", "b", "a"])
    f = mgr.from_expr("a & b | b & c | a & c")
    print(f"F = ab + bc + ac, BDD size {mgr.size(f)}")

    # 2. alpha-phase: find the non-trivial m-dominators (Figure 1).
    candidates = find_m_dominators(mgr, f)
    print(f"m-dominator candidates: {len(candidates)}")
    fa = function_at(mgr, candidates[0].node)
    print(f"Fa = {mgr.top_var_name(fa)} (a literal, as in the paper's Figure 1)")

    # 3. beta-phase: construct Fb, Fc (Theorems 3.2/3.3).
    decomposition = construct(mgr, f, fa)
    print(
        "after construction: |Fa|, |Fb|, |Fc| =",
        decomposition.sizes(mgr),
        "(Fb = b + c, Fc = bc)",
    )

    # 4. gamma-phase: cyclic balancing (Theorem 3.4).
    optimized = optimize(mgr, f, decomposition)
    print("after balancing:   |Fa|, |Fb|, |Fc| =", optimized.sizes(mgr))

    # 5. The one-call interface does all of the above (Algorithm 1).
    best = decompose_majority(mgr, f)
    assert best is not None
    rebuilt = mgr.maj(*best.parts())
    print(f"Maj(Fa, Fb, Fc) == F : {rebuilt == f}")
    print("=> F = Maj(a, b, c)")


if __name__ == "__main__":
    main()
