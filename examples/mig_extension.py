#!/usr/bin/env python3
"""From BDS-MAJ to Majority-Inverter Graphs — the paper's legacy.

BDS-MAJ (DAC'13) introduced BDD-driven majority decomposition; its
authors' follow-up work turned the idea into a full logic
representation, the MIG (DAC'14).  This example connects the two:

1. a carry-lookahead adder is decomposed by the BDS-MAJ engine;
2. the resulting factoring trees are re-expressed as a MIG, where the
   discovered MAJ nodes become native majority nodes;
3. MIG algebraic rewriting (the Omega axioms) reduces depth;
4. the MIG round-trips back to a verified gate-level network.

Run:  python examples/mig_extension.py
"""

from repro.benchgen import carry_lookahead_adder
from repro.flows import BdsFlowConfig, bds_optimize
from repro.mig import mig_to_network, network_to_mig, rewrite_depth, trees_to_mig
from repro.network import check_equivalence


def main() -> None:
    network = carry_lookahead_adder(16, name="cla16")
    print(f"input: {network.name}, {network.num_nodes} SOP nodes")

    # Run the BDS-MAJ optimization and capture the factoring trees.
    from repro.core import DecompositionEngine, TreeBuilder
    from repro.network import partition_with_bdds

    config = BdsFlowConfig()
    builder = TreeBuilder()
    roots = {}
    for supernode, mgr, root in partition_with_bdds(network, config.partition):
        engine = DecompositionEngine(mgr, builder, config.engine)
        roots[supernode.output] = engine.decompose(root)
    counts = builder.count_ops(roots.values())
    print(f"BDS-MAJ decomposition: {counts}")

    # Trees -> MIG: MAJ nodes become native majorities.
    mig = trees_to_mig(builder, roots, list(network.inputs))
    print(f"as MIG: {mig.size()} majority nodes, depth {mig.depth()}")

    # Compare against the naive translation of the *original* network.
    naive = network_to_mig(network)
    print(f"naive network->MIG: {naive.size()} nodes, depth {naive.depth()}")

    # Algebraic depth rewriting (Omega.A).
    shallower = rewrite_depth(mig, passes=4)
    print(f"after Omega rewriting: {shallower.size()} nodes, depth {shallower.depth()}")

    # Round-trip and verify: attach the original outputs.
    back = mig_to_network(shallower, name=network.name)
    # mig outputs were added per supernode root; restrict to POs.
    verdict = check_equivalence(network, _project(back, network))
    print(f"verified against the original adder: {verdict.method} -> "
          f"{'equivalent' if verdict.equivalent else 'MISMATCH'}")


def _project(mig_network, reference):
    """Keep only the reference's primary outputs (the MIG carries every
    supernode root as an output)."""
    from repro.network import LogicNetwork

    projected = LogicNetwork(mig_network.name)
    for name in mig_network.inputs:
        projected.add_input(name)
    for name in mig_network.node_names:
        node = mig_network.node(name)
        projected.add_node(node.name, node.fanins, node.cover, node.inverted)
    for output in reference.outputs:
        projected.add_output(output)
    projected.sweep_dangling()
    return projected


if __name__ == "__main__":
    main()
