#!/usr/bin/env python3
"""BLIF in, optimized BLIF out — the tool as a drop-in BDS replacement.

BDS-MAJ's original interface is BLIF (Section V.A.1).  This example
writes a benchmark to BLIF, reads it back, synthesizes it with BDS-MAJ
and emits the decomposed network as BLIF again, verifying equivalence
at every step.  Point it at your own combinational BLIF files with
``--blif path``.

Run:  python examples/blif_roundtrip.py [--blif my_circuit.blif]
"""

import argparse
import io

from repro.benchgen import carry_lookahead_adder
from repro.flows import bdsmaj_flow
from repro.network import check_equivalence, parse_blif, to_blif


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--blif", help="path to a combinational BLIF file")
    args = parser.parse_args()

    if args.blif:
        with open(args.blif) as stream:
            network = parse_blif(stream.read())
        print(f"read {args.blif}: {network.num_nodes} nodes")
    else:
        network = carry_lookahead_adder(16, name="cla16")
        text = to_blif(network)
        print(f"generated cla16 and round-tripped it through BLIF "
              f"({len(text.splitlines())} lines)")
        network = parse_blif(text)

    result = bdsmaj_flow(network)
    print(
        f"BDS-MAJ: {result.total_nodes} nodes "
        f"{result.node_counts}, mapped to {result.timing.gate_count} cells, "
        f"{result.timing.area:.2f} um2, {result.timing.delay:.3f} ns"
    )

    optimized_blif = to_blif(result.optimized)
    reparsed = parse_blif(optimized_blif)
    verdict = check_equivalence(network, reparsed)
    print(f"optimized BLIF re-parsed and verified: {verdict.method} -> "
          f"{'equivalent' if verdict.equivalent else 'MISMATCH'}")
    buffer = io.StringIO()
    buffer.write(optimized_blif)
    print(f"(optimized netlist is {len(optimized_blif.splitlines())} BLIF lines)")


if __name__ == "__main__":
    main()
