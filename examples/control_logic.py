#!/usr/bin/env python3
"""Random control logic: the AND/OR-intensive side of the comparison.

The paper claims BDS-MAJ handles random control logic well *too* (the
majority decomposition also restructures AND/OR-heavy functions).  This
example synthesizes a PLA-style control block and a random gate-level
controller and reports how often the majority step fires outside of
datapath circuits.

Run:  python examples/control_logic.py
"""

from repro.benchgen import random_control_network, random_pla_network
from repro.flows import BdsFlowConfig, bds_optimize, bdsmaj_flow, bdspga_flow


def main() -> None:
    circuits = [
        random_pla_network("pla_ctl", num_inputs=14, num_outputs=10, num_terms=90, seed=7),
        random_control_network("gate_ctl", num_inputs=24, num_outputs=12, num_nodes=220, seed=9),
    ]
    for network in circuits:
        print(f"== {network.name}: {network.num_nodes} nodes ==")
        _, counts, trace = bds_optimize(network, BdsFlowConfig())
        print(
            f"   decomposition steps: {trace.majority_steps} MAJ, "
            f"{trace.and_or_steps} AND/OR, {trace.xor_steps} XOR, "
            f"{trace.mux_steps} MUX"
        )
        with_maj = bdsmaj_flow(network)
        without = bdspga_flow(network)
        print(
            f"   BDS-MAJ {with_maj.total_nodes} nodes "
            f"({with_maj.node_counts.get('maj', 0)} MAJ) vs "
            f"BDS-PGA {without.total_nodes} nodes"
        )
        area_maj, _, delay_maj = with_maj.table2_row()
        area_pga, _, delay_pga = without.table2_row()
        print(
            f"   mapped: {area_maj:.2f} um2 / {delay_maj:.3f} ns vs "
            f"{area_pga:.2f} um2 / {delay_pga:.3f} ns"
        )
        assert with_maj.equivalence.equivalent and without.equivalence.equivalent


if __name__ == "__main__":
    main()
