#!/usr/bin/env python3
"""Datapath synthesis: the paper's motivating scenario.

Synthesizes a 16-bit multiply-accumulate unit (one of the Table I/II
HDL benchmarks) with all four flows and prints a Table-II-style
comparison.  XOR/MAJ-intensive datapath logic is exactly where BDS-MAJ
shines: watch the MAJ3 cell count and the area gap.

Run:  python examples/datapath_synthesis.py  [--width 8]
"""

import argparse

from repro.benchgen import multiply_accumulate
from repro.flows import FLOWS


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--width", type=int, default=8, help="operand width (8 runs in seconds)"
    )
    args = parser.parse_args()

    network = multiply_accumulate(args.width, name=f"mac{args.width}")
    print(
        f"MAC {args.width}x{args.width}+{2 * args.width}: "
        f"{network.num_nodes} SOP nodes, {len(network.inputs)} inputs"
    )
    print(f"{'flow':8s} {'area um2':>9s} {'gates':>6s} {'delay ns':>9s} "
          f"{'MAJ3':>5s} {'XOR2+XNOR2':>11s} {'opt s':>6s}")
    for name, flow in FLOWS.items():
        result = flow(network)
        histogram = result.mapped.cell_histogram()
        area, gates, delay = result.table2_row()
        print(
            f"{name:8s} {area:9.2f} {gates:6d} {delay:9.3f} "
            f"{histogram.get('maj3', 0):5d} "
            f"{histogram.get('xor2', 0) + histogram.get('xnor2', 0):11d} "
            f"{result.optimize_seconds:6.2f}"
        )
        assert result.equivalence is not None and result.equivalence.equivalent


if __name__ == "__main__":
    main()
