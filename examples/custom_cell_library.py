#!/usr/bin/env python3
"""Characterize your own cell library and map against it.

The paper's library is six cells at 22 nm; this example shows the
library API: build a custom library (here a hypothetical 7 nm point
with a fast MAJ cell), synthesize the same circuit against both, and
compare the mapped results — including the NAND-only ablation that
demonstrates why direct MAJ/XOR assignment needs the cells to exist.

Run:  python examples/custom_cell_library.py
"""

from repro.benchgen import multiply_accumulate
from repro.flows import BdsFlowConfig, bdsmaj_flow
from repro.mapping import Cell, CellLibrary, cmos22_library, nand_only_library


def finfet7_library() -> CellLibrary:
    """A denser, faster (hypothetical) 7 nm characterization."""
    library = CellLibrary("finfet7")
    library.add(Cell("INV_7", "inv", 1, area=0.020, delay=0.004, load_delay=0.0008))
    library.add(Cell("NAND2_7", "nand2", 2, area=0.031, delay=0.006, load_delay=0.0009))
    library.add(Cell("NOR2_7", "nor2", 2, area=0.031, delay=0.008, load_delay=0.0011))
    library.add(Cell("XOR2_7", "xor2", 2, area=0.061, delay=0.011, load_delay=0.0011))
    library.add(Cell("XNOR2_7", "xnor2", 2, area=0.061, delay=0.011, load_delay=0.0011))
    # The point of this example: a MAJ cell that is *relatively* cheaper
    # than at 22 nm (majority gates shine in emerging technologies —
    # the motivation behind the MIG line of research).
    library.add(Cell("MAJ3_7", "maj3", 3, area=0.066, delay=0.012, load_delay=0.0012))
    library.add(Cell("TIE0_7", "tie0", 0, 0.0, 0.0, 0.0))
    library.add(Cell("TIE1_7", "tie1", 0, 0.0, 0.0, 0.0))
    return library


def main() -> None:
    network = multiply_accumulate(6, name="mac6")
    print(f"circuit: {network.name} ({network.num_nodes} nodes)\n")
    print(f"{'library':10s} {'area':>9s} {'gates':>6s} {'delay ns':>9s} {'MAJ3':>5s}")
    for library in (cmos22_library(), finfet7_library(), nand_only_library()):
        result = bdsmaj_flow(network, BdsFlowConfig(library=library))
        area, gates, delay = result.table2_row()
        maj_cells = result.mapped.cell_histogram().get("maj3", 0)
        print(f"{library.name:10s} {area:9.3f} {gates:6d} {delay:9.4f} {maj_cells:5d}")
        assert result.equivalence is not None and result.equivalence.equivalent
    print(
        "\nNote how the NAND-only ablation loses the MAJ3/XOR2 cells and "
        "pays for it in area — the direct-assignment step of Section "
        "V.B.1 requires the library to cooperate."
    )


if __name__ == "__main__":
    main()
