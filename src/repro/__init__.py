"""repro — a reproduction of BDS-MAJ (Amarù, Gaillardon, De Micheli, DAC 2013).

BDS-MAJ is a BDD-based logic synthesis tool that adds *majority logic
decomposition* (``F = Maj(Fa, Fb, Fc)``) to the BDS/BDS-PGA family of
BDD decomposition systems.  This package reimplements the whole stack
in pure Python:

* :mod:`repro.bdd` — ROBDD engine with complemented 0-edges,
  generalized cofactors and dominator analysis;
* :mod:`repro.core` — the paper's contribution: m-dominators, majority
  decomposition (Algorithm 1, Theorems 3.1-3.4) and the combined
  BDS+MAJ decomposition engine with factoring trees;
* :mod:`repro.network` — Boolean networks, BLIF I/O, simulation,
  partitioning into supernodes;
* :mod:`repro.sop` — two-level covers and algebraic factoring
  (Design-Compiler-like baseline);
* :mod:`repro.aig` — AIG optimization (ABC-like baseline);
* :mod:`repro.mapping` — 22 nm-style cell library, structural and
  cut-based Boolean-matching mappers, STA;
* :mod:`repro.api` — the public composable pipeline API: stages,
  pipelines, the flow registry, pluggable input sources and observer
  hooks (start here; ``repro.flows`` is a compatibility shim over it);
* :mod:`repro.flows` — the four synthesis flows compared in the paper;
* :mod:`repro.benchgen` — the 17 Table I/II benchmark circuits plus
  extra arithmetic generators;
* :mod:`repro.mig` — Majority-Inverter Graphs (the paper's future-work
  extension);
* :mod:`repro.experiments` — Table I / Table II / Figure harnesses.
"""

__version__ = "1.0.0"

from . import bdd

__all__ = ["bdd", "__version__"]
