"""JSON wire format of the serving layer.

One module owns every byte that crosses the HTTP boundary: submission
parsing/validation (:func:`parse_submission`), job status payloads
(:func:`job_payload`), and the newline-delimited event encoding the
``/jobs/<id>/events`` endpoint streams (:func:`encode_event_line`).

Job *results* intentionally bypass this module: the server returns
:meth:`BatchReport.to_json` / ``to_csv`` bytes verbatim, so a served
report is byte-identical to what ``bdsmaj batch`` writes for the same
circuits.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from ..bdd.manager import DEFAULT_CACHE_CAPACITY
from .jobs import Job, JobRequest

#: Schema tag of every status/list/health payload.
SCHEMA = "bdsmaj-serve/v1"

#: Submission fields a client may set (anything else is a hard error —
#: a typoed knob silently ignored would change what gets synthesized).
#: Derived from the request dataclass so the two can never disagree.
_SUBMISSION_FIELDS = frozenset(
    field.name for field in dataclasses.fields(JobRequest)
)


class WireError(ValueError):
    """A client-side protocol error, carrying the HTTP status to answer
    with (400 unless stated otherwise) plus any extra response headers
    (``Retry-After`` on 429, ``WWW-Authenticate`` on 401, ...)."""

    def __init__(
        self,
        message: str,
        status: int = 400,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


def _int_field(payload: dict[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    # bool is an int subclass; accepting it would make {"workers": true}
    # mean one worker, which is never what the client meant.
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{key!r} must be an integer, got {value!r}")
    return value


def parse_submission(raw: bytes) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    The wire layer owns the *structural* checks (JSON shape, unknown
    fields, types); the value checks — known flow and cache policy,
    positive worker/capacity counts — are delegated to
    :class:`~repro.flows.BatchConfig`, the single owner of those rules,
    by building the equivalent config once.
    """
    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise WireError("body must be a JSON object")
    unknown = sorted(set(payload) - _SUBMISSION_FIELDS)
    if unknown:
        raise WireError(
            f"unknown submission fields: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_SUBMISSION_FIELDS))})"
        )

    circuits = payload.get("circuits")
    if isinstance(circuits, str):
        circuits = [circuits]
    if (
        not isinstance(circuits, list)
        or not circuits
        or not all(isinstance(spec, str) and spec for spec in circuits)
    ):
        raise WireError(
            "'circuits' must be a non-empty list of circuit specs "
            "(registry keys, BLIF paths or globs)"
        )

    flow = payload.get("flow", "bds-maj")
    if not isinstance(flow, str):
        raise WireError(f"'flow' must be a string, got {flow!r}")
    cache_policy = payload.get("cache_policy", "fifo")
    if not isinstance(cache_policy, str):
        raise WireError(f"'cache_policy' must be a string, got {cache_policy!r}")
    reorder = payload.get("reorder", "once")
    if not isinstance(reorder, str):
        raise WireError(f"'reorder' must be a string, got {reorder!r}")
    verify = payload.get("verify", False)
    if not isinstance(verify, bool):
        raise WireError(f"'verify' must be a boolean, got {verify!r}")

    request = JobRequest(
        circuits=tuple(circuits),
        flow=flow,
        workers=_int_field(payload, "workers", 1),
        verify=verify,
        cache_policy=cache_policy,
        cache_capacity=_int_field(payload, "cache_capacity", DEFAULT_CACHE_CAPACITY),
        reorder=reorder,
        priority=_int_field(payload, "priority", 0),
    )
    try:
        request.batch_config()
    except ValueError as exc:
        raise WireError(str(exc)) from None
    return request


def job_payload(job: Job) -> dict[str, Any]:
    """The status dict for one job (``GET /jobs/<id>`` and the entries
    of ``GET /jobs``)."""
    return {
        "id": job.id,
        "status": job.state,
        "flow": job.request.flow,
        "circuits": [item.name for item in job.items],
        "priority": job.request.priority,
        "workers": job.request.workers,
        "reorder": job.request.reorder,
        "cancel_requested": job.cancel_requested(),
        "attempts": job.attempts,
        "events": job.total_events,
        "events_dropped": job.events_dropped,
        "error": job.error,
        "result_ready": job.report is not None,
        "cached": job.cache_hit,
    }


def encode_json(payload: dict[str, Any]) -> bytes:
    """Serialize one response body with the schema tag attached (stable
    key order, trailing newline)."""
    payload = dict(payload, schema=SCHEMA)
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def encode_event_line(payload: dict[str, Any]) -> bytes:
    """One NDJSON progress line as streamed by ``/jobs/<id>/events``."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
