"""Consistent-hash shard dispatcher: the ``bdsmaj shard`` process.

One dispatcher process spawns and supervises ``--backends N``
independent ``bdsmaj serve`` subprocesses (the *shards*), each
listening on its own ephemeral loopback port, and proxies the full job
API in front of them:

* ``POST /jobs`` routes by **content**: the dispatcher resolves the
  submission exactly like a backend would and hashes it with
  :func:`~repro.serve.cache.submission_key`, so identical circuits
  (same registry keys, same BLIF bytes, same report-affecting knobs)
  always land on the same shard — which is what makes each shard's
  result cache effective.  Uncacheable submissions route by a hash of
  the request itself; either way the mapping is a consistent-hash ring
  (:class:`HashRing`), so the shard count changing moves only ~1/N of
  the key space.
* ``GET /jobs/<id>/result`` is a **raw byte passthrough**: the body the
  backend produced is forwarded verbatim, so a served report stays
  byte-identical to what ``bdsmaj batch`` writes for the same circuits
  — the dispatcher adds routing, never different bytes.
* Status payloads and event streams are re-encoded only to namespace
  job ids: shard ``i``'s ``job-000007`` is exposed as
  ``s<i>-job-000007``, which is also how the dispatcher routes
  status/result/cancel/events lookups back to the owning shard.
* ``GET /metrics`` aggregates: per-shard payloads (so an operator can
  see *which* shard's cache answered) plus summed job tallies and
  result-cache counters, which the fixed-bucket histogram design makes
  meaningful to merge.

A supervisor task health-checks every backend (``/healthz`` probes plus
exit detection) and respawns dead ones — behind a per-backend **circuit
breaker**: a backend that dies again shortly after each respawn (within
``rapid_failure_seconds``, ``breaker_threshold`` times in a row) stops
being respawned eagerly.  Its breaker *opens* for an exponentially
growing backoff (``breaker_base_seconds`` doubling up to
``breaker_max_seconds``), then a single *half-open* probe respawn runs;
only a probe that survives the rapid-failure window *closes* the
breaker again.  A crash-looping shard therefore costs a bounded respawn
rate instead of a tight fork loop, while its requests answer 503 +
``Retry-After`` exactly like any restarting shard.  With
``--journal-dir`` each
backend keeps its own journal, so a respawned backend replays its jobs
— finished reports come back byte-identical, interrupted jobs re-run —
and the namespaced ids the dispatcher handed out stay valid across the
crash.  While a shard is down, requests owned by it answer 503 with
``Retry-After`` instead of failing over: moving a job to another shard
would abandon the journal record and split the cache key space.

The dispatcher is the auth edge: ``--auth-token`` guards its endpoints
(except ``/healthz``), while the backends trust their loopback sockets
(their inherited ``BDSMAJ_AUTH_TOKEN`` is explicitly cleared).
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import os
import re
import signal
import sys
import time
from bisect import bisect_right
from pathlib import Path
from typing import Callable

from ..api import InputSourceError, resolve_source
from .cache import submission_key
from .jobs import JobRequest
from .server import AUTH_TOKEN_ENV, DEFAULT_IDLE_TIMEOUT, AsyncHttpServer
from .wire import WireError, encode_event_line, encode_json, parse_submission

#: Virtual nodes per shard on the hash ring.  64 points per shard keeps
#: the key-space split within a few percent of even for small N while
#: the ring stays tiny (N*64 sorted ints).
DEFAULT_VNODES = 64

#: Seconds between supervisor health sweeps.
DEFAULT_HEALTH_INTERVAL = 1.0

#: Consecutive failed ``/healthz`` probes before a live-but-unresponsive
#: backend is killed and respawned.
HEALTH_FAILURE_LIMIT = 3

#: Consecutive rapid failures before a backend's breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3

#: First open-breaker backoff (seconds); doubles per consecutive open.
DEFAULT_BREAKER_BASE_SECONDS = 1.0

#: Backoff ceiling for a breaker that keeps reopening.
DEFAULT_BREAKER_MAX_SECONDS = 30.0

#: A backend death within this many seconds of its (re)start counts as
#: *rapid* — the crash-loop signal the breaker accumulates.  Surviving
#: past it closes a half-open breaker and resets the failure streak.
DEFAULT_RAPID_FAILURE_SECONDS = 5.0

#: Breaker states (per backend).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: The backend's startup line the spawner scrapes the bound port from
#: (backends run ``--port 0``; only the kernel knows the port).
_LISTEN_RE = re.compile(r"listening on http://([0-9.]+):(\d+)")

#: How a namespaced job id decomposes into (shard index, backend id).
_SHARD_ID_RE = re.compile(r"^s(\d+)-(.+)$")


class HashRing:
    """Consistent hashing over ``shards`` backends.

    Each shard contributes ``vnodes`` pseudo-random points (SHA-256 of
    a stable label) on a 64-bit ring; a key is owned by the first point
    at or after its own hash, wrapping around.  Deterministic across
    processes and restarts — routing must not depend on anything but
    the key and the shard count.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.shards = shards
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(vnodes):
                label = f"shard-{shard}-vnode-{replica}".encode("ascii")
                digest = hashlib.sha256(label).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def owner(self, key: str) -> int:
        """The shard index owning ``key``."""
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect_right(self._points, point) % len(self._points)
        return self._owners[index]


class BackendProcess:
    """One supervised ``bdsmaj serve`` subprocess."""

    def __init__(self, index: int, command: list[str], env: dict[str, str]) -> None:
        self.index = index
        self.command = command
        self.env = env
        self.process: asyncio.subprocess.Process | None = None
        self.host: str | None = None
        self.port: int | None = None
        #: Times the process has been (re)started beyond the first.
        self.restarts = -1
        self.health_failures = 0
        #: Monotonic time of the last (re)start attempt — the breaker's
        #: rapid-failure clock.
        self.started_at = 0.0
        #: Circuit-breaker state: ``closed`` (normal supervision),
        #: ``open`` (respawns suspended until :attr:`retry_at`), or
        #: ``half_open`` (one probe respawn is being judged).
        self.breaker_state = BREAKER_CLOSED
        #: Consecutive rapid failures (deaths within the rapid window).
        self.failure_streak = 0
        #: Times the breaker has opened over this backend's lifetime.
        self.breaker_opens = 0
        #: Consecutive opens without an intervening close — the backoff
        #: exponent.
        self.open_streak = 0
        #: Monotonic time an open breaker allows its half-open probe.
        self.retry_at = 0.0
        self._stderr_task: asyncio.Task | None = None

    @property
    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.returncode is None
            and self.port is not None
        )

    async def start(self, startup_timeout: float = 60.0) -> None:
        """Spawn the subprocess and scrape its bound port off stderr
        (backends bind ``--port 0``)."""
        self.host = self.port = None
        self.health_failures = 0
        self.started_at = time.monotonic()
        self.process = await asyncio.create_subprocess_exec(
            *self.command,
            env=self.env,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
        )
        self.restarts += 1
        deadline = time.monotonic() + startup_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                await self.stop(grace=0.0)
                raise RuntimeError(
                    f"shard backend {self.index} reported no port within "
                    f"{startup_timeout:.0f}s"
                )
            line = await asyncio.wait_for(self.process.stderr.readline(), remaining)
            if not line:
                code = await self.process.wait()
                raise RuntimeError(
                    f"shard backend {self.index} exited with code {code} "
                    "before listening"
                )
            match = _LISTEN_RE.search(line.decode("utf-8", "replace"))
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                break
        # Keep draining stderr so the pipe never fills up and blocks the
        # backend; the task ends itself at EOF when the process exits.
        self._stderr_task = asyncio.ensure_future(self._drain_stderr())

    async def _drain_stderr(self) -> None:
        try:
            # An unbounded read is the point here: the task exists to
            # drain the pipe for the process' whole lifetime and ends
            # at EOF when the process exits (or via cancellation in
            # ``stop``); a timeout would only make it spin.
            while await self.process.stderr.readline():  # bdslint: disable=RES004 -- lifetime-bound drain task, terminated by EOF or stop()'s cancel
                pass
        except (OSError, ValueError):  # pipe torn down under us
            pass

    async def stop(self, grace: float = 5.0) -> None:
        """SIGTERM (the backend's graceful shutdown journals its live
        jobs as cancelled), escalating to SIGKILL after ``grace``."""
        process = self.process
        if process is None:
            return
        if process.returncode is None:
            process.terminate()  # bdslint: disable=ASY004 -- asyncio.subprocess.Process.terminate() only sends SIGTERM; it never waits for the child
            try:
                await asyncio.wait_for(process.wait(), grace)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
        if self._stderr_task is not None:
            self._stderr_task.cancel()
            try:
                await self._stderr_task
            except asyncio.CancelledError:
                pass
            self._stderr_task = None
        self.port = None


class ShardDispatcher(AsyncHttpServer):
    """HTTP front end routing jobs across supervised serve backends."""

    def __init__(
        self,
        backends: int = 3,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_dir: "str | os.PathLike | None" = None,
        backend_concurrency: int = 2,
        result_cache_size: int | None = None,
        max_pending: int | None = None,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        auth_token: str | None = None,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        backend_args: "tuple[str, ...] | list[str]" = (),
        vnodes: int = DEFAULT_VNODES,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_base_seconds: float = DEFAULT_BREAKER_BASE_SECONDS,
        breaker_max_seconds: float = DEFAULT_BREAKER_MAX_SECONDS,
        rapid_failure_seconds: float = DEFAULT_RAPID_FAILURE_SECONDS,
    ) -> None:
        """``journal_dir`` enables per-backend journals
        (``backend-<i>.journal``) so respawned backends replay their
        jobs; ``backend_args`` appends raw extra CLI flags to every
        backend's command line (the test seam for small event caps and
        the like); the ``breaker_*``/``rapid_failure_seconds`` knobs
        tune the per-backend respawn circuit breaker (see the module
        docstring)."""
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_base_seconds <= 0 or breaker_max_seconds <= 0:
            raise ValueError("breaker backoff seconds must be > 0")
        if rapid_failure_seconds <= 0:
            raise ValueError("rapid_failure_seconds must be > 0")
        super().__init__(
            host=host, port=port, idle_timeout=idle_timeout, auth_token=auth_token
        )
        self.ring = HashRing(backends, vnodes=vnodes)
        self._journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._backend_concurrency = backend_concurrency
        self._result_cache_size = result_cache_size
        self._max_pending = max_pending
        self._backend_args = tuple(backend_args)
        self._health_interval = health_interval
        self._breaker_threshold = breaker_threshold
        self._breaker_base = breaker_base_seconds
        self._breaker_max = breaker_max_seconds
        self._rapid_window = rapid_failure_seconds
        env = self._backend_env()
        self.backends = [
            BackendProcess(index, self._backend_command(index), env)
            for index in range(backends)
        ]
        #: Jobs routed (accepted submissions) per shard.
        self.routed = [0] * backends
        #: Backends the supervisor brought back from the dead.
        self.respawns = 0
        self._supervisor_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Backend process management
    # ------------------------------------------------------------------
    def _backend_command(self, index: int) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--arena",
            "off",
            "--concurrency",
            str(self._backend_concurrency),
        ]
        if self._journal_dir is not None:
            command += ["--journal", str(self._journal_dir / f"backend-{index}.journal")]
        if self._result_cache_size is not None:
            command += ["--result-cache", str(self._result_cache_size)]
        if self._max_pending is not None:
            command += ["--max-pending", str(self._max_pending)]
        command += list(self._backend_args)
        return command

    def _backend_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # Backends must import this very checkout whether or not it is
        # pip-installed in the child's interpreter.
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        # The dispatcher is the auth edge; backends trust loopback (and
        # must not pick the token up from the inherited environment).
        env[AUTH_TOKEN_ENV] = ""
        return env

    async def start(self) -> tuple[str, int]:
        """Spawn every backend (concurrently — interpreter startup
        dominates), start the supervisor, bind the listener."""
        if self._journal_dir is not None:
            self._journal_dir.mkdir(parents=True, exist_ok=True)
        try:
            await asyncio.gather(*(backend.start() for backend in self.backends))
        except BaseException:
            await asyncio.gather(
                *(backend.stop(grace=0.0) for backend in self.backends),
                return_exceptions=True,
            )
            raise
        self._supervisor_task = asyncio.ensure_future(self._supervise())
        return await self._start_listener()

    async def shutdown(self) -> None:
        """Stop the supervisor first (it must not respawn what we are
        about to terminate), then the backends, then the listener."""
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except asyncio.CancelledError:
                pass
            self._supervisor_task = None
        if self._server is not None:
            self._server.close()
        await asyncio.gather(*(backend.stop() for backend in self.backends))
        await self._close_listener()

    async def _supervise(self) -> None:
        """Respawn exited backends; kill-and-respawn unresponsive ones
        after :data:`HEALTH_FAILURE_LIMIT` failed probes.

        Respawning runs behind each backend's circuit breaker: rapid
        deaths (within the rapid-failure window of the last start)
        accumulate a streak, the streak opens the breaker, and an open
        breaker suspends respawns for an exponentially growing backoff
        before one half-open probe is allowed.  Only a probe that
        survives the rapid window closes the breaker.
        """
        while True:
            await asyncio.sleep(self._health_interval)
            for backend in self.backends:
                now = time.monotonic()
                if backend.breaker_state == BREAKER_OPEN:
                    if now < backend.retry_at:
                        continue  # still backing off
                    backend.breaker_state = BREAKER_HALF_OPEN
                    if not await self._respawn(backend):
                        self._trip_breaker(backend, time.monotonic())
                    continue
                if (
                    backend.process is not None
                    and backend.process.returncode is not None
                ):
                    self._note_failure(backend, now)
                    if backend.breaker_state != BREAKER_OPEN and not (
                        await self._respawn(backend)
                    ):
                        self._trip_breaker(backend, time.monotonic())
                    continue
                if not backend.alive:
                    continue
                try:
                    status, _, _ = await self._backend_request(
                        backend, "GET", "/healthz", timeout=2.0
                    )
                    healthy = status == 200
                except (WireError, OSError, asyncio.TimeoutError):
                    healthy = False
                if healthy:
                    backend.health_failures = 0
                    if now - backend.started_at >= self._rapid_window:
                        self._close_breaker(backend)
                    continue
                backend.health_failures += 1
                if backend.health_failures >= HEALTH_FAILURE_LIMIT:
                    await backend.stop(grace=0.5)
                    self._note_failure(backend, now)
                    if backend.breaker_state != BREAKER_OPEN and not (
                        await self._respawn(backend)
                    ):
                        self._trip_breaker(backend, time.monotonic())

    def _note_failure(self, backend: BackendProcess, now: float) -> None:
        """Record one backend death; open the breaker once the rapid
        streak reaches the threshold."""
        rapid = now - backend.started_at < self._rapid_window
        backend.failure_streak = backend.failure_streak + 1 if rapid else 1
        if backend.failure_streak >= self._breaker_threshold:
            self._trip_breaker(backend, now)

    def _trip_breaker(self, backend: BackendProcess, now: float) -> None:
        """Open (or re-open) a backend's breaker, doubling the backoff
        per consecutive open up to the ceiling."""
        backoff = min(
            self._breaker_base * (2.0**backend.open_streak), self._breaker_max
        )
        backend.breaker_state = BREAKER_OPEN
        backend.breaker_opens += 1
        backend.open_streak += 1
        backend.retry_at = now + backoff

    def _close_breaker(self, backend: BackendProcess) -> None:
        """A backend survived the rapid window: full reset."""
        backend.breaker_state = BREAKER_CLOSED
        backend.failure_streak = 0
        backend.open_streak = 0

    async def _respawn(self, backend: BackendProcess) -> bool:
        """One respawn attempt; ``False`` means the process never even
        reached its listening line (still dead — the caller decides
        whether the breaker should take over).  While a backend is
        down its jobs answer 503 + Retry-After."""
        self.respawns += 1
        try:
            await backend.start()
        except (RuntimeError, asyncio.TimeoutError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Backend HTTP client (stdlib streams; one request per connection)
    # ------------------------------------------------------------------
    async def _backend_open(
        self,
        backend: BackendProcess,
        method: str,
        path: str,
        body: bytes = b"",
        timeout: float = 60.0,
    ) -> tuple[int, dict[str, str], asyncio.StreamReader, asyncio.StreamWriter]:
        """Send one request; returns (status, headers, reader, writer)
        with the body still unread — callers either slurp or stream it."""
        if not backend.alive:
            raise WireError(
                f"shard {backend.index} is restarting",
                status=503,
                headers={"Retry-After": "1"},
            )
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(backend.host, backend.port), timeout
            )
        except (OSError, asyncio.TimeoutError):
            raise WireError(
                f"shard {backend.index} is not accepting connections",
                status=503,
                headers={"Retry-After": "1"},
            ) from None
        try:
            request = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {backend.host}:{backend.port}\r\n"
                "Connection: close\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("latin-1") + body
            writer.write(request)
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(), timeout)
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise WireError(
                    f"shard {backend.index} answered a malformed status line",
                    status=502,
                )
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            return status, headers, reader, writer
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            writer.close()
            raise WireError(
                f"shard {backend.index} dropped the connection",
                status=502,
            ) from None
        except BaseException:
            writer.close()
            raise

    async def _backend_request(
        self,
        backend: BackendProcess,
        method: str,
        path: str,
        body: bytes = b"",
        timeout: float = 60.0,
    ) -> tuple[int, dict[str, str], bytes]:
        status, headers, reader, writer = await self._backend_open(
            backend, method, path, body, timeout
        )
        try:
            length = headers.get("content-length")
            if length is not None and length.isdigit():
                payload = await asyncio.wait_for(
                    reader.readexactly(int(length)), timeout
                )
            else:  # Connection: close framing — read to EOF
                payload = await asyncio.wait_for(reader.read(), timeout)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            raise WireError(
                f"shard {backend.index} truncated its response", status=502
            ) from None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return status, headers, payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: bytes,
        keep_alive: bool = False,
        headers: dict[str, str] | None = None,
    ) -> bool:
        segments = [part for part in path.split("/") if part]
        # /healthz stays probe-able without credentials, mirroring the
        # backends' own contract.
        if segments != ["healthz"]:
            self._check_auth(headers or {})
        if segments == ["healthz"]:
            self._require(method, "GET")
            alive = sum(1 for backend in self.backends if backend.alive)
            self._write_response(
                writer,
                200,
                encode_json(
                    {
                        "status": "ok" if alive == len(self.backends) else "degraded",
                        "backends": {"alive": alive, "total": len(self.backends)},
                    }
                ),
                keep_alive=keep_alive,
            )
        elif segments == ["metrics"]:
            self._require(method, "GET")
            await self._send_metrics(writer, keep_alive)
        elif segments == ["jobs"]:
            if method == "POST":
                await self._submit(writer, body, keep_alive)
            elif method == "GET":
                await self._list_jobs(writer, keep_alive)
            else:
                raise WireError("use GET or POST on /jobs", status=405)
        elif len(segments) in (2, 3) and segments[0] == "jobs":
            shard, local_id = self._locate(segments[1])
            backend = self.backends[shard]
            if len(segments) == 2:
                self._require(method, "GET")
                await self._proxy_json(
                    writer, backend, "GET", f"/jobs/{local_id}", shard, keep_alive
                )
            elif segments[2] == "result":
                self._require(method, "GET")
                target = f"/jobs/{local_id}/result" + self._query_suffix(query)
                await self._proxy_raw(writer, backend, "GET", target, keep_alive)
            elif segments[2] == "cancel":
                self._require(method, "POST")
                await self._proxy_json(
                    writer,
                    backend,
                    "POST",
                    f"/jobs/{local_id}/cancel",
                    shard,
                    keep_alive,
                )
            elif segments[2] == "events":
                self._require(method, "GET")
                await self._stream_events(writer, backend, local_id, shard)
                return True
            else:
                raise WireError(f"unknown job action {segments[2]!r}", status=404)
        else:
            raise WireError(f"no such endpoint: {path!r}", status=404)
        return False

    def _locate(self, job_id: str) -> tuple[int, str]:
        """Split a namespaced ``s<i>-job-NNNNNN`` id into (shard index,
        backend-local id)."""
        match = _SHARD_ID_RE.match(job_id)
        if match is None:
            raise WireError(f"no such job: {job_id!r}", status=404)
        shard = int(match.group(1))
        if shard >= len(self.backends):
            raise WireError(f"no such job: {job_id!r}", status=404)
        return shard, match.group(2)

    @staticmethod
    def _query_suffix(query: dict[str, list[str]]) -> str:
        if not query:
            return ""
        pairs = "&".join(
            f"{name}={value}" for name, values in query.items() for value in values
        )
        return f"?{pairs}"

    def _namespace(self, payload: dict, shard: int) -> dict:
        if isinstance(payload.get("id"), str):
            payload["id"] = f"s{shard}-{payload['id']}"
        return payload

    def _routing_key(self, request: JobRequest) -> str:
        """The consistent-hash key of one submission: its result-cache
        content hash when cacheable (so cache-equal submissions share a
        shard), else a hash of the request itself.  Resolution touches
        the filesystem, so callers run this on a worker thread."""
        try:
            items = [
                item
                for spec in request.circuits
                for item in resolve_source(spec).items()
            ]
        except InputSourceError as exc:
            raise WireError(str(exc)) from None
        key = submission_key(items, request.batch_config())
        if key is not None:
            return key
        canonical = json.dumps(
            dataclasses.asdict(request), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes, keep_alive: bool
    ) -> None:
        # Validate at the edge: a malformed submission never costs a
        # backend round trip (and errors mention no shard).
        request = parse_submission(body)
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(None, self._routing_key, request)
        shard = self.ring.owner(key)
        backend = self.backends[shard]
        status, resp_headers, payload = await self._backend_request(
            backend, "POST", "/jobs", body
        )
        if status == 202:
            self.routed[shard] += 1
        self._forward_json(writer, status, resp_headers, payload, shard, keep_alive)

    async def _proxy_json(
        self,
        writer: asyncio.StreamWriter,
        backend: BackendProcess,
        method: str,
        path: str,
        shard: int,
        keep_alive: bool,
    ) -> None:
        status, resp_headers, payload = await self._backend_request(
            backend, method, path
        )
        self._forward_json(writer, status, resp_headers, payload, shard, keep_alive)

    def _forward_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        resp_headers: dict[str, str],
        payload: bytes,
        shard: int,
        keep_alive: bool,
    ) -> None:
        """Forward a JSON response, namespacing any job id in it (and
        preserving the backend's ``Retry-After`` on backpressure)."""
        extra = (
            {"Retry-After": resp_headers["retry-after"]}
            if "retry-after" in resp_headers
            else None
        )
        try:
            parsed = json.loads(payload)
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = None
        if isinstance(parsed, dict):
            payload = encode_json(self._namespace(parsed, shard))
        self._write_response(
            writer, status, payload, keep_alive=keep_alive, extra_headers=extra
        )

    async def _proxy_raw(
        self,
        writer: asyncio.StreamWriter,
        backend: BackendProcess,
        method: str,
        path: str,
        keep_alive: bool,
    ) -> None:
        """Verbatim passthrough — the result endpoint's byte-identity
        contract survives the dispatcher because nothing re-encodes."""
        status, resp_headers, payload = await self._backend_request(
            backend, method, path
        )
        self._write_response(
            writer,
            status,
            payload,
            content_type=resp_headers.get("content-type", "application/json"),
            keep_alive=keep_alive,
        )

    async def _list_jobs(
        self, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        jobs: list[dict] = []
        unavailable: list[int] = []
        for shard, backend in enumerate(self.backends):
            try:
                status, _, payload = await self._backend_request(
                    backend, "GET", "/jobs"
                )
                parsed = json.loads(payload) if status == 200 else None
            except (WireError, json.JSONDecodeError, UnicodeDecodeError):
                parsed = None
            if not isinstance(parsed, dict):
                unavailable.append(shard)
                continue
            jobs.extend(
                self._namespace(job, shard)
                for job in parsed.get("jobs", [])
                if isinstance(job, dict)
            )
        self._write_response(
            writer,
            200,
            encode_json({"jobs": jobs, "unavailable_shards": unavailable}),
            keep_alive=keep_alive,
        )

    async def _send_metrics(
        self, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        shards: list[dict] = []
        cache = {"hits": 0, "misses": 0, "entries": 0}
        jobs_total: dict[str, int] = {}
        counters_total: dict[str, int] = {}
        breaker_states: dict[str, int] = {
            BREAKER_CLOSED: 0,
            BREAKER_OPEN: 0,
            BREAKER_HALF_OPEN: 0,
        }
        breaker_opens = 0
        for shard, backend in enumerate(self.backends):
            breaker_states[backend.breaker_state] += 1
            breaker_opens += backend.breaker_opens
            entry: dict = {
                "shard": shard,
                "alive": backend.alive,
                "port": backend.port,
                "restarts": max(0, backend.restarts),
                "routed": self.routed[shard],
                "breaker": {
                    "state": backend.breaker_state,
                    "failure_streak": backend.failure_streak,
                    "opens": backend.breaker_opens,
                },
                "metrics": None,
            }
            if backend.alive:
                try:
                    status, _, payload = await self._backend_request(
                        backend, "GET", "/metrics", timeout=10.0
                    )
                    if status == 200:
                        entry["metrics"] = json.loads(payload)
                except (WireError, json.JSONDecodeError, UnicodeDecodeError):
                    pass
            metrics = entry["metrics"]
            if isinstance(metrics, dict):
                shard_cache = metrics.get("result_cache") or {}
                for counter in cache:
                    cache[counter] += int(shard_cache.get(counter, 0))
                for state, count in (metrics.get("jobs") or {}).items():
                    jobs_total[state] = jobs_total.get(state, 0) + int(count)
                # Named monotonic counters (retries, timeouts, worker
                # deaths, quarantines) merge by plain addition — that is
                # the contract ServiceMetrics.counters() keeps.
                for name, count in (metrics.get("counters") or {}).items():
                    counters_total[name] = counters_total.get(name, 0) + int(count)
            shards.append(entry)
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        self._write_response(
            writer,
            200,
            encode_json(
                {
                    "backends": len(self.backends),
                    "respawns": self.respawns,
                    "jobs": jobs_total,
                    "result_cache": cache,
                    "counters": dict(sorted(counters_total.items())),
                    "breakers": {"states": breaker_states, "opens": breaker_opens},
                    "shards": shards,
                }
            ),
            keep_alive=keep_alive,
        )

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        backend: BackendProcess,
        local_id: str,
        shard: int,
    ) -> None:
        """Proxy the NDJSON event stream, rewriting each line's ``job``
        field to the namespaced id.  Ends when the backend closes (job
        terminal) — or dies, which truncates the stream exactly like a
        single server crashing would."""
        status, resp_headers, reader, upstream = await self._backend_open(
            backend, "GET", f"/jobs/{local_id}/events"
        )
        try:
            if status != 200:
                length = resp_headers.get("content-length")
                if length is not None and length.isdigit():
                    payload = await asyncio.wait_for(
                        reader.readexactly(int(length)), 60.0
                    )
                else:  # Connection: close framing — read to EOF
                    payload = await asyncio.wait_for(reader.read(), 60.0)
                self._forward_json(writer, status, resp_headers, payload, shard, False)
                return
            writer.write(self._head(200, "application/x-ndjson", None))
            while True:
                # The event stream intentionally follows the job for as
                # long as it runs — there is no honest upper bound, and
                # a dead backend closes the socket (EOF) anyway.
                line = await reader.readline()  # bdslint: disable=RES004 -- unbounded by design: stream ends at backend EOF, which process death guarantees
                if not line:
                    return
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    event = json.loads(stripped)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and isinstance(event.get("job"), str):
                    event["job"] = f"s{shard}-{event['job']}"
                writer.write(encode_event_line(event))
                await writer.drain()
        finally:
            upstream.close()
            try:
                await upstream.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _shard_until_stopped(
    dispatcher: ShardDispatcher, echo: Callable[[str], None]
) -> None:
    bound_host, bound_port = await dispatcher.start()
    echo(
        f"bdsmaj shard: listening on http://{bound_host}:{bound_port} "
        f"routing {len(dispatcher.backends)} backends "
        f"({', '.join(str(b.port) for b in dispatcher.backends)}); Ctrl-C to stop"
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        echo("bdsmaj shard: shutting down (terminating backends)")
        await dispatcher.shutdown()


def run_shard(
    host: str = "127.0.0.1",
    port: int = 8348,
    backends: int = 3,
    journal_dir: "str | os.PathLike | None" = None,
    backend_concurrency: int = 2,
    result_cache_size: int | None = None,
    max_pending: int | None = None,
    idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
    auth_token: str | None = None,
    echo: Callable[[str], None] | None = None,
) -> int:
    """Blocking entry point behind ``bdsmaj shard`` (same auth-token
    environment fallback as :func:`~repro.serve.run_server`)."""
    if echo is None:
        echo = lambda message: print(message, file=sys.stderr, flush=True)  # noqa: E731
    if auth_token is None:
        auth_token = os.environ.get(AUTH_TOKEN_ENV) or None
    dispatcher = ShardDispatcher(
        backends=backends,
        host=host,
        port=port,
        journal_dir=journal_dir,
        backend_concurrency=backend_concurrency,
        result_cache_size=result_cache_size,
        max_pending=max_pending,
        idle_timeout=idle_timeout,
        auth_token=auth_token,
    )
    asyncio.run(_shard_until_stopped(dispatcher, echo))
    return 0
