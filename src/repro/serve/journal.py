"""Durable job journal: append-only NDJSON with crash replay.

The serving layer's job store is in-memory by default — a restart loses
every finished report and evicts every result-cache entry.  With
``bdsmaj serve --journal PATH`` the :class:`JobStore` writes through a
:class:`JobJournal`: one fsync'd NDJSON record per state change
(``submit`` / ``attempt`` / ``finish`` / ``error`` / ``cancel`` /
``quarantine``), so that on startup the server replays the file and

* restores every finished job — its ``/jobs/<id>/result`` bytes are
  **identical** to what the pre-crash server returned (the journaled
  report payload round-trips through
  :meth:`~repro.flows.BatchReport.from_payload`);
* rehydrates the content-hash :class:`~repro.serve.ResultCache`, so a
  resubmission of replayed work is a cache hit, not a resynthesis;
* re-enqueues jobs that were submitted but never finished — a crash
  mid-batch loses no work, the interrupted jobs simply run again under
  their original ids.

Poison jobs are the exception to that last point: every re-enqueue is
journaled as an ``attempt`` record *before* the job runs again, so a
job that crashes the service on every run accumulates evidence across
restarts.  Once its start count reaches the service's
``--max-attempts``, replay parks it as ``quarantined`` (a terminal
``quarantine`` record) instead of re-enqueueing — ending the restart
crash loop while keeping the job inspectable via ``/jobs/<id>``.
Both record kinds are *skipped* by older readers' replay switch, so
the journal version is unchanged.

Record framing
--------------
One record per line: ``CRC32<TAB>JSON\\n``, where the CRC is over the
exact JSON bytes.  A torn final line (the crash happened mid-``write``)
fails the CRC or framing check and is *tolerated*: replay stops trusting
the tail, and :meth:`JobJournal.open` truncates the file back to the
last intact record so subsequent appends cannot corrupt the framing.
A corrupt line in the *middle* of the file (bit rot) is skipped and
counted, never silently replayed.

Compaction
----------
The journal only ever appends, so a long-lived server accumulates dead
records (expired jobs, superseded states).  When the file grows past
``compact_bytes`` (and past twice its size after the previous rewrite,
so a genuinely large live set does not thrash), the store triggers
:meth:`JobJournal.compact`: the journal is rewritten to a temp file
holding only the *live* records — one ``submit`` (+ terminal record)
per job still in the store, behind a ``meta`` record preserving the id
counter — fsync'd and atomically renamed over the old file.

Threading: every journal method is called on the event-loop thread
(job state transitions are loop-thread by the serve layer's threading
contract), so the class needs no locking.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..faults import inject as inject_fault
from ..flows.batch import BatchReport
from .jobs import CANCELLED, DONE, ERROR, QUARANTINED, JobRequest

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .jobs import Job

#: Default file size (bytes) past which an append triggers compaction.
DEFAULT_COMPACT_BYTES = 4 << 20

#: Journal format tag, checked on replay (a future incompatible format
#: bumps it; an unknown version refuses to replay rather than guess).
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file cannot be used (unreadable, wrong version)."""


@dataclass
class ReplayedJob:
    """One job reconstructed from the journal, ready for adoption."""

    id: str
    request: JobRequest
    #: Display names of the resolved items (the journal does not store
    #: file contents; unfinished jobs re-resolve from the request).
    item_names: list[str]
    #: Terminal state (``done`` / ``error`` / ``cancelled`` /
    #: ``quarantined``) or ``None`` for a job that was submitted but
    #: never finished — the crash interrupted it, and the server
    #: re-enqueues (or, past ``max_attempts``, quarantines) it on
    #: replay.
    state: str | None = None
    report: BatchReport | None = None
    cache_key: str | None = None
    error: str | None = None
    #: Times this job has been started (submit = 1, plus one per
    #: journaled ``attempt`` record) — the quarantine gate's evidence.
    attempts: int = 1


@dataclass
class ReplayResult:
    """What :meth:`JobJournal.open` recovered from an existing file."""

    jobs: list[ReplayedJob] = field(default_factory=list)
    #: Id counter floor: the next created job must number past every
    #: journaled one, even when compaction dropped the high records.
    next_id: int = 1
    #: Intact records read.
    records: int = 0
    #: Mid-file lines that failed CRC/framing and were skipped.
    corrupt_lines: int = 0
    #: Bytes of torn tail truncated away (0 for a clean file).
    truncated_bytes: int = 0


def _encode_record(record: dict[str, Any]) -> bytes:
    """One journal line: CRC32 of the canonical JSON, tab, the JSON."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    raw = payload.encode("utf-8")
    return b"%08x\t" % (zlib.crc32(raw) & 0xFFFFFFFF) + raw + b"\n"


def _decode_line(line: bytes) -> dict[str, Any] | None:
    """Parse one journal line; ``None`` for anything not intact."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the final write never completed
    crc_hex, sep, raw = line[:-1].partition(b"\t")
    if not sep or len(crc_hex) != 8:
        return None
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(raw) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _request_payload(request: JobRequest) -> dict[str, Any]:
    return {
        "circuits": list(request.circuits),
        "flow": request.flow,
        "workers": request.workers,
        "verify": request.verify,
        "cache_policy": request.cache_policy,
        "cache_capacity": request.cache_capacity,
        "reorder": request.reorder,
        "priority": request.priority,
    }


def _request_from_payload(payload: dict[str, Any]) -> JobRequest:
    return JobRequest(
        circuits=tuple(payload["circuits"]),
        flow=payload["flow"],
        workers=payload["workers"],
        verify=payload["verify"],
        cache_policy=payload["cache_policy"],
        cache_capacity=payload["cache_capacity"],
        reorder=payload["reorder"],
        priority=payload["priority"],
    )


def _report_payload(report: BatchReport) -> dict[str, Any]:
    return {
        "flow": report.flow,
        "circuits": [circuit.to_payload() for circuit in report.circuits],
    }


def _fsync_dir(directory: Path) -> None:
    """Flush ``directory``'s entry table to stable storage.

    ``os.fsync`` on a file makes its *contents* durable, but a freshly
    created name or an ``os.replace`` lives in the parent directory's
    entries — on ext4/XFS those need their own fsync or a crash can
    resurrect the replaced file (or lose the new one).  Best effort:
    platforms that refuse ``open(dir)`` (Windows) skip it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class JobJournal:
    """Append-only NDJSON journal the :class:`~repro.serve.JobStore`
    writes through.  See the module docstring for the record framing,
    replay and compaction stories."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        fsync: bool = True,
        compact_bytes: int = DEFAULT_COMPACT_BYTES,
    ) -> None:
        if compact_bytes < 1:
            raise ValueError("compact_bytes must be >= 1")
        self.path = Path(path)
        self._fsync = fsync
        self._compact_bytes = compact_bytes
        self._file: io.BufferedWriter | None = None
        self._bytes = 0
        self._last_compact_bytes = 0
        # Ids whose submit/terminal records are already on disk —
        # replayed jobs re-run their state transitions, and the
        # write-through hooks must not duplicate their records.
        self._submitted: set[str] = set()
        self._terminal: set[str] = set()
        #: Counters surfaced through ``/metrics``.
        self.records_written = 0
        self.compactions = 0
        self.replayed_jobs = 0

    # ------------------------------------------------------------------
    # Open + replay
    # ------------------------------------------------------------------
    def open(self) -> ReplayResult:
        """Replay an existing journal (if any) and open for appending.

        Returns what was recovered; raises :class:`JournalError` only
        for an unusable file (undecodable version record), never for a
        torn tail — that is the crash case the journal exists for."""
        result = ReplayResult()
        good_end = 0
        raw_records: list[dict[str, Any]] = []
        existed = self.path.exists()
        if existed:
            with open(self.path, "rb") as stream:
                data = stream.read()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                end = len(data) if newline < 0 else newline + 1
                record = _decode_line(data[offset:end])
                if record is None:
                    if end >= len(data):
                        break  # torn tail: everything past good_end goes
                    result.corrupt_lines += 1
                else:
                    version = record.get("v", JOURNAL_VERSION)
                    if version != JOURNAL_VERSION:
                        raise JournalError(
                            f"journal {self.path} is version {version!r}, "
                            f"this build reads {JOURNAL_VERSION}"
                        )
                    raw_records.append(record)
                    result.records += 1
                    good_end = end
                offset = end
            result.truncated_bytes = len(data) - good_end
        self._replay_records(raw_records, result)
        self.replayed_jobs = len(result.jobs)
        # Truncate the torn tail *before* appending: new records written
        # after a partial line would be unreadable on the next replay.
        self._file = open(self.path, "ab")
        if not existed and self._fsync:
            # The first append's fsync makes the *contents* durable,
            # but the new name itself lives in the parent directory.
            _fsync_dir(self.path.parent)
        if result.truncated_bytes:
            self._file.truncate(good_end)
        self._bytes = good_end
        self._last_compact_bytes = good_end
        return result

    def _replay_records(self, records: list[dict[str, Any]], result: ReplayResult) -> None:
        jobs: dict[str, ReplayedJob] = {}
        for record in records:
            kind = record.get("type")
            if kind == "meta":
                result.next_id = max(result.next_id, int(record.get("next_id", 1)))
                continue
            job_id = record.get("id")
            if not isinstance(job_id, str):
                continue
            if kind == "submit":
                try:
                    request = _request_from_payload(record["request"])
                except (KeyError, TypeError, ValueError):
                    continue  # unreadable request: nothing to restore
                jobs[job_id] = ReplayedJob(
                    id=job_id,
                    request=request,
                    item_names=list(record.get("items") or []),
                )
                self._submitted.add(job_id)
            elif kind == "finish":
                job = jobs.get(job_id)
                if job is None:
                    continue
                try:
                    report = BatchReport.from_payload(record["report"])
                except (KeyError, TypeError, ValueError):
                    # Unreadable report: the job ran once, but its bytes
                    # are gone — re-enqueue it instead of serving junk.
                    continue
                job.state = DONE
                job.report = report
                key = record.get("cache_key")
                job.cache_key = key if isinstance(key, str) else None
                self._terminal.add(job_id)
            elif kind == "error":
                job = jobs.get(job_id)
                if job is None:
                    continue
                job.state = ERROR
                job.error = str(record.get("error") or "unknown error")
                self._terminal.add(job_id)
            elif kind == "cancel":
                job = jobs.get(job_id)
                if job is None:
                    continue
                job.state = CANCELLED
                self._terminal.add(job_id)
            elif kind == "attempt":
                job = jobs.get(job_id)
                if job is None:
                    continue
                try:
                    count = int(record.get("count", job.attempts + 1))
                except (TypeError, ValueError):
                    continue
                job.attempts = max(job.attempts, count)
            elif kind == "quarantine":
                job = jobs.get(job_id)
                if job is None:
                    continue
                job.state = QUARANTINED
                job.error = str(record.get("error") or "quarantined")
                try:
                    job.attempts = max(job.attempts, int(record.get("attempts", 1)))
                except (TypeError, ValueError):
                    pass
                self._terminal.add(job_id)
        result.jobs = list(jobs.values())
        for job in result.jobs:
            number = _job_number(job.id)
            if number is not None:
                result.next_id = max(result.next_id, number + 1)

    # ------------------------------------------------------------------
    # Write-through
    # ------------------------------------------------------------------
    def record_submit(self, job: "Job") -> None:
        """Journal a new submission (no-op for replayed ids)."""
        if job.id in self._submitted:
            return
        self._submitted.add(job.id)
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": "submit",
                "id": job.id,
                "request": _request_payload(job.request),
                "items": [item.name for item in job.items],
            }
        )

    def record_attempt(self, job: "Job") -> None:
        """Journal a replay re-enqueue *before* the job runs again: a
        job that crashes the service on every run accumulates one
        ``attempt`` record per restart, the quarantine gate's evidence."""
        if job.id not in self._submitted or job.id in self._terminal:
            return
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": "attempt",
                "id": job.id,
                "count": job.attempts,
            }
        )

    def record_terminal(self, job: "Job") -> None:
        """Journal a job reaching its terminal state (exactly once per
        id: replayed jobs and double transitions are no-ops)."""
        if job.id in self._terminal or job.id not in self._submitted:
            return
        self._terminal.add(job.id)
        record: dict[str, Any]
        if job.state == DONE and job.report is not None:
            record = {
                "v": JOURNAL_VERSION,
                "type": "finish",
                "id": job.id,
                "cache_key": job.cache_key,
                "report": _report_payload(job.report),
            }
        elif job.state == ERROR:
            record = {
                "v": JOURNAL_VERSION,
                "type": "error",
                "id": job.id,
                "error": job.error or "unknown error",
            }
        elif job.state == QUARANTINED:
            record = {
                "v": JOURNAL_VERSION,
                "type": "quarantine",
                "id": job.id,
                "attempts": job.attempts,
                "error": job.error or "crash-looped the service",
            }
        else:
            record = {"v": JOURNAL_VERSION, "type": "cancel", "id": job.id}
        self._append(record)

    def _append(self, record: dict[str, Any]) -> None:
        if self._file is None:
            raise JournalError("journal is not open")
        inject_fault("journal.append", str(record.get("type", "")))
        line = _encode_record(record)
        self._file.write(line)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._bytes += len(line)
        self.records_written += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def should_compact(self) -> bool:
        """True when the file outgrew the threshold *and* doubled since
        the previous rewrite (so a large live set does not thrash)."""
        return self._bytes >= max(
            self._compact_bytes, 2 * self._last_compact_bytes
        )

    def compact(self, jobs: "list[Job]", next_id: int) -> None:
        """Rewrite the journal to the live records only: a ``meta``
        record pinning the id counter, then one ``submit`` (plus
        terminal record, if terminal) per retained job.  Written to a
        temp file, fsync'd, atomically renamed."""
        if self._file is None:
            raise JournalError("journal is not open")
        temp_path = self.path.with_name(self.path.name + ".compact")
        with open(temp_path, "wb") as sink:
            sink.write(
                _encode_record(
                    {"v": JOURNAL_VERSION, "type": "meta", "next_id": next_id}
                )
            )
            for job in jobs:
                sink.write(
                    _encode_record(
                        {
                            "v": JOURNAL_VERSION,
                            "type": "submit",
                            "id": job.id,
                            "request": _request_payload(job.request),
                            "items": [item.name for item in job.items],
                        }
                    )
                )
                if job.attempts > 1:
                    # Keep the start count: the quarantine gate must
                    # still see the history after a rewrite.
                    sink.write(
                        _encode_record(
                            {
                                "v": JOURNAL_VERSION,
                                "type": "attempt",
                                "id": job.id,
                                "count": job.attempts,
                            }
                        )
                    )
                if job.state == DONE and job.report is not None:
                    sink.write(
                        _encode_record(
                            {
                                "v": JOURNAL_VERSION,
                                "type": "finish",
                                "id": job.id,
                                "cache_key": job.cache_key,
                                "report": _report_payload(job.report),
                            }
                        )
                    )
                elif job.state == ERROR:
                    sink.write(
                        _encode_record(
                            {
                                "v": JOURNAL_VERSION,
                                "type": "error",
                                "id": job.id,
                                "error": job.error or "unknown error",
                            }
                        )
                    )
                elif job.state == QUARANTINED:
                    sink.write(
                        _encode_record(
                            {
                                "v": JOURNAL_VERSION,
                                "type": "quarantine",
                                "id": job.id,
                                "attempts": job.attempts,
                                "error": job.error or "crash-looped the service",
                            }
                        )
                    )
                elif job.state == CANCELLED:
                    sink.write(
                        _encode_record(
                            {"v": JOURNAL_VERSION, "type": "cancel", "id": job.id}
                        )
                    )
            sink.flush()
            os.fsync(sink.fileno())
        # The window the crash test targets: the temp file is complete
        # and durable, but the rename has not happened yet — a crash
        # here must leave the *old* journal fully replayable.
        inject_fault("journal.compact", str(self.compactions))
        self._file.close()
        os.replace(temp_path, self.path)
        if self._fsync:
            _fsync_dir(self.path.parent)
        self._file = open(self.path, "ab")
        self._bytes = self.path.stat().st_size
        self._last_compact_bytes = self._bytes
        self.compactions += 1
        # Only live ids can still receive records; the sets exist to
        # dedupe, and dead ids never come back (ids are never reused).
        live = {job.id for job in jobs}
        self._submitted &= live
        self._terminal &= live

    def maybe_compact(self, jobs: "list[Job]", next_id: int) -> bool:
        if not self.should_compact():
            return False
        self.compact(jobs, next_id)
        return True

    # ------------------------------------------------------------------
    # Lifecycle + introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def stats(self) -> dict[str, Any]:
        """The ``/metrics`` journal gauge."""
        return {
            "path": str(self.path),
            "bytes": self._bytes,
            "records_written": self.records_written,
            "compactions": self.compactions,
            "replayed_jobs": self.replayed_jobs,
        }


def _job_number(job_id: str) -> int | None:
    """The numeric suffix of a ``job-NNNNNN`` id (``None`` otherwise)."""
    prefix, _, suffix = job_id.rpartition("-")
    if prefix.endswith("job") and suffix.isdigit():
        return int(suffix)
    return None
