"""Operational metrics for the serving layer (the ``/metrics`` payload).

One :class:`ServiceMetrics` instance per :class:`SynthesisService`
aggregates what an operator watches on a warm server:

* queue pressure — jobs by state (from the store) plus configured
  concurrency;
* result-cache effectiveness — hits/misses/entries (from the
  :class:`~repro.serve.cache.ResultCache`);
* worker-pool temperature — warm vs cold acquires, respawns, parked
  pools (from the :class:`~repro.flows.WarmPoolManager`);
* shared-arena shape — block name, node/root counts (when published);
* per-stage latency summaries — count/total/min/max seconds per job
  lifecycle stage (``resolve``, ``queue_wait``, ``run``), recorded by
  the queue and submit paths.

Latency observations arrive from executor threads as well as the loop
thread, so the stage table takes a lock; everything else is read-only
composition over objects with their own thread stories.
"""

from __future__ import annotations

import threading


class ServiceMetrics:
    """Mutable counters + a composer for the ``/metrics`` payload."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, dict[str, float]] = {}

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for a lifecycle ``stage``."""
        with self._lock:
            entry = self._stages.get(stage)
            if entry is None:
                self._stages[stage] = {
                    "count": 1,
                    "total_seconds": seconds,
                    "min_seconds": seconds,
                    "max_seconds": seconds,
                }
                return
            entry["count"] += 1
            entry["total_seconds"] += seconds
            entry["min_seconds"] = min(entry["min_seconds"], seconds)
            entry["max_seconds"] = max(entry["max_seconds"], seconds)

    def stage_summaries(self) -> dict[str, dict[str, float]]:
        """Per-stage latency summary with a derived mean."""
        with self._lock:
            summaries = {}
            for stage, entry in sorted(self._stages.items()):
                summary = dict(entry)
                summary["mean_seconds"] = entry["total_seconds"] / entry["count"]
                summaries[stage] = summary
            return summaries

    def payload(
        self,
        *,
        jobs: dict[str, int],
        concurrency: int,
        cache_stats: dict | None = None,
        pool_stats: dict | None = None,
        arena_info: dict | None = None,
    ) -> dict:
        """The full ``/metrics`` response body (minus the schema tag,
        which the wire encoder attaches)."""
        return {
            "jobs": jobs,
            "concurrency": concurrency,
            "result_cache": cache_stats,
            "worker_pools": pool_stats,
            "arena": arena_info,
            "stages": self.stage_summaries(),
        }
