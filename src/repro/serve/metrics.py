"""Operational metrics for the serving layer (the ``/metrics`` payload).

One :class:`ServiceMetrics` instance per :class:`SynthesisService`
aggregates what an operator watches on a warm server:

* queue pressure — jobs by state (from the store) plus configured
  concurrency;
* result-cache effectiveness — hits/misses/entries (from the
  :class:`~repro.serve.cache.ResultCache`);
* worker-pool temperature — warm vs cold acquires, respawns, parked
  pools (from the :class:`~repro.flows.WarmPoolManager`);
* shared-arena shape — block name, node/root counts (when published);
* journal durability — bytes, records, compactions, replayed jobs
  (when ``--journal`` is on);
* per-stage latency — fixed-bucket histograms per job lifecycle stage
  (``resolve``, ``queue_wait``, ``run``) with count/min/mean/max *and*
  p50/p90/p99 estimates, recorded by the queue and submit paths;
* fault-tolerance counters — named monotonic counters (circuit
  retries/timeouts, worker deaths, quarantined jobs) recorded by the
  queue runner and journal replay, summable across shards exactly like
  the histograms.

The histogram buckets are fixed and log-spaced (1 ms .. 60 s, plus an
overflow bucket), so two servers' — or two shards' — histograms can be
summed bucket-by-bucket; percentile estimates quote the upper bound of
the bucket that crosses the quantile (the overflow bucket quotes the
observed max), which is the standard fixed-bucket trade: cheap, mergeable
and never more than one bucket width off.

Latency observations arrive from executor threads as well as the loop
thread, so the stage table takes a lock; everything else is read-only
composition over objects with their own thread stories.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Upper bounds (seconds) of the fixed latency buckets; one overflow
#: bucket past the last bound catches everything slower.  Log-spaced
#: from "cache hit" to "heavy batch" territory.
LATENCY_BUCKET_BOUNDS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: The percentiles every stage summary estimates.
SUMMARY_QUANTILES = (("p50_seconds", 0.50), ("p90_seconds", 0.90), ("p99_seconds", 0.99))


class _StageHistogram:
    """Fixed-bucket latency histogram for one lifecycle stage."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.buckets[bisect_left(LATENCY_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile: the upper bound of the bucket
        where the cumulative count crosses ``q * count`` (clamped to
        the observed max, and quoting it for the overflow bucket)."""
        threshold = q * self.count
        cumulative = 0
        for index, entries in enumerate(self.buckets):
            cumulative += entries
            if cumulative >= threshold and entries:
                if index >= len(LATENCY_BUCKET_BOUNDS):
                    return self.max
                return min(LATENCY_BUCKET_BOUNDS[index], self.max)
        return self.max

    def summary(self) -> dict[str, object]:
        cumulative = 0
        buckets: dict[str, int] = {}
        for bound, entries in zip(LATENCY_BUCKET_BOUNDS, self.buckets):
            cumulative += entries
            buckets[f"le_{bound:g}"] = cumulative
        buckets["le_inf"] = self.count
        entry: dict[str, object] = {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count,
            "buckets": buckets,
        }
        for name, q in SUMMARY_QUANTILES:
            entry[name] = self.quantile(q)
        return entry


class ServiceMetrics:
    """Mutable counters + a composer for the ``/metrics`` payload."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, _StageHistogram] = {}
        self._counters: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a named monotonic counter (no-op for ``amount=0``, so
        callers can pass report tallies unconditionally)."""
        if not amount:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> dict[str, int]:
        """All named counters, sorted by name (mergeable across shards
        by plain per-key addition)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for a lifecycle ``stage``."""
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = _StageHistogram()
            histogram.observe(seconds)

    def stage_summaries(self) -> dict[str, dict[str, object]]:
        """Per-stage histogram summary: count/min/mean/max, cumulative
        fixed buckets, and p50/p90/p99 estimates."""
        with self._lock:
            return {
                stage: histogram.summary()
                for stage, histogram in sorted(self._stages.items())
            }

    def payload(
        self,
        *,
        jobs: dict[str, int],
        concurrency: int,
        cache_stats: dict | None = None,
        pool_stats: dict | None = None,
        arena_info: dict | None = None,
        journal_stats: dict | None = None,
        pending_limit: int | None = None,
    ) -> dict:
        """The full ``/metrics`` response body (minus the schema tag,
        which the wire encoder attaches)."""
        return {
            "jobs": jobs,
            "concurrency": concurrency,
            "max_pending": pending_limit,
            "result_cache": cache_stats,
            "worker_pools": pool_stats,
            "arena": arena_info,
            "journal": journal_stats,
            "counters": self.counters(),
            "stages": self.stage_summaries(),
        }
