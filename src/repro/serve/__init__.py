"""``repro.serve`` — the async synthesis-serving layer.

The batch service (:func:`repro.flows.run_batch`) answers "synthesize
this suite"; this package answers the ROADMAP's production question:
synthesis requests that *stream in* over HTTP, get prioritised, report
progress while running, and can be cancelled — without ever blocking
the event loop on a BDD operation.

The stack, bottom up:

* :mod:`.jobs` — :class:`JobRequest` / :class:`Job` / :class:`JobStore`:
  the request model, the job state machine and its append-only event
  log;
* :mod:`.queue` — :class:`JobQueue`: priority scheduling with bounded
  concurrency, dispatching each job onto an executor thread that runs
  ``run_batch`` (and, for ``workers > 1`` requests, the multiprocessing
  pool underneath it);
* :mod:`.cache` — :class:`ResultCache` + :func:`submission_key`:
  content-hash caching of finished reports, so resubmitting identical
  work answers instantly;
* :mod:`.metrics` — :class:`ServiceMetrics`: the ``/metrics`` gauges
  (queue depth, cache hit rate, warm/cold pool counts, per-stage
  latency);
* :mod:`.journal` — :class:`JobJournal`: an append-only, CRC-guarded
  NDJSON journal the store writes through, replayed on startup so a
  restart (or crash) loses nothing — finished jobs come back
  byte-identical and interrupted jobs re-run;
* :mod:`.wire` — the JSON wire format: submission validation, status
  payloads, NDJSON progress lines;
* :mod:`.server` — :class:`AsyncHttpServer`, the reusable hardened
  HTTP/1.1 front end (read timeouts, header caps, keep-alive, bearer
  auth), and :class:`SynthesisService` on top of it: submit/status/
  result/cancel/events endpoints, queue backpressure (429 +
  ``Retry-After`` past ``max_pending``), a
  :class:`~repro.flows.WarmPoolManager` of reusable worker pools and
  (optionally) a shared-memory :class:`~repro.bdd.BddArena` those
  workers attach — plus :func:`run_server`, the blocking ``bdsmaj
  serve`` entry point;
* :mod:`.shard` — :class:`ShardDispatcher` / :func:`run_shard`: the
  ``bdsmaj shard`` process, spawning and supervising N ``serve``
  backends and routing every job to its consistent-hash owner
  (:class:`HashRing`) by submission content hash, with raw-byte result
  passthrough and aggregated ``/metrics``.

The invariant that makes the service trustworthy: a finished job's
``/result`` is the **byte-identical** ``BatchReport`` serialization
``run_batch`` (and ``bdsmaj batch``) produces for the same circuits —
serving adds scheduling, never different numbers.

Quickstart::

    bdsmaj serve --port 8347 &
    curl -d '{"circuits": ["alu2"], "flow": "bds-maj"}' localhost:8347/jobs
    curl localhost:8347/jobs/job-000001/events   # streamed progress
    curl localhost:8347/jobs/job-000001/result   # == `bdsmaj batch` bytes
"""

from .cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache, submission_key
from .journal import (
    DEFAULT_COMPACT_BYTES,
    JobJournal,
    JournalError,
    ReplayedJob,
    ReplayResult,
)
from .jobs import (
    CANCELLED,
    DEFAULT_EVENT_CAP,
    DONE,
    ERROR,
    QUARANTINED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobRequest,
    JobStore,
)
from .metrics import ServiceMetrics
from .queue import JobQueue
from .server import (
    AUTH_TOKEN_ENV,
    DEFAULT_ARENA_CIRCUITS,
    DEFAULT_IDLE_TIMEOUT,
    AsyncHttpServer,
    SynthesisService,
    run_server,
)
from .shard import HashRing, ShardDispatcher, run_shard
from .wire import (
    SCHEMA,
    WireError,
    encode_event_line,
    encode_json,
    job_payload,
    parse_submission,
)

__all__ = [
    "AUTH_TOKEN_ENV",
    "CANCELLED",
    "DEFAULT_ARENA_CIRCUITS",
    "DEFAULT_COMPACT_BYTES",
    "DEFAULT_EVENT_CAP",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DONE",
    "ERROR",
    "QUARANTINED",
    "QUEUED",
    "RUNNING",
    "SCHEMA",
    "TERMINAL_STATES",
    "AsyncHttpServer",
    "HashRing",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobRequest",
    "JobStore",
    "JournalError",
    "ReplayResult",
    "ReplayedJob",
    "ResultCache",
    "ServiceMetrics",
    "ShardDispatcher",
    "SynthesisService",
    "WireError",
    "encode_event_line",
    "encode_json",
    "job_payload",
    "parse_submission",
    "run_server",
    "run_shard",
    "submission_key",
]
