"""``repro.serve`` — the async synthesis-serving layer.

The batch service (:func:`repro.flows.run_batch`) answers "synthesize
this suite"; this package answers the ROADMAP's production question:
synthesis requests that *stream in* over HTTP, get prioritised, report
progress while running, and can be cancelled — without ever blocking
the event loop on a BDD operation.

The stack, bottom up:

* :mod:`.jobs` — :class:`JobRequest` / :class:`Job` / :class:`JobStore`:
  the request model, the job state machine and its append-only event
  log;
* :mod:`.queue` — :class:`JobQueue`: priority scheduling with bounded
  concurrency, dispatching each job onto an executor thread that runs
  ``run_batch`` (and, for ``workers > 1`` requests, the multiprocessing
  pool underneath it);
* :mod:`.cache` — :class:`ResultCache` + :func:`submission_key`:
  content-hash caching of finished reports, so resubmitting identical
  work answers instantly;
* :mod:`.metrics` — :class:`ServiceMetrics`: the ``/metrics`` gauges
  (queue depth, cache hit rate, warm/cold pool counts, per-stage
  latency);
* :mod:`.wire` — the JSON wire format: submission validation, status
  payloads, NDJSON progress lines;
* :mod:`.server` — :class:`SynthesisService`, a stdlib-asyncio HTTP
  front end with submit/status/result/cancel/events endpoints —
  hardened with read timeouts and header caps, keeping a
  :class:`~repro.flows.WarmPoolManager` of reusable worker pools and
  (optionally) a shared-memory :class:`~repro.bdd.BddArena` those
  workers attach — plus :func:`run_server`, the blocking ``bdsmaj
  serve`` entry point.

The invariant that makes the service trustworthy: a finished job's
``/result`` is the **byte-identical** ``BatchReport`` serialization
``run_batch`` (and ``bdsmaj batch``) produces for the same circuits —
serving adds scheduling, never different numbers.

Quickstart::

    bdsmaj serve --port 8347 &
    curl -d '{"circuits": ["alu2"], "flow": "bds-maj"}' localhost:8347/jobs
    curl localhost:8347/jobs/job-000001/events   # streamed progress
    curl localhost:8347/jobs/job-000001/result   # == `bdsmaj batch` bytes
"""

from .cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache, submission_key
from .jobs import (
    CANCELLED,
    DEFAULT_EVENT_CAP,
    DONE,
    ERROR,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobRequest,
    JobStore,
)
from .metrics import ServiceMetrics
from .queue import JobQueue
from .server import (
    DEFAULT_ARENA_CIRCUITS,
    DEFAULT_IDLE_TIMEOUT,
    SynthesisService,
    run_server,
)
from .wire import (
    SCHEMA,
    WireError,
    encode_event_line,
    encode_json,
    job_payload,
    parse_submission,
)

__all__ = [
    "CANCELLED",
    "DEFAULT_ARENA_CIRCUITS",
    "DEFAULT_EVENT_CAP",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DONE",
    "ERROR",
    "QUEUED",
    "RUNNING",
    "SCHEMA",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobStore",
    "ResultCache",
    "ServiceMetrics",
    "SynthesisService",
    "WireError",
    "encode_event_line",
    "encode_json",
    "job_payload",
    "parse_submission",
    "run_server",
    "submission_key",
]
