"""``repro.serve`` — the async synthesis-serving layer.

The batch service (:func:`repro.flows.run_batch`) answers "synthesize
this suite"; this package answers the ROADMAP's production question:
synthesis requests that *stream in* over HTTP, get prioritised, report
progress while running, and can be cancelled — without ever blocking
the event loop on a BDD operation.

The stack, bottom up:

* :mod:`.jobs` — :class:`JobRequest` / :class:`Job` / :class:`JobStore`:
  the request model, the job state machine and its append-only event
  log;
* :mod:`.queue` — :class:`JobQueue`: priority scheduling with bounded
  concurrency, dispatching each job onto an executor thread that runs
  ``run_batch`` (and, for ``workers > 1`` requests, the multiprocessing
  pool underneath it);
* :mod:`.wire` — the JSON wire format: submission validation, status
  payloads, NDJSON progress lines;
* :mod:`.server` — :class:`SynthesisService`, a stdlib-asyncio HTTP
  front end with submit/status/result/cancel/events endpoints, plus
  :func:`run_server`, the blocking ``bdsmaj serve`` entry point.

The invariant that makes the service trustworthy: a finished job's
``/result`` is the **byte-identical** ``BatchReport`` serialization
``run_batch`` (and ``bdsmaj batch``) produces for the same circuits —
serving adds scheduling, never different numbers.

Quickstart::

    bdsmaj serve --port 8347 &
    curl -d '{"circuits": ["alu2"], "flow": "bds-maj"}' localhost:8347/jobs
    curl localhost:8347/jobs/job-000001/events   # streamed progress
    curl localhost:8347/jobs/job-000001/result   # == `bdsmaj batch` bytes
"""

from .jobs import (
    CANCELLED,
    DEFAULT_EVENT_CAP,
    DONE,
    ERROR,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobRequest,
    JobStore,
)
from .queue import JobQueue
from .server import SynthesisService, run_server
from .wire import (
    SCHEMA,
    WireError,
    encode_event_line,
    encode_json,
    job_payload,
    parse_submission,
)

__all__ = [
    "CANCELLED",
    "DEFAULT_EVENT_CAP",
    "DONE",
    "ERROR",
    "QUEUED",
    "RUNNING",
    "SCHEMA",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobStore",
    "SynthesisService",
    "WireError",
    "encode_event_line",
    "encode_json",
    "job_payload",
    "parse_submission",
    "run_server",
]
