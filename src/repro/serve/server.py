"""Asyncio HTTP front end: the ``bdsmaj serve`` service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`
(stdlib only — the repo's no-heavy-deps rule applies to the serving
layer too).  Connections are persistent by HTTP/1.1 default: a client
polling a job reuses one socket for the whole conversation, and the
``Connection:`` request header is honored (``close`` to drop after the
response; HTTP/1.0 clients must opt in with ``keep-alive``).  The
events stream is the exception — its end is signalled by closing the
connection.

Endpoints
---------
``GET  /healthz``           liveness + job tally by state
``POST /jobs``              submit (JSON body, see :mod:`.wire`) → 202
``GET  /jobs``              all jobs, submission order
``GET  /jobs/<id>``         status payload
``GET  /jobs/<id>/result``  the finished job's BatchReport — raw
                            ``to_json`` bytes (``?format=csv`` for CSV,
                            ``?timings=1`` to include wall-clock);
                            409 until the job is done
``POST /jobs/<id>/cancel``  cancel queued/running job → status payload
``GET  /jobs/<id>/events``  NDJSON progress stream (state transitions,
                            per-circuit completions, per-stage
                            start/end events) until the job finishes

:class:`SynthesisService` bundles the :class:`~repro.serve.JobStore`,
the :class:`~repro.serve.JobQueue` and the listener; :func:`run_server`
is the blocking CLI entry point with SIGINT/SIGTERM-triggered graceful
shutdown (drain nothing, cancel everything, reap all workers).
"""

from __future__ import annotations

import asyncio
import signal
import sys
from http import HTTPStatus
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..api import InputSourceError, resolve_source
from .jobs import DEFAULT_EVENT_CAP, DONE, Job, JobRequest, JobStore
from .queue import JobQueue
from .wire import WireError, encode_event_line, encode_json, job_payload, parse_submission

#: Largest accepted request body; a submission is a short JSON object,
#: so anything bigger is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20


class SynthesisService:
    """Store + queue + HTTP listener, wired together."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        concurrency: int = 2,
        event_cap: int | None = DEFAULT_EVENT_CAP,
        max_finished_jobs: int | None = None,
    ) -> None:
        self.store = JobStore(
            event_cap=event_cap, max_finished_jobs=max_finished_jobs
        )
        self.queue = JobQueue(concurrency=concurrency)
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Start the runners and the listener; returns the bound
        ``(host, port)`` (useful with ``port=0``)."""
        self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def shutdown(self) -> None:
        """Stop accepting, cancel every live job, reap every worker."""
        if self._server is not None:
            self._server.close()
        # Cancel jobs BEFORE waiting on the listener: event-stream
        # handlers only finish once their job reaches a terminal state,
        # and (on Pythons where wait_closed really waits for handlers)
        # the reverse order would deadlock.
        await self.queue.shutdown(self.store.jobs())
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # a client holding a dead connection
                pass
            self._server = None

    # ------------------------------------------------------------------
    # Submission (also the seam tests drive without HTTP)
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Resolve the request's circuit specs through the input layer
        and enqueue a job for them.

        Callers building a :class:`JobRequest` directly (the HTTP path
        goes through :func:`~repro.serve.parse_submission`, which
        validates) get the knob errors here instead of at run time.
        """
        items = self._resolve_items(request)
        job = self.store.create(request, items)
        self.queue.submit(job)
        return job

    async def submit_async(self, request: JobRequest) -> Job:
        """Like :meth:`submit`, but resolves circuit specs on a worker
        thread: glob expansion walks the filesystem, and a slow walk on
        the loop thread would freeze every other request."""
        loop = asyncio.get_running_loop()
        items = await loop.run_in_executor(None, self._resolve_items, request)
        job = self.store.create(request, items)
        self.queue.submit(job)
        return job

    def _resolve_items(self, request: JobRequest) -> list:
        try:
            request.batch_config()
        except ValueError as exc:
            raise WireError(str(exc)) from None
        items: list = []
        try:
            for spec in request.circuits:
                items.extend(resolve_source(spec).items())
        except InputSourceError as exc:
            raise WireError(str(exc)) from None
        return items

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests off one connection until the client closes it,
        asks to (``Connection: close``), streams events, or errors.

        HTTP/1.1 connections are persistent by default; HTTP/1.0 ones
        only with an explicit ``Connection: keep-alive``.  Error
        responses always close — after a protocol error the framing of
        the byte stream can no longer be trusted.
        """
        try:
            keep_alive = False
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, query, body, headers, version = parsed
                connection = headers.get("connection", "").lower()
                if version == "HTTP/1.0":
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                try:
                    streamed = await self._route(
                        writer, method, path, query, body, keep_alive
                    )
                except WireError as exc:
                    self._write_response(
                        writer, exc.status, encode_json({"error": str(exc)})
                    )
                    break
                if streamed or not keep_alive:
                    break
                await writer.drain()
        except WireError as exc:  # malformed framing: respond and close
            self._write_response(
                writer, exc.status, encode_json({"error": str(exc)})
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the server
            self._write_response(
                writer,
                500,
                encode_json({"error": f"{type(exc).__name__}: {exc}"}),
            )
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, list[str]], bytes, dict[str, str], str] | None:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise WireError("malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise WireError("bad Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise WireError("request body too large", status=413)
        body = await reader.readexactly(length) if length > 0 else b""
        url = urlsplit(target)
        return method.upper(), url.path, parse_qs(url.query), body, headers, version

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = False,
    ) -> None:
        writer.write(self._head(status, content_type, len(body), keep_alive) + body)

    def _head(
        self,
        status: int,
        content_type: str,
        length: int | None,
        keep_alive: bool = False,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {HTTPStatus(status).phrase}",
            f"Content-Type: {content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: bytes,
        keep_alive: bool = False,
    ) -> bool:
        """Dispatch one request.  Returns True when the response was a
        stream whose end is signalled by closing the connection (the
        events endpoint), so the caller must not reuse the socket."""
        segments = [part for part in path.split("/") if part]
        if segments == ["healthz"]:
            self._require(method, "GET")
            self._write_response(
                writer,
                200,
                encode_json({"status": "ok", "jobs": self.store.counts()}),
                keep_alive=keep_alive,
            )
        elif segments == ["jobs"]:
            if method == "POST":
                job = await self.submit_async(parse_submission(body))
                self._write_response(
                    writer, 202, encode_json(job_payload(job)), keep_alive=keep_alive
                )
            elif method == "GET":
                self._write_response(
                    writer,
                    200,
                    encode_json(
                        {"jobs": [job_payload(j) for j in self.store.jobs()]}
                    ),
                    keep_alive=keep_alive,
                )
            else:
                raise WireError("use GET or POST on /jobs", status=405)
        elif len(segments) == 2 and segments[0] == "jobs":
            self._require(method, "GET")
            job = self._job(segments[1])
            self._write_response(
                writer, 200, encode_json(job_payload(job)), keep_alive=keep_alive
            )
        elif len(segments) == 3 and segments[0] == "jobs":
            job = self._job(segments[1])
            action = segments[2]
            if action == "result":
                self._require(method, "GET")
                self._send_result(writer, job, query, keep_alive)
            elif action == "cancel":
                self._require(method, "POST")
                job.request_cancel()
                self._write_response(
                    writer, 200, encode_json(job_payload(job)), keep_alive=keep_alive
                )
            elif action == "events":
                self._require(method, "GET")
                await self._stream_events(writer, job)
                return True
            else:
                raise WireError(f"unknown job action {action!r}", status=404)
        else:
            raise WireError(f"no such endpoint: {path!r}", status=404)
        return False

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise WireError(f"use {expected} on this endpoint", status=405)

    def _job(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job is None:
            raise WireError(f"no such job: {job_id!r}", status=404)
        return job

    def _send_result(
        self,
        writer: asyncio.StreamWriter,
        job: Job,
        query: dict[str, list[str]],
        keep_alive: bool = False,
    ) -> None:
        if job.state != DONE or job.report is None:
            raise WireError(
                f"job {job.id} has no result (status: {job.state})", status=409
            )
        include_timing = query.get("timings", ["0"])[-1] in ("1", "true", "yes")
        # Raw BatchReport serialization — byte-identical to `bdsmaj
        # batch` output for the same circuits (timings excluded).
        if query.get("format", ["json"])[-1] == "csv":
            body = job.report.to_csv(include_timing).encode("utf-8")
            self._write_response(
                writer, 200, body, content_type="text/csv", keep_alive=keep_alive
            )
        else:
            body = job.report.to_json(include_timing).encode("utf-8")
            self._write_response(writer, 200, body, keep_alive=keep_alive)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Replay the job's event log, then follow it live until the job
        reaches a terminal state (NDJSON, one event per line).

        The cursor is an *absolute* event position: a finished job's
        log may have been truncated (:class:`~repro.serve.JobStore`
        ``event_cap``), in which case the dropped head is reported
        explicitly with one ``{"type": "truncated", "dropped": N}``
        line instead of being silently skipped.
        """
        writer.write(self._head(200, "application/x-ndjson", None))
        cursor = 0
        while True:
            # Capture the wakeup *before* draining: an event appended
            # after the drain but before the await still sets it.
            changed = job.change_event()
            base = job.events_dropped
            if cursor < base:
                writer.write(
                    encode_event_line(
                        {"type": "truncated", "dropped": base - cursor, "job": job.id}
                    )
                )
                cursor = base
            while cursor < base + len(job.events):
                writer.write(encode_event_line(job.events[cursor - base]))
                cursor += 1
            await writer.drain()
            if cursor < job.total_events:
                # The job appended (possibly its terminal state event)
                # while drain() was suspended; flush before closing.
                continue
            if job.finished:
                return
            await changed.wait()


async def _serve_until_stopped(
    host: str,
    port: int,
    concurrency: int,
    echo: Callable[[str], None],
    event_cap: int | None = DEFAULT_EVENT_CAP,
    max_finished_jobs: int | None = None,
) -> None:
    service = SynthesisService(
        host=host,
        port=port,
        concurrency=concurrency,
        event_cap=event_cap,
        max_finished_jobs=max_finished_jobs,
    )
    bound_host, bound_port = await service.start()
    echo(
        f"bdsmaj serve: listening on http://{bound_host}:{bound_port} "
        f"({concurrency} concurrent jobs); Ctrl-C to stop"
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        echo("bdsmaj serve: shutting down (cancelling jobs, reaping workers)")
        await service.shutdown()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8347,
    concurrency: int = 2,
    echo: Callable[[str], None] | None = None,
    event_cap: int | None = DEFAULT_EVENT_CAP,
    max_finished_jobs: int | None = None,
) -> int:
    """Blocking entry point behind ``bdsmaj serve``."""
    if echo is None:
        echo = lambda message: print(message, file=sys.stderr, flush=True)  # noqa: E731
    asyncio.run(
        _serve_until_stopped(
            host,
            port,
            concurrency,
            echo,
            event_cap=event_cap,
            max_finished_jobs=max_finished_jobs,
        )
    )
    return 0
