"""Asyncio HTTP front end: the ``bdsmaj serve`` service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`
(stdlib only — the repo's no-heavy-deps rule applies to the serving
layer too).  Connections are persistent by HTTP/1.1 default: a client
polling a job reuses one socket for the whole conversation, and the
``Connection:`` request header is honored (``close`` to drop after the
response; HTTP/1.0 clients must opt in with ``keep-alive``).  The
events stream is the exception — its end is signalled by closing the
connection.

The front end is hardened against misbehaving clients: every read off
the socket is bounded by a configurable idle timeout (a connection
silent *between* requests is closed quietly; one that stalls *mid*
request gets a 408), header counts and line lengths are capped (431),
and ``Content-Length`` must be a plain non-negative ASCII integer.

Endpoints
---------
``GET  /healthz``           liveness + job tally by state
``GET  /metrics``           operational gauges: queue depth, result-
                            cache hit rate, warm/cold pool counts,
                            shared-arena shape, per-stage latency
``POST /jobs``              submit (JSON body, see :mod:`.wire`) → 202
``GET  /jobs``              all jobs, submission order
``GET  /jobs/<id>``         status payload
``GET  /jobs/<id>/result``  the finished job's BatchReport — raw
                            ``to_json`` bytes (``?format=csv`` for CSV,
                            ``?timings=1`` to include wall-clock);
                            409 until the job is done
``POST /jobs/<id>/cancel``  cancel queued/running job → status payload
``GET  /jobs/<id>/events``  NDJSON progress stream (state transitions,
                            per-circuit completions, per-stage
                            start/end events) until the job finishes

:class:`SynthesisService` bundles the :class:`~repro.serve.JobStore`,
the :class:`~repro.serve.JobQueue` and the listener; :func:`run_server`
is the blocking CLI entry point with SIGINT/SIGTERM-triggered graceful
shutdown (drain nothing, cancel everything, reap all workers).
"""

from __future__ import annotations

import asyncio
import hmac
import math
import os
import signal
import sys
import threading
import time
from http import HTTPStatus
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..api import InputItem, InputSourceError, resolve_source
from ..bdd import BDD
from ..bdd.arena import (
    DEFAULT_STORE_CAPACITY,
    BddArena,
    SharedNodeStore,
    WorkerArenaSpec,
    attach_worker_arena,
)
from ..benchgen import build_benchmark
from ..flows.batch import WarmPoolManager
from ..network import global_bdds
from .cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache, submission_key
from .jobs import (
    DEFAULT_EVENT_CAP,
    DONE,
    ERROR,
    QUARANTINED,
    QUEUED,
    Job,
    JobRequest,
    JobStore,
)
from .journal import DEFAULT_COMPACT_BYTES, JobJournal, ReplayResult
from .metrics import ServiceMetrics
from .queue import JobQueue
from .wire import WireError, encode_event_line, encode_json, job_payload, parse_submission

#: Environment variable consulted when ``--auth-token`` is not given.
AUTH_TOKEN_ENV = "BDSMAJ_AUTH_TOKEN"

#: Largest accepted request body; a submission is a short JSON object,
#: so anything bigger is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20

#: Most header lines accepted per request; real clients send a handful,
#: so a flood is an attack (or a badly broken proxy), answered 431.
MAX_HEADER_LINES = 100

#: Default seconds a connection may sit silent before the server stops
#: reading (quietly between requests, 408 mid-request).
DEFAULT_IDLE_TIMEOUT = 60.0

#: Seconds the server keeps draining a connection after its last
#: response (half-closed) so a client still mid-send sees the response
#: instead of a connection reset destroying it.
_LINGER_SECONDS = 1.0

#: Registry circuits the CLI's default arena snapshot covers: the MCNC
#: benchmarks whose monolithic global BDDs build in well under a second
#: (measured: alu2 ~16 ms, f51m ~33 ms, misex3 ~190 ms, vda ~230 ms).
#: The big ones (c6288, dalu, seq, ...) blow any sane node budget, which
#: is exactly why arena construction skips over-budget circuits instead
#: of failing the server start.
DEFAULT_ARENA_CIRCUITS = ("alu2", "f51m", "vda", "misex3")

#: Live-node budget while building the arena snapshot (per the shared
#: manager, so it bounds the whole snapshot, not one circuit).
DEFAULT_ARENA_MAX_NODES = 200_000


class AsyncHttpServer:
    """The reusable, hardened HTTP/1.1 front end.

    Owns everything between the socket and the route handler: request
    framing with idle timeouts, header caps, keep-alive semantics, the
    lingering close, bearer-token auth and the error funnel.  Subclasses
    implement :meth:`_route`; :class:`SynthesisService` serves jobs with
    it, :class:`~repro.serve.shard.ShardDispatcher` proxies them.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        auth_token: str | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._idle_timeout = idle_timeout
        self._auth_token = auth_token
        self._server: asyncio.base_events.Server | None = None

    async def _start_listener(self) -> tuple[str, int]:
        """Bind and return the actual ``(host, port)`` (with ``port=0``
        the kernel picks)."""
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _close_listener(self) -> None:
        if self._server is None:
            return
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:  # a client holding a dead connection
            pass
        self._server = None

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: bytes,
        keep_alive: bool = False,
        headers: dict[str, str] | None = None,
    ) -> bool:
        """Dispatch one request; subclass responsibility.  Returns True
        when the response was a stream whose end is signalled by closing
        the connection, so the caller must not reuse the socket."""
        raise NotImplementedError

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests off one connection until the client closes it,
        asks to (``Connection: close``), streams events, or errors.

        HTTP/1.1 connections are persistent by default; HTTP/1.0 ones
        only with an explicit ``Connection: keep-alive``.  Error
        responses always close — after a protocol error the framing of
        the byte stream can no longer be trusted.
        """
        try:
            keep_alive = False
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, query, body, headers, version = parsed
                connection = headers.get("connection", "").lower()
                if version == "HTTP/1.0":
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                try:
                    streamed = await self._route(
                        writer, method, path, query, body, keep_alive, headers
                    )
                except WireError as exc:
                    self._write_response(
                        writer,
                        exc.status,
                        encode_json({"error": str(exc)}),
                        extra_headers=exc.headers,
                    )
                    break
                if streamed or not keep_alive:
                    break
                await writer.drain()
        except WireError as exc:  # malformed framing: respond and close
            self._write_response(
                writer,
                exc.status,
                encode_json({"error": str(exc)}),
                extra_headers=exc.headers,
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the server
            self._write_response(
                writer,
                500,
                encode_json({"error": f"{type(exc).__name__}: {exc}"}),
            )
        finally:
            try:
                await writer.drain()
                # Lingering close: closing while the peer is still
                # sending (an over-long line we rejected mid-read, say)
                # resets the connection and can destroy the response we
                # just wrote.  Send our FIN first, then briefly drain
                # whatever the peer had in flight before closing.
                if writer.can_write_eof():
                    writer.write_eof()
                try:
                    await asyncio.wait_for(
                        reader.read(MAX_BODY_BYTES), timeout=_LINGER_SECONDS
                    )
                except (asyncio.TimeoutError, ValueError):
                    pass
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, list[str]], bytes, dict[str, str], str] | None:
        """Read and parse one request, defensively.

        Every read is bounded by the configured idle timeout: a client
        silent before sending a request line is dropped quietly (that
        is what an idle keep-alive connection looks like), one that
        stalls *after* starting a request gets a 408.  Oversized lines
        (``StreamReader``'s limit surfaces as :class:`ValueError`),
        header floods and malformed ``Content-Length`` values are
        client errors, not server tracebacks.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self._idle_timeout
            )
        except asyncio.TimeoutError:
            return None  # idle between requests: close without a response
        except ValueError:
            raise WireError("request line too long", status=431) from None
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise WireError("malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        header_lines = 0
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), self._idle_timeout
                )
            except asyncio.TimeoutError:
                raise WireError(
                    "timed out reading request headers", status=408
                ) from None
            except ValueError:
                raise WireError("header line too long", status=431) from None
            if line in (b"\r\n", b"\n", b""):
                break
            header_lines += 1
            if header_lines > MAX_HEADER_LINES:
                raise WireError("too many header lines", status=431)
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0").strip()
        # int() alone would accept "-5", "+5", " 5", "5_0" and unicode
        # digits; Content-Length is plain ASCII decimal or it is a lie.
        if not (raw_length.isascii() and raw_length.isdigit()):
            raise WireError("bad Content-Length header")
        length = int(raw_length)
        if length > MAX_BODY_BYTES:
            raise WireError("request body too large", status=413)
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self._idle_timeout
                )
            except asyncio.TimeoutError:
                raise WireError(
                    "timed out reading request body", status=408
                ) from None
        else:
            body = b""
        url = urlsplit(target)
        return method.upper(), url.path, parse_qs(url.query), body, headers, version

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        writer.write(
            self._head(status, content_type, len(body), keep_alive, extra_headers)
            + body
        )

    def _head(
        self,
        status: int,
        content_type: str,
        length: int | None,
        keep_alive: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {HTTPStatus(status).phrase}",
            f"Content-Type: {content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise WireError(f"use {expected} on this endpoint", status=405)

    def _check_auth(self, headers: dict[str, str]) -> None:
        """Enforce bearer-token auth when configured (constant-time
        compare; 401 with ``WWW-Authenticate`` on missing/mismatch)."""
        if self._auth_token is None:
            return
        supplied = headers.get("authorization", "")
        scheme, _, token = supplied.partition(" ")
        if scheme.lower() == "bearer" and hmac.compare_digest(
            token.strip(), self._auth_token
        ):
            return
        raise WireError(
            "missing or invalid bearer token",
            status=401,
            headers={"WWW-Authenticate": "Bearer"},
        )


class SynthesisService(AsyncHttpServer):
    """Store + queue + HTTP listener, wired together."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        concurrency: int = 2,
        event_cap: int | None = DEFAULT_EVENT_CAP,
        max_finished_jobs: int | None = None,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        result_cache_size: int | None = DEFAULT_RESULT_CACHE_SIZE,
        warm_pools: bool = True,
        arena_circuits: "tuple[str, ...] | list[str] | None" = None,
        arena_max_nodes: int = DEFAULT_ARENA_MAX_NODES,
        arena_refresh: bool = False,
        store_capacity: int = DEFAULT_STORE_CAPACITY,
        journal_path: "str | os.PathLike | None" = None,
        journal_fsync: bool = True,
        journal_compact_bytes: int = DEFAULT_COMPACT_BYTES,
        max_pending: int | None = None,
        auth_token: str | None = None,
        max_attempts: int = 3,
    ) -> None:
        """``idle_timeout=None`` disables read timeouts;
        ``result_cache_size=None``/``0`` disables result caching;
        ``warm_pools=False`` reverts to a fresh worker pool per batch;
        ``arena_circuits`` names registry circuits to snapshot into a
        shared BDD arena at startup (``None`` — the default, and what
        the test suite uses — skips the snapshot; the CLI passes
        :data:`DEFAULT_ARENA_CIRCUITS`); ``arena_refresh`` keeps the
        snapshot *live* — each finished job's registry circuits that the
        arena doesn't cover yet are built into the owner manager and a
        new snapshot is published, so hot circuits stop being rebuilt at
        all; ``store_capacity`` sizes the writable shared unique table
        (:class:`~repro.bdd.arena.SharedNodeStore`) published alongside
        the arena — workers build verify BDDs *into* it instead of each
        rebuilding privately; ``journal_path`` makes the job
        store durable (append-only NDJSON, replayed on :meth:`start`);
        ``max_pending`` bounds the queued-job backlog (overflow answers
        429 with ``Retry-After``); ``auth_token`` requires ``Bearer``
        auth on every endpoint except ``/healthz``; ``max_attempts``
        caps how many times journal replay will (re)start one job — a
        job whose attempt records reach the cap is quarantined instead
        of re-enqueued, ending a restart crash loop."""
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.journal = (
            JobJournal(
                journal_path,
                fsync=journal_fsync,
                compact_bytes=journal_compact_bytes,
            )
            if journal_path is not None
            else None
        )
        self.store = JobStore(
            event_cap=event_cap,
            max_finished_jobs=max_finished_jobs,
            journal=self.journal,
        )
        self.metrics = ServiceMetrics()
        self.result_cache = (
            ResultCache(result_cache_size) if result_cache_size else None
        )
        self.pool_manager = WarmPoolManager() if warm_pools else None
        self.queue = JobQueue(
            concurrency=concurrency,
            pool_manager=self.pool_manager,
            result_cache=self.result_cache,
            metrics=self.metrics,
        )
        super().__init__(
            host=host, port=port, idle_timeout=idle_timeout, auth_token=auth_token
        )
        self._max_pending = max_pending
        self._max_attempts = max_attempts
        self.last_replay: ReplayResult | None = None
        self._arena_circuits = tuple(arena_circuits or ())
        self._arena_max_nodes = arena_max_nodes
        self._arena_refresh = arena_refresh
        self._store_capacity = store_capacity
        self._arena: BddArena | None = None
        self._arena_info: dict | None = None
        self._arena_store: SharedNodeStore | None = None
        # Refresh machinery: the owner manager the snapshot grows in,
        # the circuits it covers, snapshots superseded by a refresh
        # (kept mapped until shutdown — executor threads mid-verify may
        # still read them), and a lock serializing refresh builds.
        self._arena_manager: BDD | None = None
        #: Root edges in the *owner manager's* numbering — republish
        #: must start from these (an arena's own root edges are
        #: renumbered by export and mean nothing to the manager).
        self._arena_roots: dict[str, int] = {}
        self._arena_published: set[str] = set()
        #: Circuits a refresh (or the startup build) failed on — never
        #: retried: a BDD over the arena budget stays over budget, and
        #: each doomed attempt costs a full build before it trips.
        self._arena_skipped: set[str] = set()
        self._retired_arenas: list[BddArena] = []
        self._refresh_lock = threading.Lock()
        self.arena_refreshes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Start the runners and the listener; returns the bound
        ``(host, port)`` (useful with ``port=0``).

        When ``arena_circuits`` was requested, the shared BDD arena is
        built first (on a worker thread — BDD construction must not
        block the loop) so every pool worker ever spawned attaches it.
        """
        if self._arena_circuits and self._arena is None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._build_arena)
        self.queue.start()
        if self.journal is not None and self.last_replay is None:
            self._replay_journal()
        return await self._start_listener()

    def _replay_journal(self) -> None:
        """Replay the journal into the store: finished jobs come back
        with their exact reports (rehydrating the result cache), jobs
        the crash interrupted are re-enqueued under their original ids.

        Re-enqueueing is bounded: each replay re-enqueue journals an
        ``attempt`` record first, and a job whose start count has
        already reached ``max_attempts`` is quarantined instead — a
        poison job that kills the service on every run must not keep
        killing it on every restart.
        """
        result = self.journal.open()
        self.last_replay = result
        for replayed in result.jobs:
            if replayed.state is None:
                if replayed.attempts >= self._max_attempts:
                    # Poison job: it was started max_attempts times
                    # without ever reaching a terminal record.  Park it
                    # (terminal, inspectable) instead of re-enqueueing —
                    # and do not even re-resolve its inputs.
                    items = [InputItem(name=name) for name in replayed.item_names]
                    job = Job(replayed.id, replayed.request, items)
                    self.store.adopt(job, next_id=result.next_id)
                    job.attempts = replayed.attempts
                    job.add_event({"type": "replayed", "resubmitted": False})
                    job.mark_quarantined(
                        f"quarantined after {replayed.attempts} attempt(s): "
                        "the job never finished before a service restart"
                    )
                    self.metrics.inc("jobs_quarantined")
                    continue
                # Interrupted mid-run: re-resolve and run it again.
                try:
                    items = self._resolve_items(replayed.request)
                except WireError as exc:
                    items = [InputItem(name=name) for name in replayed.item_names]
                    job = Job(replayed.id, replayed.request, items)
                    self.store.adopt(job, next_id=result.next_id)
                    job.attempts = replayed.attempts
                    job.add_event({"type": "replayed", "resubmitted": False})
                    job.fail(f"journal replay could not re-resolve inputs: {exc}")
                    continue
                job = Job(
                    replayed.id,
                    replayed.request,
                    items,
                    event_cap=self.store._event_cap,  # noqa: SLF001 - own module
                )
                self.store.adopt(job, next_id=result.next_id)
                job.attempts = replayed.attempts
                job.cache_key = (
                    submission_key(items, replayed.request.batch_config())
                    if self.result_cache is not None
                    else None
                )
                # An identical submission may already have been replayed
                # finished (ids replay in order): answer from the
                # rehydrated cache instead of synthesizing twice.
                cached = (
                    self.result_cache.get(job.cache_key)
                    if self.result_cache is not None
                    else None
                )
                if cached is not None:
                    job.cache_hit = True
                    job.add_event({"type": "replayed", "resubmitted": False})
                    job.finish(cached)
                    continue
                # This re-enqueue is one more start; journal it *before*
                # the job runs so the evidence survives another crash.
                job.attempts = replayed.attempts + 1
                self.journal.record_attempt(job)
                job.add_event({"type": "replayed", "resubmitted": True})
                self.queue.submit(job)
                continue
            items = [InputItem(name=name) for name in replayed.item_names]
            job = Job(
                replayed.id,
                replayed.request,
                items,
                event_cap=self.store._event_cap,  # noqa: SLF001 - own module
            )
            self.store.adopt(job, next_id=result.next_id)
            job.attempts = replayed.attempts
            job.cache_key = replayed.cache_key
            job.add_event({"type": "replayed", "resubmitted": False})
            if replayed.state == DONE and replayed.report is not None:
                job.finish(replayed.report)
                if (
                    self.result_cache is not None
                    and replayed.cache_key is not None
                    and all(circuit.ok for circuit in replayed.report.circuits)
                ):
                    self.result_cache.put(replayed.cache_key, replayed.report)
            elif replayed.state == ERROR:
                job.fail(replayed.error or "unknown error")
            elif replayed.state == QUARANTINED:
                job.mark_quarantined(replayed.error or "crash-looped the service")
            else:
                job.mark_cancelled()

    def _build_arena(self) -> None:
        """Snapshot the requested registry circuits' global BDDs into a
        shared-memory arena.  Per-circuit failures (unknown name, BDD
        over budget) skip that circuit; only an empty snapshot skips the
        arena entirely.  Never raises: a server without an arena is
        merely colder, not broken."""
        manager = BDD([])
        roots: dict[str, int] = {}
        published: list[str] = []
        skipped: list[str] = []
        for name in self._arena_circuits:
            try:
                network = build_benchmark(name)
                manager, edges = global_bdds(
                    network, mgr=manager, max_nodes=self._arena_max_nodes
                )
            except Exception:  # noqa: BLE001 - skip, don't fail the server
                skipped.append(name)
                manager.gc(roots.values())  # drop the partial build
                continue
            published.append(name)
            for output, edge in edges.items():
                roots[f"{name}/{output}"] = edge
        if not roots:
            self._arena_info = {"circuits": [], "skipped": skipped}
            return
        try:
            arena = BddArena.publish(manager, roots)
        except Exception:  # noqa: BLE001 - e.g. /dev/shm unavailable
            self._arena_info = {"circuits": [], "skipped": list(self._arena_circuits)}
            return
        # The writable shared unique table rides along: seeded with the
        # arena's variable order (so arena vars are a prefix of the
        # store's global order and worker bindings line up), attached by
        # every worker next to the read-only snapshot.  Best effort —
        # a server without a store just verifies privately.
        store: SharedNodeStore | None = None
        try:
            store = SharedNodeStore.create(
                manager.var_names, capacity=self._store_capacity
            )
        except Exception:  # noqa: BLE001 - degraded mode, not an outage
            store = None
        self._arena = arena
        self._arena_store = store
        self._arena_manager = manager if self._arena_refresh else None
        self._arena_roots = roots
        self._arena_published = set(published)
        self._arena_skipped = set(skipped)
        self._set_arena_info(published, skipped)
        # The service's own serial jobs verify through the same snapshot
        # and store (installing the owner views directly — no second
        # mapping)...
        attach_worker_arena(WorkerArenaSpec(arena=arena, store=store))
        # ...and every pool worker spawned from here on attaches by
        # name/handle.
        if self.pool_manager is not None:
            self.pool_manager.arena_name = WorkerArenaSpec(
                arena=arena.name,
                store=store.handle() if store is not None else None,
            )

    def _set_arena_info(self, published: "list[str]", skipped: "list[str]") -> None:
        self._arena_info = {
            "name": self._arena.name,
            "nodes": self._arena.num_nodes,
            "roots": len(self._arena.roots),
            "circuits": sorted(published),
            "skipped": skipped,
            "mode": "refresh" if self._arena_refresh else "static",
            "refreshes": self.arena_refreshes,
        }

    def _arena_metrics_info(self) -> "dict | None":
        """The ``/metrics`` view of the arena: the static snapshot shape
        plus the shared store's live hit/miss/contention counters."""
        if self._arena_info is None:
            return None
        info = dict(self._arena_info)
        if self._arena_store is not None:
            info["store"] = self._arena_store.counters()
        return info

    def _watch_refresh(self, job: Job) -> None:
        """Terminal hook (loop thread): a finished job's registry
        circuits the snapshot doesn't cover yet trigger a rebuild on a
        daemon thread (not the default executor — a build in flight at
        shutdown must not block interpreter exit)."""
        if job.state != DONE or self._arena_manager is None:
            return
        fresh = sorted(
            {
                item.name
                for item in job.items
                if item.kind == "registry"
                and item.name not in self._arena_published
                and item.name not in self._arena_skipped
            }
        )
        if not fresh:
            return
        # Optimistically claim before the build: a second job finishing
        # with the same circuits must not queue a duplicate rebuild.
        self._arena_published.update(fresh)
        threading.Thread(
            target=self._refresh_arena,
            args=(fresh,),
            name="arena-refresh",
            daemon=True,
        ).start()

    def _refresh_arena(self, names: "list[str]") -> None:
        """Grow the owner manager by ``names`` and publish a new
        snapshot (executor thread).  The superseded snapshot is retired,
        not closed: threads mid-verify keep valid views until shutdown.
        Never raises — a failed refresh leaves the old snapshot serving.
        """
        with self._refresh_lock:
            manager = self._arena_manager
            arena = self._arena
            if manager is None or arena is None:
                return
            roots = dict(self._arena_roots)
            built = []
            for name in names:
                try:
                    network = build_benchmark(name)
                    _, edges = global_bdds(
                        network, mgr=manager, max_nodes=self._arena_max_nodes
                    )
                except Exception:  # noqa: BLE001 - skip for good, keep serving
                    # Shed the failed build's scratch — those nodes stay
                    # live until collected and would push every later
                    # refresh over budget before it allocates a thing.
                    manager.gc(roots.values())
                    self._arena_published.discard(name)
                    self._arena_skipped.add(name)
                    continue
                built.append(name)
                for output, edge in edges.items():
                    roots[f"{name}/{output}"] = edge
            if not built:
                if self._arena_info is not None:
                    self._set_arena_info(
                        sorted(self._arena_published), sorted(self._arena_skipped)
                    )
                return
            try:
                fresh = BddArena.publish(manager, roots)
            except Exception:  # noqa: BLE001 - e.g. /dev/shm exhausted
                self._arena_published.difference_update(built)
                return
            self._retired_arenas.append(arena)
            self._arena = fresh
            self._arena_roots = roots
            self.arena_refreshes += 1
            self._set_arena_info(
                sorted(self._arena_published), sorted(self._arena_skipped)
            )
            store = self._arena_store
            # Swap without closing the retired view (see the
            # close_previous contract): in-flight serial verifies on
            # the old snapshot finish safely, new ones bind the fresh
            # one.
            attach_worker_arena(
                WorkerArenaSpec(arena=fresh, store=store), close_previous=False
            )
            if self.pool_manager is not None:
                self.pool_manager.arena_name = WorkerArenaSpec(
                    arena=fresh.name,
                    store=store.handle() if store is not None else None,
                )
                # Parked pools are still attached to the superseded
                # snapshot; retire them so the next acquire spawns
                # against the fresh one (busy pools are caught by the
                # generation stamp at release time).
                self.pool_manager.recycle_idle()

    async def shutdown(self) -> None:
        """Stop accepting, cancel every live job, reap every worker."""
        if self._server is not None:
            self._server.close()
        # Cancel jobs BEFORE waiting on the listener: event-stream
        # handlers only finish once their job reaches a terminal state,
        # and (on Pythons where wait_closed really waits for handlers)
        # the reverse order would deadlock.
        await self.queue.shutdown(self.store.jobs())
        if self.pool_manager is not None:
            # Parked pools hold live worker processes; drain() joins
            # them, so keep it off the loop thread.
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool_manager.drain
            )
        if self._arena is not None:
            attach_worker_arena(None)  # closes the installed owner views
            self._arena.unlink()
            self._arena = None
        for retired in self._retired_arenas:
            # Superseded by refreshes; kept mapped until now so threads
            # mid-verify never read a released view.
            retired.unlink()
        self._retired_arenas.clear()
        if self._arena_store is not None:
            self._arena_store.unlink()
            self._arena_store = None
        self._arena_manager = None
        if self.journal is not None:
            self.journal.close()
        await self._close_listener()

    # ------------------------------------------------------------------
    # Submission (also the seam tests drive without HTTP)
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Resolve the request's circuit specs through the input layer
        and enqueue a job for them.

        Callers building a :class:`JobRequest` directly (the HTTP path
        goes through :func:`~repro.serve.parse_submission`, which
        validates) get the knob errors here instead of at run time.

        A submission whose content hash matches a cached finished
        report is answered immediately: the job is created already
        ``done``, carrying the cached :class:`~repro.flows.BatchReport`
        (and ``cached: true`` in its status payload) — no queue trip,
        no resynthesis.
        """
        items, key = self._resolve_items_keyed(request)
        return self._create_job(request, items, key)

    async def submit_async(self, request: JobRequest) -> Job:
        """Like :meth:`submit`, but resolves circuit specs on a worker
        thread: glob expansion (and cache-key file hashing) walks the
        filesystem, and a slow walk on the loop thread would freeze
        every other request."""
        loop = asyncio.get_running_loop()
        items, key = await loop.run_in_executor(
            None, self._resolve_items_keyed, request
        )
        return self._create_job(request, items, key)

    def _create_job(self, request: JobRequest, items: list, key: str | None) -> Job:
        cached = self.result_cache.get(key) if self.result_cache is not None else None
        if cached is not None:
            # Cache hits bypass the backpressure gate: they consume no
            # queue slot, so rejecting them would protect nothing.
            job = self.store.create(request, items)
            job.cache_key = key
            job.cache_hit = True
            job.finish(cached)
            return job
        self._check_backpressure()
        job = self.store.create(request, items)
        job.cache_key = key
        self._chain_refresh_hook(job)
        self.queue.submit(job)
        return job

    def _chain_refresh_hook(self, job: Job) -> None:
        """In ``--arena refresh`` mode, watch the job's terminal
        transition (after any journaling hook the store installed)."""
        if not self._arena_refresh:
            return
        previous = job.on_terminal

        def hook(finished: Job) -> None:
            if previous is not None:
                previous(finished)
            self._watch_refresh(finished)

        job.on_terminal = hook

    def _check_backpressure(self) -> None:
        """Refuse new queue entries past ``max_pending`` with a 429 and
        a ``Retry-After`` estimated from the observed run latency."""
        if self._max_pending is None:
            return
        pending = sum(1 for job in self.store.jobs() if job.state == QUEUED)
        if pending < self._max_pending:
            return
        raise WireError(
            f"queue is full ({pending} jobs pending, limit {self._max_pending})",
            status=429,
            headers={"Retry-After": str(self._retry_after(pending))},
        )

    def _retry_after(self, pending: int) -> int:
        """Seconds until a queue slot plausibly frees: the backlog
        drained at the observed mean run latency over ``concurrency``
        lanes, clamped to [1, 300]."""
        run = self.metrics.stage_summaries().get("run")
        mean = float(run["mean_seconds"]) if run else 1.0
        estimate = mean * max(1, pending) / max(1, self.queue.concurrency)
        return max(1, min(300, math.ceil(estimate)))

    def _resolve_items_keyed(self, request: JobRequest) -> tuple[list, str | None]:
        """Resolve circuit specs and (when caching is on) the
        submission's content-hash key — both touch the filesystem, so
        the async path runs this whole helper on a worker thread."""
        start = time.perf_counter()
        items = self._resolve_items(request)
        key = (
            submission_key(items, request.batch_config())
            if self.result_cache is not None
            else None
        )
        self.metrics.observe("resolve", time.perf_counter() - start)
        return items, key

    def _resolve_items(self, request: JobRequest) -> list:
        try:
            request.batch_config()
        except ValueError as exc:
            raise WireError(str(exc)) from None
        items: list = []
        try:
            for spec in request.circuits:
                items.extend(resolve_source(spec).items())
        except InputSourceError as exc:
            raise WireError(str(exc)) from None
        return items

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: bytes,
        keep_alive: bool = False,
        headers: dict[str, str] | None = None,
    ) -> bool:
        """Dispatch one request.  Returns True when the response was a
        stream whose end is signalled by closing the connection (the
        events endpoint), so the caller must not reuse the socket."""
        segments = [part for part in path.split("/") if part]
        # /healthz stays reachable without credentials: supervisors and
        # the shard dispatcher probe it to decide whether to respawn.
        if segments != ["healthz"]:
            self._check_auth(headers or {})
        if segments == ["healthz"]:
            self._require(method, "GET")
            self._write_response(
                writer,
                200,
                encode_json({"status": "ok", "jobs": self.store.counts()}),
                keep_alive=keep_alive,
            )
        elif segments == ["metrics"]:
            self._require(method, "GET")
            self._write_response(
                writer,
                200,
                encode_json(
                    self.metrics.payload(
                        jobs=self.store.counts(),
                        concurrency=self.queue.concurrency,
                        cache_stats=(
                            self.result_cache.stats()
                            if self.result_cache is not None
                            else None
                        ),
                        pool_stats=(
                            self.pool_manager.stats()
                            if self.pool_manager is not None
                            else None
                        ),
                        arena_info=self._arena_metrics_info(),
                        journal_stats=(
                            self.journal.stats()
                            if self.journal is not None
                            else None
                        ),
                        pending_limit=self._max_pending,
                    )
                ),
                keep_alive=keep_alive,
            )
        elif segments == ["jobs"]:
            if method == "POST":
                job = await self.submit_async(parse_submission(body))
                self._write_response(
                    writer, 202, encode_json(job_payload(job)), keep_alive=keep_alive
                )
            elif method == "GET":
                self._write_response(
                    writer,
                    200,
                    encode_json(
                        {"jobs": [job_payload(j) for j in self.store.jobs()]}
                    ),
                    keep_alive=keep_alive,
                )
            else:
                raise WireError("use GET or POST on /jobs", status=405)
        elif len(segments) == 2 and segments[0] == "jobs":
            self._require(method, "GET")
            job = self._job(segments[1])
            self._write_response(
                writer, 200, encode_json(job_payload(job)), keep_alive=keep_alive
            )
        elif len(segments) == 3 and segments[0] == "jobs":
            job = self._job(segments[1])
            action = segments[2]
            if action == "result":
                self._require(method, "GET")
                self._send_result(writer, job, query, keep_alive)
            elif action == "cancel":
                self._require(method, "POST")
                job.request_cancel()
                self._write_response(
                    writer, 200, encode_json(job_payload(job)), keep_alive=keep_alive
                )
            elif action == "events":
                self._require(method, "GET")
                await self._stream_events(writer, job)
                return True
            else:
                raise WireError(f"unknown job action {action!r}", status=404)
        else:
            raise WireError(f"no such endpoint: {path!r}", status=404)
        return False

    def _job(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job is None:
            raise WireError(f"no such job: {job_id!r}", status=404)
        return job

    def _send_result(
        self,
        writer: asyncio.StreamWriter,
        job: Job,
        query: dict[str, list[str]],
        keep_alive: bool = False,
    ) -> None:
        if job.state != DONE or job.report is None:
            raise WireError(
                f"job {job.id} has no result (status: {job.state})", status=409
            )
        include_timing = query.get("timings", ["0"])[-1] in ("1", "true", "yes")
        # Raw BatchReport serialization — byte-identical to `bdsmaj
        # batch` output for the same circuits (timings excluded).
        if query.get("format", ["json"])[-1] == "csv":
            body = job.report.to_csv(include_timing).encode("utf-8")
            self._write_response(
                writer, 200, body, content_type="text/csv", keep_alive=keep_alive
            )
        else:
            body = job.report.to_json(include_timing).encode("utf-8")
            self._write_response(writer, 200, body, keep_alive=keep_alive)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Replay the job's event log, then follow it live until the job
        reaches a terminal state (NDJSON, one event per line).

        The cursor is an *absolute* event position: a finished job's
        log may have been truncated (:class:`~repro.serve.JobStore`
        ``event_cap``), in which case the dropped head is reported
        explicitly with one ``{"type": "truncated", "dropped": N}``
        line instead of being silently skipped.
        """
        writer.write(self._head(200, "application/x-ndjson", None))
        cursor = 0
        while True:
            # Capture the wakeup *before* draining: an event appended
            # after the drain but before the await still sets it.
            changed = job.change_event()
            base = job.events_dropped
            if cursor < base:
                writer.write(
                    encode_event_line(
                        {"type": "truncated", "dropped": base - cursor, "job": job.id}
                    )
                )
                cursor = base
            while cursor < base + len(job.events):
                writer.write(encode_event_line(job.events[cursor - base]))
                cursor += 1
            await writer.drain()
            if cursor < job.total_events:
                # The job appended (possibly its terminal state event)
                # while drain() was suspended; flush before closing.
                continue
            if job.finished:
                return
            await changed.wait()


async def _serve_until_stopped(
    host: str,
    port: int,
    concurrency: int,
    echo: Callable[[str], None],
    event_cap: int | None = DEFAULT_EVENT_CAP,
    max_finished_jobs: int | None = None,
    idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
    result_cache_size: int | None = DEFAULT_RESULT_CACHE_SIZE,
    warm_pools: bool = True,
    arena_circuits: "tuple[str, ...] | list[str] | None" = DEFAULT_ARENA_CIRCUITS,
    arena_refresh: bool = False,
    journal_path: "str | os.PathLike | None" = None,
    journal_compact_bytes: int = DEFAULT_COMPACT_BYTES,
    max_pending: int | None = None,
    auth_token: str | None = None,
    max_attempts: int = 3,
) -> None:
    service = SynthesisService(
        host=host,
        port=port,
        concurrency=concurrency,
        event_cap=event_cap,
        max_finished_jobs=max_finished_jobs,
        idle_timeout=idle_timeout,
        result_cache_size=result_cache_size,
        warm_pools=warm_pools,
        arena_circuits=arena_circuits,
        arena_refresh=arena_refresh,
        journal_path=journal_path,
        journal_compact_bytes=journal_compact_bytes,
        max_pending=max_pending,
        auth_token=auth_token,
        max_attempts=max_attempts,
    )
    bound_host, bound_port = await service.start()
    if service._arena_info:  # noqa: SLF001 - own module
        circuits = service._arena_info.get("circuits") or []  # noqa: SLF001
        if circuits:
            echo(
                "bdsmaj serve: shared BDD arena "
                f"{service._arena_info['nodes']} nodes over "  # noqa: SLF001
                f"{', '.join(circuits)}"
            )
    if service.last_replay is not None:
        replay = service.last_replay
        echo(
            f"bdsmaj serve: journal {journal_path} replayed "
            f"{len(replay.jobs)} jobs ({replay.records} records"
            + (
                f", {replay.truncated_bytes} torn bytes truncated"
                if replay.truncated_bytes
                else ""
            )
            + ")"
        )
    echo(
        f"bdsmaj serve: listening on http://{bound_host}:{bound_port} "
        f"({concurrency} concurrent jobs); Ctrl-C to stop"
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        echo("bdsmaj serve: shutting down (cancelling jobs, reaping workers)")
        await service.shutdown()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8347,
    concurrency: int = 2,
    echo: Callable[[str], None] | None = None,
    event_cap: int | None = DEFAULT_EVENT_CAP,
    max_finished_jobs: int | None = None,
    idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
    result_cache_size: int | None = DEFAULT_RESULT_CACHE_SIZE,
    warm_pools: bool = True,
    arena_circuits: "tuple[str, ...] | list[str] | None" = DEFAULT_ARENA_CIRCUITS,
    arena_refresh: bool = False,
    journal_path: "str | os.PathLike | None" = None,
    journal_compact_bytes: int = DEFAULT_COMPACT_BYTES,
    max_pending: int | None = None,
    auth_token: str | None = None,
    max_attempts: int = 3,
) -> int:
    """Blocking entry point behind ``bdsmaj serve``.

    ``auth_token=None`` falls back to the :data:`AUTH_TOKEN_ENV`
    environment variable (so tokens need not appear on command lines);
    an empty value in either place means "no auth"."""
    if echo is None:
        echo = lambda message: print(message, file=sys.stderr, flush=True)  # noqa: E731
    if auth_token is None:
        auth_token = os.environ.get(AUTH_TOKEN_ENV) or None
    asyncio.run(
        _serve_until_stopped(
            host,
            port,
            concurrency,
            echo,
            event_cap=event_cap,
            max_finished_jobs=max_finished_jobs,
            idle_timeout=idle_timeout,
            result_cache_size=result_cache_size,
            warm_pools=warm_pools,
            arena_circuits=arena_circuits,
            arena_refresh=arena_refresh,
            journal_path=journal_path,
            journal_compact_bytes=journal_compact_bytes,
            max_pending=max_pending,
            auth_token=auth_token,
            max_attempts=max_attempts,
        )
    )
    return 0
