"""Priority queue + bounded-concurrency dispatcher.

The :class:`JobQueue` is the scheduling core of the serving layer: an
:class:`asyncio.PriorityQueue` ordered by ``(priority, submission
sequence)`` feeds a fixed number of runner tasks, so at most
``concurrency`` jobs synthesize at once no matter how many requests are
queued.  Each runner hands its job to a thread-pool executor, where the
thread calls :func:`repro.flows.run_batch` — which in turn owns a
multiprocessing pool when the request asks for ``workers > 1``.  The
event loop therefore never blocks on synthesis: HTTP handling, status
polling and event streaming stay responsive while jobs grind.

Progress flows the other way: the executor thread forwards per-circuit
lines and per-stage :class:`~repro.api.StageEvent` payloads back onto
the loop with ``call_soon_threadsafe``, appending to the job's event
log that the server streams.

Shutdown (:meth:`JobQueue.shutdown`) cancels every non-terminal job —
which makes in-flight ``run_batch`` calls raise
:class:`~repro.flows.BatchCancelled` and reap their worker pools —
then drains the runner tasks with sentinels and joins the executor, so
no thread or pool worker outlives the service.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable

from ..api import StageEvent
from ..flows.batch import BatchCancelled, BatchReport, run_batch
from .jobs import DONE, QUEUED, Job

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..flows.batch import WarmPoolManager
    from .cache import ResultCache
    from .metrics import ServiceMetrics

#: Sentinel priority that sorts after every real (int) job priority.
_SHUTDOWN_PRIORITY = float("inf")


class JobQueue:
    """Dispatch submitted jobs onto a bounded pool of runner tasks.

    Optional collaborators wire it into the warm-serving stack:

    * ``pool_manager`` — a :class:`~repro.flows.WarmPoolManager` handed
      to every ``run_batch`` call, so parallel jobs reuse parked worker
      pools instead of spawning per job (the queue uses it but does not
      own it: the service drains it at shutdown);
    * ``result_cache`` — finished ``done`` reports are stored under the
      job's content hash for the submit path to answer resubmissions;
    * ``metrics`` — receives ``queue_wait`` and ``run`` latency samples.
    """

    def __init__(
        self,
        concurrency: int = 2,
        pool_manager: "WarmPoolManager | None" = None,
        result_cache: "ResultCache | None" = None,
        metrics: "ServiceMetrics | None" = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = concurrency
        self.pool_manager = pool_manager
        self.result_cache = result_cache
        self.metrics = metrics
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._runners: list[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="bdsmaj-job"
        )
        self._closing = False

    def start(self) -> None:
        """Spawn the runner tasks (requires a running event loop)."""
        if self._runners:
            return
        loop = asyncio.get_running_loop()
        self._runners = [
            loop.create_task(self._run_jobs(), name=f"bdsmaj-runner-{i}")
            for i in range(self.concurrency)
        ]

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; lower ``priority`` runs sooner, ties in
        submission order."""
        if self._closing:
            raise RuntimeError("job queue is shutting down")
        self._queue.put_nowait(
            (job.request.priority, next(self._seq), job, time.perf_counter())
        )

    async def shutdown(self, jobs: Iterable[Job] = ()) -> None:
        """Cancel ``jobs`` (typically every job in the store), stop the
        runners, and join the executor — reaping every worker."""
        self._closing = True
        for job in jobs:
            job.request_cancel()
        for _ in self._runners:
            self._queue.put_nowait(
                (_SHUTDOWN_PRIORITY, next(self._seq), None, 0.0)
            )
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
            self._runners = []
        # Runner tasks only finish after their in-flight executor calls
        # resolved, so this join cannot block on a live batch.
        self._executor.shutdown(wait=True)  # bdslint: disable=ASY004 -- shutdown path: runners already gathered above, so no executor call is in flight and the join returns immediately

    async def _run_jobs(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            _priority, _seq, job, enqueued_at = await self._queue.get()
            if job is None:  # shutdown sentinel
                return
            if job.state != QUEUED:  # cancelled while waiting
                continue
            if self.metrics is not None:
                self.metrics.observe(
                    "queue_wait", time.perf_counter() - enqueued_at
                )
            job.mark_running()
            run_started = time.perf_counter()
            outcome, value = await loop.run_in_executor(
                self._executor, self._execute, job, loop
            )
            if self.metrics is not None:
                self.metrics.observe("run", time.perf_counter() - run_started)
            if outcome == "done":
                if self.metrics is not None:
                    # Fault-tolerance tallies off the report (inc(0) is
                    # a no-op, so a clean run costs nothing).
                    self.metrics.inc("circuit_retries", value.retries)
                    self.metrics.inc("circuit_timeouts", value.timeouts)
                    self.metrics.inc("worker_deaths", value.worker_deaths)
                job.finish(value)
                # Retain only fully-ok reports: a per-circuit error row
                # *should* be deterministic, but pinning one forever on
                # the strength of that assumption is a bad trade.
                if (
                    self.result_cache is not None
                    and job.state == DONE
                    and all(circuit.ok for circuit in value.circuits)
                ):
                    self.result_cache.put(job.cache_key, value)
            elif outcome == "cancelled":
                job.mark_cancelled()
            else:
                job.fail(value)

    def _execute(
        self, job: Job, loop: asyncio.AbstractEventLoop
    ) -> tuple[str, BatchReport | str | None]:
        """Run one job's batch on the executor thread.

        Returns an ``(outcome, value)`` pair instead of touching the
        job: the runner task applies it on the loop thread, keeping all
        job state single-threaded.
        """

        def emit(payload: dict) -> None:
            loop.call_soon_threadsafe(job.add_event, payload)

        def circuit_progress(line: str) -> None:
            emit({"type": "circuit", "message": " ".join(line.split())})

        def stage_progress(benchmark: str, event: StageEvent) -> None:
            emit(dict(event.to_payload(), type="stage", benchmark=benchmark))

        # Pass ``pool`` only when warm pools are configured so a bare
        # queue keeps the plain run_batch signature.
        extra = {} if self.pool_manager is None else {"pool": self.pool_manager}
        try:
            report = run_batch(
                job.items,
                job.request.batch_config(),
                progress=circuit_progress,
                cancel=job.cancel_requested,
                stage_progress=stage_progress,
                **extra,
            )
        except BatchCancelled:
            return "cancelled", None
        except Exception as exc:  # noqa: BLE001 — job isolation by design
            return "error", f"{type(exc).__name__}: {exc}"
        return "done", report
