"""Priority queue + bounded-concurrency dispatcher.

The :class:`JobQueue` is the scheduling core of the serving layer: an
:class:`asyncio.PriorityQueue` ordered by ``(priority, submission
sequence)`` feeds a fixed number of runner tasks, so at most
``concurrency`` jobs synthesize at once no matter how many requests are
queued.  Each runner hands its job to a thread-pool executor, where the
thread calls :func:`repro.flows.run_batch` — which in turn owns a
multiprocessing pool when the request asks for ``workers > 1``.  The
event loop therefore never blocks on synthesis: HTTP handling, status
polling and event streaming stay responsive while jobs grind.

Progress flows the other way: the executor thread forwards per-circuit
lines and per-stage :class:`~repro.api.StageEvent` payloads back onto
the loop with ``call_soon_threadsafe``, appending to the job's event
log that the server streams.

Shutdown (:meth:`JobQueue.shutdown`) cancels every non-terminal job —
which makes in-flight ``run_batch`` calls raise
:class:`~repro.flows.BatchCancelled` and reap their worker pools —
then drains the runner tasks with sentinels and joins the executor, so
no thread or pool worker outlives the service.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from ..api import StageEvent
from ..flows.batch import BatchCancelled, BatchReport, run_batch
from .jobs import QUEUED, Job

#: Sentinel priority that sorts after every real (int) job priority.
_SHUTDOWN_PRIORITY = float("inf")


class JobQueue:
    """Dispatch submitted jobs onto a bounded pool of runner tasks."""

    def __init__(self, concurrency: int = 2) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.concurrency = concurrency
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._runners: list[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="bdsmaj-job"
        )
        self._closing = False

    def start(self) -> None:
        """Spawn the runner tasks (requires a running event loop)."""
        if self._runners:
            return
        loop = asyncio.get_running_loop()
        self._runners = [
            loop.create_task(self._run_jobs(), name=f"bdsmaj-runner-{i}")
            for i in range(self.concurrency)
        ]

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; lower ``priority`` runs sooner, ties in
        submission order."""
        if self._closing:
            raise RuntimeError("job queue is shutting down")
        self._queue.put_nowait((job.request.priority, next(self._seq), job))

    async def shutdown(self, jobs: Iterable[Job] = ()) -> None:
        """Cancel ``jobs`` (typically every job in the store), stop the
        runners, and join the executor — reaping every worker."""
        self._closing = True
        for job in jobs:
            job.request_cancel()
        for _ in self._runners:
            self._queue.put_nowait((_SHUTDOWN_PRIORITY, next(self._seq), None))
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
            self._runners = []
        # Runner tasks only finish after their in-flight executor calls
        # resolved, so this join cannot block on a live batch.
        self._executor.shutdown(wait=True)

    async def _run_jobs(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            _priority, _seq, job = await self._queue.get()
            if job is None:  # shutdown sentinel
                return
            if job.state != QUEUED:  # cancelled while waiting
                continue
            job.mark_running()
            outcome, value = await loop.run_in_executor(
                self._executor, self._execute, job, loop
            )
            if outcome == "done":
                job.finish(value)
            elif outcome == "cancelled":
                job.mark_cancelled()
            else:
                job.fail(value)

    def _execute(
        self, job: Job, loop: asyncio.AbstractEventLoop
    ) -> tuple[str, BatchReport | str | None]:
        """Run one job's batch on the executor thread.

        Returns an ``(outcome, value)`` pair instead of touching the
        job: the runner task applies it on the loop thread, keeping all
        job state single-threaded.
        """

        def emit(payload: dict) -> None:
            loop.call_soon_threadsafe(job.add_event, payload)

        def circuit_progress(line: str) -> None:
            emit({"type": "circuit", "message": " ".join(line.split())})

        def stage_progress(benchmark: str, event: StageEvent) -> None:
            emit(dict(event.to_payload(), type="stage", benchmark=benchmark))

        try:
            report = run_batch(
                job.items,
                job.request.batch_config(),
                progress=circuit_progress,
                cancel=job.cancel_requested,
                stage_progress=stage_progress,
            )
        except BatchCancelled:
            return "cancelled", None
        except Exception as exc:  # noqa: BLE001 — job isolation by design
            return "error", f"{type(exc).__name__}: {exc}"
        return "done", report
