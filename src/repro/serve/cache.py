"""Content-hash result cache for the serving layer.

A served result is a pure function of *what gets synthesized* — the
resolved circuit contents plus the report-affecting batch knobs — so a
resubmission of the same work can answer from the previous
:class:`~repro.flows.BatchReport` without resynthesizing anything.

:func:`submission_key` computes the cache key: a SHA-256 over a
canonical JSON encoding of

* the normalized config — ``flow``, ``verify``, ``cache_policy``,
  ``cache_capacity``, ``reorder``.  **Not** ``workers`` (the
  determinism contract makes 1- and N-worker reports byte-identical)
  and **not** ``priority`` (scheduling only); both hashing differently
  would just split identical results across cache slots;
* one descriptor per resolved :class:`~repro.api.InputItem`, in order:
  registry items by name (the registry is immutable for a server's
  lifetime), BLIF items by name **and the SHA-256 of the file bytes**
  — the same path resubmitted after the file changed must miss.

An item whose bytes cannot be read when the key is computed makes the
whole submission uncacheable (``None`` key): the batch layer would
report the failure its own way, and caching an error row keyed by a
file we could not even hash would pin a transient failure forever.

:class:`ResultCache` itself is a small LRU keyed by those digests.  It
is touched only from the event-loop thread (submit path and job
completion), so it needs no locking; the stored value is the live
``BatchReport`` — reports are never mutated after ``run_batch``
returns, so sharing one object between jobs is safe.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

from ..flows.batch import BatchConfig, BatchReport

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..api import InputItem

#: Default number of finished reports retained.
DEFAULT_RESULT_CACHE_SIZE = 64


def submission_key(
    items: "Sequence[InputItem]", config: BatchConfig
) -> str | None:
    """Content hash of one submission, or ``None`` if uncacheable."""
    descriptors: list[list[str]] = []
    for item in items:
        if item.kind == "registry":
            descriptors.append(["registry", item.name])
        elif item.kind == "blif" and item.path is not None:
            try:
                with open(item.path, "rb") as stream:
                    digest = hashlib.sha256(stream.read()).hexdigest()
            except OSError:
                return None
            descriptors.append(["blif", item.name, digest])
        else:  # unknown kind: refuse to guess what identifies it
            return None
    payload = {
        "config": {
            "flow": config.flow,
            "verify": config.verify,
            "cache_policy": config.cache_policy,
            "cache_capacity": config.cache_capacity,
            "reorder": config.reorder,
        },
        "items": descriptors,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded LRU of finished :class:`BatchReport` objects by key."""

    def __init__(self, max_entries: int = DEFAULT_RESULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError("result cache needs max_entries >= 1")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, BatchReport]" = OrderedDict()
        #: Submissions answered from the cache.
        self.hits = 0
        #: Submissions that had to synthesize.
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str | None) -> BatchReport | None:
        """The cached report for ``key``, counting the hit/miss.
        ``None`` keys (uncacheable submissions) always miss."""
        report = self._entries.get(key) if key is not None else None
        if report is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return report

    def put(self, key: str | None, report: BatchReport) -> None:
        """Retain a finished report (evicting the least recently used)."""
        if key is None:
            return
        self._entries[key] = report
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> dict[str, int | float]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
