"""Job model of the async serving layer.

A :class:`Job` is one submitted synthesis request: a
:class:`JobRequest` (flow, per-request knobs, priority), the resolved
:class:`~repro.api.InputItem` list it will synthesize, a state machine
(``queued → running → done | error | cancelled``, plus ``quarantined``
for poison jobs parked by journal replay), an append-only event
log (the wire payloads the ``/jobs/<id>/events`` endpoint streams), and
— once finished — the :class:`~repro.flows.BatchReport` whose
serialization is byte-identical to what :func:`repro.flows.run_batch`
produces for the same circuits.

Threading contract
------------------
All state transitions and event appends happen on the event-loop
thread; the executor thread that actually runs the batch communicates
exclusively through ``loop.call_soon_threadsafe``.  The one exception
is the cancel flag: it is a :class:`threading.Event` so the
``run_batch`` cancel hook can poll it from the worker thread (and the
flag crosses into pool workers only as a polled boolean, never as
shared state).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..bdd.manager import DEFAULT_CACHE_CAPACITY
from ..flows.batch import BatchConfig, BatchReport

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..api import InputItem
    from .journal import JobJournal

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"
#: Poison-job parking state: the journal shows this job was (re)started
#: ``max_attempts`` times without ever reaching a terminal record, so
#: replay refuses to enqueue it again (it crash-looped the service).
QUARANTINED = "quarantined"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, ERROR, CANCELLED, QUARANTINED})

#: Default cap on wire events retained per *finished* job.  A
#: long-lived server accumulates per-stage/per-circuit progress lines
#: for every job it ever ran; once a job is terminal only the tail of
#: that log is interesting, so the head is dropped (the stream endpoint
#: reports the truncation explicitly).
DEFAULT_EVENT_CAP = 256


@dataclass(frozen=True)
class JobRequest:
    """What a client asked for: circuits plus per-request batch knobs.

    ``priority`` orders the queue (lower runs sooner; ties run in
    submission order).  Everything else maps 1:1 onto
    :class:`~repro.flows.BatchConfig`, so a served job is exactly a
    ``run_batch`` call.
    """

    circuits: tuple[str, ...]
    flow: str = "bds-maj"
    workers: int = 1
    verify: bool = False
    cache_policy: str = "fifo"
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    reorder: str = "once"
    priority: int = 0

    def batch_config(self) -> BatchConfig:
        """The equivalent :class:`~repro.flows.BatchConfig` (validates
        the numeric/choice fields exactly like the CLI)."""
        return BatchConfig(
            flow=self.flow,
            workers=self.workers,
            verify=self.verify,
            cache_policy=self.cache_policy,
            cache_capacity=self.cache_capacity,
            reorder=self.reorder,
        )


class Job:
    """One queued/running/finished synthesis request."""

    def __init__(
        self,
        job_id: str,
        request: JobRequest,
        items: "Sequence[InputItem]",
        event_cap: int | None = None,
    ) -> None:
        self.id = job_id
        self.request = request
        self.items = list(items)
        self.state = QUEUED
        self.error: str | None = None
        self.report: BatchReport | None = None
        #: Content hash of (resolved circuit contents, report-affecting
        #: config) — the result-cache key; ``None`` if uncacheable.
        self.cache_key: str | None = None
        #: True when the report was answered from the result cache
        #: instead of a fresh synthesis.
        self.cache_hit = False
        #: Retained wire-ready event payloads, in emission order.  While
        #: the job runs the log is append-only and complete; once it
        #: reaches a terminal state the head may be dropped down to
        #: ``event_cap`` entries (:attr:`events_dropped` counts them, so
        #: ``events_dropped + index`` is an event's stable absolute
        #: position — the stream endpoint relies on that).
        self.events: list[dict] = []
        #: Events dropped from the *front* of the log by truncation.
        self.events_dropped = 0
        #: Times this job has been started: 1 for the original
        #: submission, +1 for every journal replay that re-enqueued it
        #: (attempt records).  The quarantine gate compares it against
        #: the service's ``max_attempts``.
        self.attempts = 1
        #: Invoked (on the loop thread) the moment the job reaches a
        #: terminal state — the store's journal write-through hook.
        self.on_terminal: Callable[[Job], None] | None = None
        self._event_cap = event_cap
        self._cancel = threading.Event()
        # Event-chain wakeup: every append swaps in a fresh event and
        # sets the old one, so any number of streaming readers can wait
        # without clear() races.
        self._changed = asyncio.Event()
        self.add_event({"type": "state", "status": QUEUED})

    # -- loop-thread side ----------------------------------------------
    def add_event(self, payload: dict) -> None:
        """Append one wire event and wake every streaming reader."""
        self.events.append(dict(payload, job=self.id))
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()

    def change_event(self) -> asyncio.Event:
        """The event the *next* :meth:`add_event` will set.  Capture it
        before draining :attr:`events`, then ``await`` it."""
        return self._changed

    @property
    def total_events(self) -> int:
        """Events ever emitted (retained plus truncated)."""
        return self.events_dropped + len(self.events)

    def _truncate_events(self) -> None:
        """Drop the head of the event log down to the configured cap
        (terminal-state jobs only — a running job's log stays complete
        so a late stream subscriber can replay everything)."""
        cap = self._event_cap
        if cap is None or len(self.events) <= cap:
            return
        drop = len(self.events) - cap
        del self.events[:drop]
        self.events_dropped += drop

    def mark_running(self) -> None:
        self.state = RUNNING
        self.add_event({"type": "state", "status": RUNNING})

    def finish(self, report: BatchReport) -> None:
        self.report = report
        self.state = DONE
        summary = report.summary()
        self.add_event(
            {
                "type": "state",
                "status": DONE,
                "ok": summary["ok"],
                "failed": summary["failed"],
            }
        )
        self._truncate_events()
        self._notify_terminal()

    def fail(self, error: str) -> None:
        self.error = error
        self.state = ERROR
        self.add_event({"type": "state", "status": ERROR, "error": error})
        self._truncate_events()
        self._notify_terminal()

    def mark_cancelled(self) -> None:
        self.state = CANCELLED
        self.add_event({"type": "state", "status": CANCELLED})
        self._truncate_events()
        self._notify_terminal()

    def mark_quarantined(self, error: str) -> None:
        """Park a poison job: terminal, never re-enqueued, with the
        attempt count on the record so operators can see the history."""
        self.error = error
        self.state = QUARANTINED
        self.add_event(
            {
                "type": "state",
                "status": QUARANTINED,
                "attempts": self.attempts,
                "error": error,
            }
        )
        self._truncate_events()
        self._notify_terminal()

    def _notify_terminal(self) -> None:
        if self.on_terminal is not None:
            self.on_terminal(self)

    def request_cancel(self) -> bool:
        """Ask the job to stop.

        A queued job is cancelled immediately (the dispatcher skips it);
        a running job keeps state ``running`` until its batch observes
        the flag and aborts.  Returns ``False`` for jobs already in a
        terminal state (nothing to do).
        """
        if self.state in TERMINAL_STATES:
            return False
        self._cancel.set()
        if self.state == QUEUED:
            self.mark_cancelled()
        return True

    # -- any-thread side -----------------------------------------------
    def cancel_requested(self) -> bool:
        """Thread-safe read of the cancel flag (the ``run_batch``
        ``cancel`` hook)."""
        return self._cancel.is_set()

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """All jobs the service has seen, by id, in submission order.

    Long-lived servers bound their memory in two ways:

    * ``event_cap`` — every job that reaches a terminal state keeps at
      most this many wire events (the head of the log is dropped;
      ``/jobs/<id>/events`` reports the truncation explicitly).
      ``None`` retains everything.
    * ``max_finished_jobs`` — at most this many *finished* jobs are
      retained; submitting a new job expires the oldest finished ones
      (their ids then answer 404).  Queued/running jobs never expire.
      ``None`` retains everything.

    With a ``journal`` the store is durable: every create appends a
    ``submit`` record, every terminal transition (wherever it happens —
    queue runner, cancel endpoint, shutdown) appends the matching
    terminal record via the job's ``on_terminal`` hook, and oversized
    journals are compacted down to the live jobs.  Replayed jobs enter
    through :meth:`adopt`, which also keeps the id counter monotonic
    across restarts.
    """

    def __init__(
        self,
        event_cap: int | None = DEFAULT_EVENT_CAP,
        max_finished_jobs: int | None = None,
        journal: "JobJournal | None" = None,
    ) -> None:
        if event_cap is not None and event_cap < 1:
            raise ValueError("event_cap must be >= 1 (or None)")
        if max_finished_jobs is not None and max_finished_jobs < 0:
            raise ValueError("max_finished_jobs must be >= 0 (or None)")
        self._jobs: dict[str, Job] = {}
        self._next_id = 1
        self._event_cap = event_cap
        self._max_finished = max_finished_jobs
        self._journal = journal

    def create(self, request: JobRequest, items: "Sequence[InputItem]") -> Job:
        job = Job(
            f"job-{self._next_id:06d}", request, items, event_cap=self._event_cap
        )
        self._next_id += 1
        self._jobs[job.id] = job
        if self._journal is not None:
            job.on_terminal = self._record_terminal
            self._journal.record_submit(job)
        self._expire_finished()
        return job

    def adopt(self, job: Job, next_id: int | None = None) -> Job:
        """Insert a journal-replayed job under its original id (and keep
        the id counter past it, so new jobs never collide)."""
        if job.id in self._jobs:
            raise ValueError(f"job id {job.id!r} already in the store")
        self._jobs[job.id] = job
        if next_id is not None:
            self._next_id = max(self._next_id, next_id)
        if self._journal is not None:
            job.on_terminal = self._record_terminal
        return job

    def _record_terminal(self, job: Job) -> None:
        """Journal write-through for terminal transitions, triggering
        compaction once the file outgrows its threshold."""
        self._journal.record_terminal(job)
        self._journal.maybe_compact(self.jobs(), self._next_id)

    def _expire_finished(self) -> None:
        """Evict the oldest finished jobs beyond ``max_finished_jobs``
        (dict order is submission order, so the scan is oldest-first)."""
        if self._max_finished is None:
            return
        finished = [job for job in self._jobs.values() if job.finished]
        for job in finished[: max(0, len(finished) - self._max_finished)]:
            del self._jobs[job.id]

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Job tally by state (the health endpoint's queue gauge)."""
        tally = {
            state: 0
            for state in (QUEUED, RUNNING, DONE, ERROR, CANCELLED, QUARANTINED)
        }
        for job in self._jobs.values():
            tally[job.state] += 1
        return tally
