"""Deterministic fault-injection plans.

The robustness layer (batch retries, journal replay quarantine, shard
breakers) is only trustworthy if its failure paths are exercised, and
real failures — OOM-killed pool workers, runaway sift passes, torn
journal writes, missing shared-memory segments — are hard to stage on
demand.  This module provides the staging: a :class:`FaultPlan` is a
small, seeded rule list that fires *actions* (kill the process, stall,
raise) at named *sites* the production code declares with
:func:`inject`.

Design constraints, in order:

* **Zero hot-path cost when disarmed.**  :func:`inject` is a module
  global ``None`` check when no plan is installed; production code may
  call it freely.
* **Deterministic.**  A rule fires based only on its own per-process
  hit counter and (optionally) a seeded hash of the site/key/hit
  triple — never on wall clocks or ambient randomness.  Targeting a
  specific circuit attempt is done with ``match`` (substring of the
  injection key, e.g. ``"c432:1"`` for attempt 1 of circuit c432),
  which is scheduling-independent even across pool workers.
* **Crosses process boundaries.**  Arming is environmental: when
  ``BDSMAJ_FAULT_PLAN`` holds a JSON plan, every process that imports
  ``repro.faults`` (spawn/forkserver pool workers, shard backends)
  installs it at import time.  Fork-started workers inherit the
  parent's installed plan object instead.

Plan JSON::

    {"seed": 7, "faults": [
        {"site": "batch.worker", "action": "kill", "match": "c432:1"},
        {"site": "batch.stage", "action": "stall", "seconds": 2.0},
        {"site": "journal.append", "action": "error", "after": 3, "times": 1}
    ]}

Rule fields: ``site`` (required, one of :data:`KNOWN_SITES`),
``action`` (required: ``kill`` | ``stall`` | ``error``), ``match``
(substring the injection key must contain; empty matches every key),
``after`` (matching hits to let pass before the rule may fire),
``times`` (max fires, ``0`` = unlimited), ``seconds`` (stall
duration), ``probability`` (seeded per-hit coin; ``1.0`` = always).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

#: Environment variable holding the JSON plan; set = armed everywhere.
ENV_VAR = "BDSMAJ_FAULT_PLAN"

#: Actions a rule may take when it fires.
ACTIONS = ("kill", "stall", "error")

#: Injection sites the production code declares.  The catalog is
#: advisory for humans; unknown sites are rejected at parse time so a
#: typo in a plan fails loudly instead of silently never firing.
KNOWN_SITES = (
    "batch.worker",  # start of one synthesis attempt (serial or pool)
    "batch.stage",  # start of one pipeline stage inside an attempt
    "journal.append",  # just before a journal record hits the file
    "journal.compact",  # temp file durable, rename not yet performed
    "arena.attach",  # worker attaching the shared BDD arena
)


class FaultPlanError(ValueError):
    """A fault plan failed validation (bad JSON, site, or action)."""


class FaultInjected(OSError):
    """Raised by the ``error`` action at the injection site."""


@dataclass
class FaultRule:
    """One site/action pairing with its firing discipline."""

    site: str
    action: str
    match: str = ""
    after: int = 0
    times: int = 1
    seconds: float = 0.05
    probability: float = 1.0
    #: Matching injections seen so far (this process).
    hits: int = 0
    #: Times the action actually ran (this process).
    fired: int = 0

    def validate(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultPlanError(f"unknown fault site {self.site!r}; known: {KNOWN_SITES}")
        if self.action not in ACTIONS:
            raise FaultPlanError(f"unknown fault action {self.action!r}; known: {ACTIONS}")
        if self.after < 0 or self.times < 0:
            raise FaultPlanError("fault rule 'after'/'times' must be >= 0")
        if self.seconds < 0:
            raise FaultPlanError("fault rule 'seconds' must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError("fault rule 'probability' must be in [0, 1]")


@dataclass
class FaultPlan:
    """A seeded list of :class:`FaultRule`, installed per process."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        raw_rules = payload.get("faults", [])
        if not isinstance(raw_rules, list):
            raise FaultPlanError("fault plan 'faults' must be a list")
        rules: list[FaultRule] = []
        for entry in raw_rules:
            if not isinstance(entry, dict):
                raise FaultPlanError("each fault rule must be a JSON object")
            unknown = set(entry) - {
                "site",
                "action",
                "match",
                "after",
                "times",
                "seconds",
                "probability",
            }
            if unknown:
                raise FaultPlanError(f"unknown fault rule field(s): {sorted(unknown)}")
            rule = FaultRule(
                site=str(entry.get("site", "")),
                action=str(entry.get("action", "")),
                match=str(entry.get("match", "")),
                after=int(entry.get("after", 0)),
                times=int(entry.get("times", 1)),
                seconds=float(entry.get("seconds", 0.05)),
                probability=float(entry.get("probability", 1.0)),
            )
            rule.validate()
            rules.append(rule)
        return cls(rules=rules, seed=int(payload.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {
                        "site": rule.site,
                        "action": rule.action,
                        "match": rule.match,
                        "after": rule.after,
                        "times": rule.times,
                        "seconds": rule.seconds,
                        "probability": rule.probability,
                    }
                    for rule in self.rules
                ],
            },
            sort_keys=True,
        )

    def stats(self) -> dict[str, int]:
        """Per-process totals (``hits`` seen, actions ``fired``)."""
        return {
            "rules": len(self.rules),
            "hits": sum(rule.hits for rule in self.rules),
            "fired": sum(rule.fired for rule in self.rules),
        }

    # ------------------------------------------------------------------

    def fire(self, site: str, key: str) -> None:
        """Run every due action for one injection point."""
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match and rule.match not in key:
                continue
            hit = rule.hits
            rule.hits += 1
            if hit < rule.after:
                continue
            if rule.times and rule.fired >= rule.times:
                continue
            if rule.probability < 1.0 and not self._coin(index, site, key, hit):
                continue
            rule.fired += 1
            self._act(rule, site, key)

    def _coin(self, index: int, site: str, key: str, hit: int) -> bool:
        """Seeded deterministic Bernoulli draw for one hit."""
        token = f"{self.seed}:{index}:{site}:{key}:{hit}".encode()
        digest = hashlib.sha256(token).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.rules[index].probability

    def _act(self, rule: FaultRule, site: str, key: str) -> None:
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.action == "stall":
            time.sleep(rule.seconds)
        else:
            raise FaultInjected(f"injected fault at {site} ({key or 'no key'})")


# ----------------------------------------------------------------------
# Process-global installation

_PLAN: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` for this process (``None`` disarms); returns the
    previously installed plan so tests can restore it."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def current_plan() -> FaultPlan | None:
    return _PLAN


def active() -> bool:
    """True when a plan is installed (used to gate optional hooks)."""
    return _PLAN is not None


def inject(site: str, key: str = "") -> None:
    """Declare an injection point.  No-op unless a plan is installed."""
    plan = _PLAN
    if plan is None:
        return
    plan.fire(site, key)


def arm_from_env(environ: "os._Environ[str] | dict[str, str] | None" = None) -> FaultPlan | None:
    """Install the plan named by :data:`ENV_VAR`, if any.

    Called at import time so spawn/forkserver pool workers and shard
    backend subprocesses arm themselves; a malformed plan raises
    :class:`FaultPlanError` loudly rather than silently disarming.
    """
    env = os.environ if environ is None else environ
    text = env.get(ENV_VAR)
    if not text:
        return None
    plan = FaultPlan.from_json(text)
    install_plan(plan)
    return plan


arm_from_env()
