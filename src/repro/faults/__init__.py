"""Deterministic, environment-armed fault injection (see ``plan.py``).

Off by default: with no plan installed, :func:`inject` is a single
module-global ``None`` check.  Arm via the ``BDSMAJ_FAULT_PLAN``
environment variable (crosses process boundaries) or
:func:`install_plan` (same process / fork children).
"""

from .plan import (
    ACTIONS,
    ENV_VAR,
    KNOWN_SITES,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    active,
    arm_from_env,
    current_plan,
    inject,
    install_plan,
)

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "KNOWN_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "active",
    "arm_from_env",
    "current_plan",
    "inject",
    "install_plan",
]
