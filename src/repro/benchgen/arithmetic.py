"""Gate-level generators for the paper's custom HDL benchmarks.

Section V.A.1 evaluates BDS-MAJ on "ad hoc large HDL descriptions"
converted to BLIF: SQRT 32 bit, Wallace 16 bit, CLA 64 bit, Rev (1/X)
19 bit, Div 18 bit, MAC 16 bit and 4-Op ADD 16 bit.  The authors' HDL
is not published, so these generators build the same arithmetic
functions at the same widths directly as :class:`LogicNetwork` SOP
nodes — exactly what an HDL-to-blif translator produces for the
corresponding RTL (e.g. a full-adder carry becomes the three-cube cover
``ab + ac + bc``).

Every generator is deterministic and functionally verified against
Python integer arithmetic in the test suite.
"""

from __future__ import annotations

from ..network import LogicNetwork

# ----------------------------------------------------------------------
# Small building blocks
# ----------------------------------------------------------------------


def _bus(net: LogicNetwork, prefix: str, width: int) -> list[str]:
    """Declare ``width`` primary inputs ``prefix0..prefix{width-1}``
    (LSB first)."""
    return [net.add_input(f"{prefix}{i}") for i in range(width)]


def _out_bus(net: LogicNetwork, signals: list[str]) -> None:
    for signal in signals:
        net.add_output(signal)


class _Namer:
    """Unique hierarchical names for generated gates."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def __call__(self, stem: str) -> str:
        count = self._counts.get(stem, 0)
        self._counts[stem] = count + 1
        return f"{stem}_{count}"


def _half_adder(net: LogicNetwork, name: _Namer, a: str, b: str) -> tuple[str, str]:
    """Returns (sum, carry)."""
    s = net.add_xor(name("ha_s"), a, b)
    c = net.add_and(name("ha_c"), a, b)
    return s, c


def _full_adder(
    net: LogicNetwork, name: _Namer, a: str, b: str, cin: str
) -> tuple[str, str]:
    """Returns (sum, carry); the carry is the MAJ-shaped SOP cover
    ``ab + ac + bc`` an HDL translator would emit."""
    p = net.add_xor(name("fa_p"), a, b)
    s = net.add_xor(name("fa_s"), p, cin)
    c = net.add_maj(name("fa_c"), a, b, cin)
    return s, c


def _ripple_add(
    net: LogicNetwork,
    name: _Namer,
    a: list[str],
    b: list[str],
    cin: str | None = None,
) -> tuple[list[str], str]:
    """Carry-propagate adder; returns (sum bits, carry-out).  Operands
    may differ in width (the shorter is zero-extended)."""
    width = max(len(a), len(b))
    zero = _const(net, name, False)
    sums: list[str] = []
    carry = cin if cin is not None else None
    for i in range(width):
        bit_a = a[i] if i < len(a) else zero
        bit_b = b[i] if i < len(b) else zero
        if carry is None:
            s, carry = _half_adder(net, name, bit_a, bit_b)
        else:
            s, carry = _full_adder(net, name, bit_a, bit_b, carry)
        sums.append(s)
    return sums, carry


def _const(net: LogicNetwork, name: _Namer, value: bool) -> str:
    return net.add_const(name("const1" if value else "const0"), value)


def _subtract(
    net: LogicNetwork, name: _Namer, a: list[str], b: list[str]
) -> tuple[list[str], str]:
    """``a - b`` via two's complement; returns (difference bits,
    no_borrow) where ``no_borrow = 1`` iff ``a >= b``.  Operands are
    taken at equal width (caller pads)."""
    assert len(a) == len(b)
    inverted = [net.add_not(name("sub_n"), bit) for bit in b]
    one = _const(net, name, True)
    difference, carry = _ripple_add(net, name, a, inverted, cin=one)
    return difference, carry


def _mux_bit(net: LogicNetwork, name: _Namer, select: str, when_true: str, when_false: str) -> str:
    return net.add_mux(name("mux"), select, when_true, when_false)


def _mux_bus(
    net: LogicNetwork, name: _Namer, select: str, when_true: list[str], when_false: list[str]
) -> list[str]:
    assert len(when_true) == len(when_false)
    return [
        _mux_bit(net, name, select, t, e) for t, e in zip(when_true, when_false)
    ]


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------


def ripple_carry_adder(width: int, name: str = "rca") -> LogicNetwork:
    """Baseline ripple-carry adder: a + b -> sum, cout."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    sums, carry = _ripple_add(net, namer, a, b)
    rename = [net.add_buf(f"sum{i}", s) for i, s in enumerate(sums)]
    cout = net.add_buf("cout", carry)
    _out_bus(net, rename)
    net.add_output(cout)
    return net


def carry_lookahead_adder(width: int = 64, name: str = "cla") -> LogicNetwork:
    """Hierarchical carry-lookahead adder (4-bit groups, lookahead
    across groups per level) — the paper's ``CLA 64 bit``."""
    power = width
    while power > 1 and power % 4 == 0:
        power //= 4
    if power != 1:
        raise ValueError("CLA width must be a power of 4 (radix-4 lookahead tree)")
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    cin = net.add_input("cin")

    g = [net.add_and(namer("g"), a[i], b[i]) for i in range(width)]
    # Sum bits need the XOR propagate; the carry tree uses the OR form
    # (c' = ab + (a|b)c gives identical carries and is the common HDL
    # idiom that exposes the carry's majority structure MAJ(a, b, c)).
    p = [net.add_xor(namer("p"), a[i], b[i]) for i in range(width)]
    p_carry = [net.add_or(namer("pc"), a[i], b[i]) for i in range(width)]

    # Phase 1 — bottom-up: group generate/propagate tree (radix 4).
    # Each tree node is (children, group_g, group_p); leaves are bits.
    def build_gp(gen: list[str], prop: list[str]):
        if len(gen) == 1:
            return ("leaf", gen[0], prop[0])
        quarter = len(gen) // 4
        children = [
            build_gp(gen[q * quarter : (q + 1) * quarter], prop[q * quarter : (q + 1) * quarter])
            for q in range(4)
        ]
        child_g = [child[1] for child in children]
        child_p = [child[2] for child in children]
        # Group generate: g3 + p3·g2 + p3·p2·g1 + p3·p2·p1·g0.
        group_g = child_g[3]
        prefix = child_p[3]
        for i in (2, 1, 0):
            term = net.add_and(namer("gg_t"), prefix, child_g[i])
            group_g = net.add_or(namer("gg"), group_g, term)
            if i > 0:
                prefix = net.add_and(namer("gp_pfx"), prefix, child_p[i])
        group_p = net.add_and(
            namer("gp"),
            net.add_and(namer("gp_a"), child_p[3], child_p[2]),
            net.add_and(namer("gp_b"), child_p[1], child_p[0]),
        )
        return ("block", group_g, group_p, children)

    # Phase 2 — top-down: distribute carries using the G/P tree.
    def assign_carries(tree, carry_in: str) -> list[str]:
        if tree[0] == "leaf":
            return [carry_in]
        children = tree[3]
        carries_into_child = [carry_in]
        for q in range(1, 4):
            term = net.add_and(namer("cla_t"), children[q - 1][2], carries_into_child[q - 1])
            carries_into_child.append(
                net.add_or(namer("cla_c"), children[q - 1][1], term)
            )
        result: list[str] = []
        for q in range(4):
            result.extend(assign_carries(children[q], carries_into_child[q]))
        return result

    tree = build_gp(g, p_carry)
    top_g, top_p = tree[1], tree[2]
    carries = assign_carries(tree, cin)
    sums = [net.add_xor(f"sum{i}", p[i], carries[i]) for i in range(width)]
    cout_term = net.add_and(namer("cout_t"), top_p, cin)
    net.add_or("cout", top_g, cout_term)
    _out_bus(net, sums)
    net.add_output("cout")
    net.sweep_dangling()
    return net


def four_operand_adder(width: int = 16, name: str = "add4") -> LogicNetwork:
    """Four-operand adder (carry-save reduction + final CPA) — the
    paper's ``4-Op ADD 16 bit``."""
    net = LogicNetwork(name)
    namer = _Namer()
    operands = [_bus(net, prefix, width) for prefix in ("a", "b", "c", "d")]
    columns: list[list[str]] = [[] for _ in range(width + 2)]
    for operand in operands:
        for i, bit in enumerate(operand):
            columns[i].append(bit)
    sums = _reduce_columns(net, namer, columns, total_width=width + 2)
    outputs = [net.add_buf(f"sum{i}", s) for i, s in enumerate(sums)]
    _out_bus(net, outputs)
    return net


# ----------------------------------------------------------------------
# Multipliers
# ----------------------------------------------------------------------


def array_multiplier(width: int = 16, name: str = "array_mult") -> LogicNetwork:
    """Ripple array multiplier (rows of carry-propagate adders).  At
    width 16 this is the functional re-creation of ISCAS/MCNC ``C6288``,
    which is a 16x16 adder-array multiplier."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    zero = _const(net, namer, False)

    first_row = [net.add_and(namer("pp"), a[i], b[0]) for i in range(width)]
    outputs: list[str] = [first_row[0]]
    # Accumulator holds weights j .. j+width-1 at the top of row j.
    accumulator = [*first_row[1:], zero]
    for j in range(1, width):
        row = [net.add_and(namer("pp"), a[i], b[j]) for i in range(width)]
        sums, carry = _ripple_add(net, namer, accumulator, row)
        outputs.append(sums[0])
        accumulator = [*sums[1:], carry]
    outputs.extend(accumulator)

    renamed = [net.add_buf(f"prod{i}", s) for i, s in enumerate(outputs)]
    _out_bus(net, renamed)
    net.sweep_dangling()
    return net


def _reduce_columns(
    net: LogicNetwork, namer: _Namer, columns: list[list[str]], total_width: int
) -> list[str]:
    """Wallace-style column reduction: compress every column to at most
    two bits with full/half adders, then one final carry-propagate add."""
    columns = [list(column) for column in columns]
    while max((len(column) for column in columns), default=0) > 2:
        next_columns: list[list[str]] = [[] for _ in range(len(columns) + 1)]
        for position, column in enumerate(columns):
            index = 0
            while len(column) - index >= 3:
                s, c = _full_adder(
                    net, namer, column[index], column[index + 1], column[index + 2]
                )
                next_columns[position].append(s)
                next_columns[position + 1].append(c)
                index += 3
            if len(column) - index == 2:
                s, c = _half_adder(net, namer, column[index], column[index + 1])
                next_columns[position].append(s)
                next_columns[position + 1].append(c)
                index += 2
            next_columns[position].extend(column[index:])
        while len(next_columns) > total_width:
            next_columns.pop()
        columns = next_columns

    zero = _const(net, namer, False)
    operand_a = [column[0] if len(column) >= 1 else zero for column in columns]
    operand_b = [column[1] if len(column) >= 2 else zero for column in columns]
    sums, _ = _ripple_add(net, namer, operand_a, operand_b)
    return sums[:total_width]


def wallace_multiplier(width: int = 16, name: str = "wallace") -> LogicNetwork:
    """Wallace-tree multiplier — the paper's ``Wallace 16 bit``."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    columns: list[list[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(net.add_and(namer("pp"), a[i], b[j]))
    sums = _reduce_columns(net, namer, columns, total_width=2 * width)
    outputs = [net.add_buf(f"prod{i}", s) for i, s in enumerate(sums)]
    _out_bus(net, outputs)
    net.sweep_dangling()
    return net


def multiply_accumulate(width: int = 16, name: str = "mac") -> LogicNetwork:
    """Multiply-accumulate ``a*b + acc`` — the paper's ``MAC 16 bit``
    (width-bit operands, 2*width-bit accumulator)."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    acc = _bus(net, "acc", 2 * width)
    columns: list[list[str]] = [[] for _ in range(2 * width + 1)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(net.add_and(namer("pp"), a[i], b[j]))
    for i, bit in enumerate(acc):
        columns[i].append(bit)
    sums = _reduce_columns(net, namer, columns, total_width=2 * width + 1)
    outputs = [net.add_buf(f"mac{i}", s) for i, s in enumerate(sums)]
    _out_bus(net, outputs)
    net.sweep_dangling()
    return net


# ----------------------------------------------------------------------
# Division, reciprocal, square root
# ----------------------------------------------------------------------


def restoring_divider(width: int = 18, name: str = "div") -> LogicNetwork:
    """Restoring array divider: quotient and remainder of ``a / b`` —
    the paper's ``Div 18 bit``.  Outputs are unspecified for b = 0."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    zero = _const(net, namer, False)
    divisor = [*b, zero]  # width+1 bits so the subtraction never wraps

    remainder: list[str] = [zero] * (width + 1)
    quotient: list[str] = [""] * width
    for step in range(width - 1, -1, -1):
        shifted = [a[step], *remainder[:width]]
        difference, no_borrow = _subtract(net, namer, shifted, divisor)
        quotient[step] = net.add_buf(f"q{step}", no_borrow)
        remainder = _mux_bus(net, namer, no_borrow, difference, shifted)
    remainder_out = [net.add_buf(f"r{i}", remainder[i]) for i in range(width)]
    _out_bus(net, quotient)
    _out_bus(net, remainder_out)
    net.sweep_dangling()
    return net


def reciprocal(width: int = 19, name: str = "rev") -> LogicNetwork:
    """Reciprocal ``floor(2^(width-1) / x)`` via a restoring division
    array with constant dividend — the paper's ``Rev (1/X) 19 bit``.
    Output is unspecified for x = 0."""
    net = LogicNetwork(name)
    namer = _Namer()
    x = _bus(net, "x", width)
    zero = _const(net, namer, False)
    one = _const(net, namer, True)
    # Dividend 2^(width-1): MSB one, all lower bits zero.
    dividend = [*[zero] * (width - 1), one]
    divisor = [*x, zero]

    remainder: list[str] = [zero] * (width + 1)
    quotient: list[str] = [""] * width
    for step in range(width - 1, -1, -1):
        shifted = [dividend[step], *remainder[:width]]
        difference, no_borrow = _subtract(net, namer, shifted, divisor)
        quotient[step] = net.add_buf(f"q{step}", no_borrow)
        remainder = _mux_bus(net, namer, no_borrow, difference, shifted)
    _out_bus(net, quotient)
    net.sweep_dangling()
    return net


def square_root(width: int = 32, name: str = "sqrt") -> LogicNetwork:
    """Restoring square root: ``r = floor(sqrt(n))`` for a ``width``-bit
    radicand — the paper's ``SQRT 32 bit`` (16-bit root)."""
    if width % 2 != 0:
        raise ValueError("radicand width must be even")
    net = LogicNetwork(name)
    namer = _Namer()
    n = _bus(net, "n", width)
    half = width // 2
    zero = _const(net, namer, False)
    one = _const(net, namer, True)

    # Digit-by-digit: rem and root grow as bits are consumed MSB-first.
    rem_width = half + 2
    remainder: list[str] = [zero] * rem_width
    root: list[str] = []  # MSB-first list of root bits

    for step in range(half):
        hi = width - 2 * step - 1
        incoming = [n[hi - 1], n[hi]]  # two next radicand bits, LSB first
        shifted = incoming + remainder[: rem_width - 2]
        # Trial subtrahend: (root << 2) | 01  == 4*root + 1, LSB first.
        trial = [one, zero, *reversed(root)]
        trial += [zero] * (rem_width - len(trial))
        difference, no_borrow = _subtract(net, namer, shifted, trial[:rem_width])
        remainder = _mux_bus(net, namer, no_borrow, difference, shifted)
        root.append(net.add_buf(f"rootbit{step}", no_borrow))

    # ``root`` accumulated MSB-first; outputs are named LSB-first.
    outputs = [net.add_buf(f"root{i}", bit) for i, bit in enumerate(reversed(root))]
    _out_bus(net, outputs)
    net.sweep_dangling()
    return net
