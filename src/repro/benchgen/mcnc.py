"""MCNC benchmark stand-ins used by Tables I and II.

The MCNC suite is not redistributable, so each circuit is re-created:

* where the function is documented (C6288 = 16x16 array multiplier,
  C1355 = 32-bit SEC circuit, alu2 = small ALU, f51m = 8-bit arithmetic
  block) the stand-in computes the real function;
* PLA/random-control benchmarks (vda, misex3, seq, apex6, bigkey) get
  seeded synthetic networks matched to the published PI/PO counts and
  logic character.

See DESIGN.md for the substitution rationale: all four compared flows
consume identical inputs, so relative results are preserved.
"""

from __future__ import annotations

from ..network import LogicNetwork
from .arithmetic import (
    _Namer,
    _bus,
    _full_adder,
    _mux_bus,
    _out_bus,
    _ripple_add,
    _subtract,
    array_multiplier,
)
from .ecc import hamming_corrector
from .random_logic import (
    key_mixing_network,
    random_control_network,
    random_pla_network,
)


def alu2(name: str = "alu2") -> LogicNetwork:
    """A 3-bit, 8-operation ALU (10 PIs / 6 POs like MCNC alu2).

    Inputs: a[3], b[3], cin, op[3].  Outputs: r[3], cout, zero, ovf.
    Operations: ADD, SUB, AND, OR, XOR, XNOR, NOT-A, PASS-B.
    """
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", 3)
    b = _bus(net, "b", 3)
    cin = net.add_input("cin")
    op = _bus(net, "op", 3)

    add_sum, add_carry = _ripple_add(net, namer, a, b, cin=cin)
    not_b = [net.add_not(namer("nb"), bit) for bit in b]
    sub_sum, sub_carry = _ripple_add(net, namer, a, not_b, cin=cin)
    and_bits = [net.add_and(namer("andb"), a[i], b[i]) for i in range(3)]
    or_bits = [net.add_or(namer("orb"), a[i], b[i]) for i in range(3)]
    xor_bits = [net.add_xor(namer("xorb"), a[i], b[i]) for i in range(3)]
    xnor_bits = [net.add_xnor(namer("xnorb"), a[i], b[i]) for i in range(3)]
    nota_bits = [net.add_not(namer("na"), a[i]) for i in range(3)]

    # Operation select: op2 chooses arithmetic vs logic; op1/op0 pick
    # within the family (three levels of 2:1 muxes per result bit).
    arith = _mux_bus(net, namer, op[0], sub_sum, add_sum)
    logic_a = _mux_bus(net, namer, op[0], or_bits, and_bits)
    logic_b = _mux_bus(net, namer, op[0], xnor_bits, xor_bits)
    misc = _mux_bus(net, namer, op[0], b, nota_bits)
    low = _mux_bus(net, namer, op[1], logic_a, arith)
    high = _mux_bus(net, namer, op[1], misc, logic_b)
    result = _mux_bus(net, namer, op[2], high, low)

    carry = net.add_mux(namer("carrysel"), op[0], sub_carry, add_carry)
    is_arith = net.add_nor(namer("isarith"), op[1], op[2])
    cout = net.add_and("cout", carry, is_arith)
    zero = net.add_nor("zero", *result)
    # Signed overflow of the arithmetic result: carry into MSB != carry out.
    msb_a, msb_b = a[2], b[2]
    same_sign = net.add_xnor(namer("ss"), msb_a, msb_b)
    diff_res = net.add_xor(namer("dr"), msb_a, result[2])
    ovf_raw = net.add_and(namer("ovfr"), same_sign, diff_res)
    ovf = net.add_and("ovf", ovf_raw, is_arith)

    outputs = [net.add_buf(f"r{i}", bit) for i, bit in enumerate(result)]
    _out_bus(net, outputs)
    for extra in (cout, zero, ovf):
        net.add_output(extra)
    net.sweep_dangling()
    return net


def f51m(name: str = "f51m") -> LogicNetwork:
    """8-input / 8-output arithmetic block (MCNC f51m stand-in):
    a 4x4 multiplier, matching f51m's arithmetic character."""
    return array_multiplier(4, name=name)


def c6288(name: str = "C6288") -> LogicNetwork:
    """ISCAS C6288: a 16x16 array multiplier (functional re-creation)."""
    return array_multiplier(16, name=name)


def c1355(name: str = "C1355") -> LogicNetwork:
    """ISCAS C1355: 32-bit single-error correction (functional ECC
    stand-in with the same 41-PI / 32-PO interface)."""
    net = hamming_corrector(name=name)
    return net


def dalu(name: str = "dalu") -> LogicNetwork:
    """Dedicated ALU stand-in (75 PIs / 16 POs like MCNC dalu).

    Four 16-bit operands, a 4-bit opcode, carry-in and a 6-bit mask;
    16-bit result.  Mix of arithmetic (adds/sub/majority) and logic ops.
    """
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", 16)
    b = _bus(net, "b", 16)
    c = _bus(net, "c", 16)
    d = _bus(net, "d", 16)
    op = _bus(net, "op", 4)
    cin = net.add_input("cin")
    mask = _bus(net, "m", 6)

    add_ab, _ = _ripple_add(net, namer, a, b, cin=cin)
    not_b = [net.add_not(namer("nb"), bit) for bit in b]
    sub_ab, _ = _ripple_add(net, namer, a, not_b, cin=cin)
    add_cd, _ = _ripple_add(net, namer, c, d)
    maj_abc = [net.add_maj(namer("mj"), a[i], b[i], c[i]) for i in range(16)]
    and_ab = [net.add_and(namer("ab"), a[i], b[i]) for i in range(16)]
    or_cd = [net.add_or(namer("cd"), c[i], d[i]) for i in range(16)]
    xor_ab = [net.add_xor(namer("xab"), a[i], b[i]) for i in range(16)]
    xor_abcd = [net.add_xor(namer("xabcd"), xor_ab[i], net.add_xor(namer("xcd"), c[i], d[i])) for i in range(16)]

    level0_a = _mux_bus(net, namer, op[0], sub_ab, add_ab)
    level0_b = _mux_bus(net, namer, op[0], maj_abc, add_cd)
    level0_c = _mux_bus(net, namer, op[0], or_cd, and_ab)
    level0_d = _mux_bus(net, namer, op[0], xor_abcd, xor_ab)
    level1_a = _mux_bus(net, namer, op[1], level0_b, level0_a)
    level1_b = _mux_bus(net, namer, op[1], level0_d, level0_c)
    result = _mux_bus(net, namer, op[2], level1_b, level1_a)

    # op[3] conditionally XOR-masks the low bits (mask replicated).
    final = []
    for i in range(16):
        flip = net.add_and(namer("flipen"), op[3], mask[i % 6])
        final.append(net.add_xor(f"y{i}", result[i], flip))
    _out_bus(net, final)
    net.sweep_dangling()
    return net


def apex6(name: str = "apex6") -> LogicNetwork:
    """Random-control stand-in (135 PIs / 99 POs like MCNC apex6)."""
    return random_control_network(
        name, num_inputs=135, num_outputs=99, num_nodes=680, seed=0xA9E6
    )


def vda(name: str = "vda") -> LogicNetwork:
    """PLA-style stand-in (17 PIs / 39 POs like MCNC vda)."""
    return random_pla_network(
        name, num_inputs=17, num_outputs=39, num_terms=130, seed=0x7DA
    )


def misex3(name: str = "misex3") -> LogicNetwork:
    """PLA-style stand-in (14 PIs / 14 POs like MCNC misex3)."""
    return random_pla_network(
        name,
        num_inputs=14,
        num_outputs=14,
        num_terms=220,
        seed=0x3153,
        literals_per_term=(4, 8),
        terms_per_output=(10, 24),
    )


def seq(name: str = "seq") -> LogicNetwork:
    """PLA-style stand-in (41 PIs / 35 POs like MCNC seq)."""
    return random_pla_network(
        name,
        num_inputs=41,
        num_outputs=35,
        num_terms=320,
        seed=0x5E0,
        literals_per_term=(4, 9),
        terms_per_output=(8, 20),
    )


def bigkey(name: str = "bigkey") -> LogicNetwork:
    """Key-mixing stand-in for the bigkey benchmark's combinational
    core (XOR-rich crypto-style structure)."""
    return key_mixing_network(name, data_bits=64, key_bits=64, rounds=4, seed=0xB16)
