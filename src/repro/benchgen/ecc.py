"""Error-correcting-code circuit: the functional stand-in for C1355.

MCNC/ISCAS C1355 (41 PIs, 32 POs) is a 32-bit single-error-correcting
circuit built almost entirely from XOR trees.  The original netlist is
not redistributable, so this generator builds a Hamming SEC-DED
corrector with the same interface flavour and the same XOR-dominated
structure:

* inputs: 32 received data bits, 6 Hamming check bits, 1 overall
  parity bit, 2 enables (41 total, as in C1355);
* outputs: the 32 corrected data bits.

Correction: the syndrome (XOR trees over code positions) addresses the
erroneous bit; a bit flips when the syndrome matches its position, the
overall parity disagrees (single-error signature) and both enables are
set.
"""

from __future__ import annotations

from ..network import LogicNetwork

#: Number of data bits; check bits cover positions 1..39.
DATA_BITS = 32
CHECK_BITS = 6


def _code_positions() -> list[int]:
    """Codeword positions (1-based) of the data bits: all positions in
    1..39 that are not powers of two, in increasing order."""
    positions = []
    position = 1
    while len(positions) < DATA_BITS:
        if position & (position - 1):  # not a power of two
            positions.append(position)
        position += 1
    return positions


def hamming_corrector(name: str = "ecc32") -> LogicNetwork:
    """Build the 32-bit Hamming SEC-DED corrector (C1355 stand-in)."""
    net = LogicNetwork(name)
    data = [net.add_input(f"d{i}") for i in range(DATA_BITS)]
    checks = [net.add_input(f"c{j}") for j in range(CHECK_BITS)]
    parity = net.add_input("p")
    enable_a = net.add_input("en_a")
    enable_b = net.add_input("en_b")

    positions = _code_positions()

    # Syndrome bit j: XOR of the check bit and every data bit whose
    # position has bit j set (balanced XOR trees).
    syndrome: list[str] = []
    for j in range(CHECK_BITS):
        members = [
            checks[j],
            *(data[i] for i, position in enumerate(positions) if position >> j & 1),
        ]
        syndrome.append(_xor_tree(net, f"syn{j}", members))

    # Overall parity across everything (SEC-DED double-error guard).
    overall = _xor_tree(net, "overall", [*data, *checks, parity])

    enable = net.add_and("enable", enable_a, enable_b)
    correcting = net.add_and("correcting", enable, overall)

    for i, position in enumerate(positions):
        match_literals = []
        for j in range(CHECK_BITS):
            if position >> j & 1:
                match_literals.append(syndrome[j])
            else:
                match_literals.append(net.add_not(f"syn{j}_n_{i}", syndrome[j]))
        match = _and_tree(net, f"match{i}", match_literals)
        flip = net.add_and(f"flip{i}", match, correcting)
        net.add_xor(f"o{i}", data[i], flip)
        net.add_output(f"o{i}")
    net.sweep_dangling()
    return net


def _xor_tree(net: LogicNetwork, name: str, members: list[str]) -> str:
    """Balanced XOR tree over ``members`` named ``name``."""
    level = list(members)
    stage = 0
    while len(level) > 1:
        next_level = []
        for k in range(0, len(level) - 1, 2):
            next_level.append(
                net.add_xor(f"{name}_x{stage}_{k // 2}", level[k], level[k + 1])
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    result = level[0]
    return net.add_buf(name, result)


def _and_tree(net: LogicNetwork, name: str, members: list[str]) -> str:
    level = list(members)
    stage = 0
    while len(level) > 1:
        next_level = []
        for k in range(0, len(level) - 1, 2):
            next_level.append(
                net.add_and(f"{name}_a{stage}_{k // 2}", level[k], level[k + 1])
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    return level[0]
