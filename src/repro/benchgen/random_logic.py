"""Seeded random network generators for MCNC control-logic stand-ins.

Several MCNC circuits used in Table I/II (apex6, vda, misex3, seq,
bigkey) are random-control or PLA-style benchmarks whose original
netlists are not redistributable.  Their role in the paper is to
represent AND/OR-intensive logic, so the stand-ins generated here match
that character (and the published PI/PO counts) rather than the exact
functions — all four synthesis flows see identical inputs, which is
what the comparison requires.

Two generators:

* :func:`random_control_network` — layered random gate DAGs
  (AND/OR-biased with a sprinkle of XOR/MUX, like apex6);
* :func:`random_pla_network` — shared random product terms ORed into
  outputs (like vda / misex3 / seq, which are PLA benchmarks).

Both are fully deterministic given the seed.
"""

from __future__ import annotations

import random

from ..network import LogicNetwork


def random_control_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_nodes: int,
    seed: int,
    xor_fraction: float = 0.08,
) -> LogicNetwork:
    """A layered random gate DAG with AND/OR-dominated node functions."""
    rng = random.Random(seed)
    net = LogicNetwork(name)
    inputs = [net.add_input(f"x{i}") for i in range(num_inputs)]
    pool: list[str] = list(inputs)

    def pick_fanin(exclude: str | None = None) -> str:
        # Prefer recent signals to build depth; occasionally reach back.
        while True:
            if rng.random() < 0.35:
                candidate = rng.choice(pool)
            else:
                window = pool[-min(len(pool), 48) :]
                candidate = rng.choice(window)
            if candidate != exclude:
                return candidate

    gate_choices = ("and", "or", "nand", "nor", "andnot", "ornot")

    def add_gate(index: int, left: str, right: str) -> str:
        node_name = f"n{index}"
        roll = rng.random()
        if roll < xor_fraction:
            return net.add_xor(node_name, left, right)
        gate = rng.choice(gate_choices)
        if gate == "and":
            return net.add_and(node_name, left, right)
        if gate == "or":
            return net.add_or(node_name, left, right)
        if gate == "nand":
            return net.add_nand(node_name, left, right)
        if gate == "nor":
            return net.add_nor(node_name, left, right)
        if gate == "andnot":
            return net.add_node(node_name, (left, right), ("10",))
        return net.add_node(node_name, (left, right), ("1-", "-0"))  # ornot

    created = 0
    # First wave guarantees every input lands in some node's support.
    for i in range(0, num_inputs, 2):
        left = inputs[i]
        right = inputs[i + 1] if i + 1 < num_inputs else pick_fanin(exclude=left)
        pool.append(add_gate(created, left, right))
        created += 1
    while created < num_nodes:
        left = pick_fanin()
        right = pick_fanin(exclude=left)
        pool.append(add_gate(created, left, right))
        created += 1

    candidates = [s for s in pool if s not in set(inputs)]
    tail = candidates[-max(num_outputs * 2, num_outputs) :]
    rng.shuffle(tail)
    for position, signal in enumerate(tail[:num_outputs]):
        net.add_buf(f"y{position}", signal)
        net.add_output(f"y{position}")
    net.sweep_dangling()
    return net


def random_pla_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_terms: int,
    seed: int,
    literals_per_term: tuple[int, int] = (3, 6),
    terms_per_output: tuple[int, int] = (4, 10),
) -> LogicNetwork:
    """A PLA-style network: shared product terms feeding output ORs."""
    rng = random.Random(seed)
    net = LogicNetwork(name)
    inputs = [net.add_input(f"x{i}") for i in range(num_inputs)]

    terms: list[str] = []
    for t in range(num_terms):
        k = rng.randint(*literals_per_term)
        k = min(k, num_inputs)
        chosen = rng.sample(range(num_inputs), k)
        row = ["-"] * num_inputs
        for position in chosen:
            row[position] = "1" if rng.random() < 0.5 else "0"
        # Single-cube node (one PLA AND-plane row) over its literals.
        compact_fanins = [inputs[i] for i in chosen]
        compact_row = "".join(row[i] for i in chosen)
        terms.append(net.add_node(f"t{t}", compact_fanins, (compact_row,)))

    for o in range(num_outputs):
        count = rng.randint(*terms_per_output)
        chosen_terms = rng.sample(terms, min(count, len(terms)))
        net.add_or(f"y{o}", *chosen_terms)
        net.add_output(f"y{o}")
    net.sweep_dangling()
    return net


def key_mixing_network(
    name: str,
    data_bits: int = 64,
    key_bits: int = 64,
    rounds: int = 4,
    seed: int = 2013,
) -> LogicNetwork:
    """A crypto-style key-mixing network (bigkey stand-in): alternating
    key-XOR layers, random 4-input S-box nodes and bit permutations."""
    rng = random.Random(seed)
    net = LogicNetwork(name)
    data = [net.add_input(f"d{i}") for i in range(data_bits)]
    key = [net.add_input(f"k{i}") for i in range(key_bits)]

    state = list(data)
    for round_index in range(rounds):
        # Key mixing: XOR each state bit with a (rotated) key bit.
        mixed = []
        for i, signal in enumerate(state):
            key_bit = key[(i + 13 * round_index) % key_bits]
            mixed.append(net.add_xor(f"r{round_index}_mix{i}", signal, key_bit))
        # Substitution: disjoint groups of 4 bits through random S-boxes.
        substituted: list[str] = []
        for group in range(0, data_bits, 4):
            nibble = mixed[group : group + 4]
            for bit_position in range(len(nibble)):
                rows = _random_sbox_rows(rng, len(nibble))
                substituted.append(
                    net.add_node(
                        f"r{round_index}_sbox{group + bit_position}",
                        tuple(nibble),
                        rows,
                    )
                )
        # Permutation: deterministic shuffle per round.
        permutation = list(range(len(substituted)))
        rng.shuffle(permutation)
        state = [substituted[p] for p in permutation]

    for i, signal in enumerate(state):
        net.add_buf(f"y{i}", signal)
        net.add_output(f"y{i}")
    net.sweep_dangling()
    return net


def _random_sbox_rows(rng: random.Random, width: int) -> tuple[str, ...]:
    """A random non-trivial ON-set over ``width`` inputs (SOP rows)."""
    num_rows = rng.randint(2, 4)
    rows = set()
    while len(rows) < num_rows:
        row = "".join(rng.choice("01-") for _ in range(width))
        if row != "-" * width:
            rows.add(row)
    return tuple(sorted(rows))
