"""Benchmark registry: the 17 circuits of Tables I and II by name.

Keys are lowercase identifiers; ``display`` carries the paper's label.
``category`` distinguishes the MCNC rows from the custom HDL rows so
harnesses can reproduce the table sections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..network import LogicNetwork
from . import arithmetic, mcnc


@dataclass(frozen=True)
class Benchmark:
    key: str
    display: str
    category: str  # "mcnc" | "hdl"
    description: str
    build: Callable[[], LogicNetwork]


def _benchmarks() -> list[Benchmark]:
    return [
        Benchmark("alu2", "alu2", "mcnc", "3-bit 8-operation ALU", mcnc.alu2),
        Benchmark("c6288", "C6288", "mcnc", "16x16 array multiplier", mcnc.c6288),
        Benchmark("c1355", "C1355", "mcnc", "32-bit SEC circuit", mcnc.c1355),
        Benchmark("dalu", "dalu", "mcnc", "dedicated 16-bit ALU", mcnc.dalu),
        Benchmark("apex6", "apex6", "mcnc", "random control logic", mcnc.apex6),
        Benchmark("vda", "vda", "mcnc", "PLA-style control", mcnc.vda),
        Benchmark("f51m", "f51m", "mcnc", "8-bit arithmetic block", mcnc.f51m),
        Benchmark("misex3", "misex3", "mcnc", "PLA-style control", mcnc.misex3),
        Benchmark("seq", "seq", "mcnc", "large PLA-style control", mcnc.seq),
        Benchmark("bigkey", "bigkey", "mcnc", "key-mixing network", mcnc.bigkey),
        Benchmark(
            "sqrt32",
            "SQRT 32 bit",
            "hdl",
            "32-bit restoring square root",
            lambda: arithmetic.square_root(32, name="sqrt32"),
        ),
        Benchmark(
            "wallace16",
            "Wallace 16 bit",
            "hdl",
            "16x16 Wallace-tree multiplier",
            lambda: arithmetic.wallace_multiplier(16, name="wallace16"),
        ),
        Benchmark(
            "cla64",
            "CLA 64 bit",
            "hdl",
            "64-bit carry-lookahead adder",
            lambda: arithmetic.carry_lookahead_adder(64, name="cla64"),
        ),
        Benchmark(
            "rev19",
            "Rev (1/X) 19 bit",
            "hdl",
            "19-bit reciprocal (restoring division array)",
            lambda: arithmetic.reciprocal(19, name="rev19"),
        ),
        Benchmark(
            "div18",
            "Div 18 bit",
            "hdl",
            "18-bit restoring divider",
            lambda: arithmetic.restoring_divider(18, name="div18"),
        ),
        Benchmark(
            "mac16",
            "MAC 16 bit",
            "hdl",
            "16-bit multiply-accumulate",
            lambda: arithmetic.multiply_accumulate(16, name="mac16"),
        ),
        Benchmark(
            "add4x16",
            "4-Op ADD 16 bit",
            "hdl",
            "four-operand 16-bit adder",
            lambda: arithmetic.four_operand_adder(16, name="add4x16"),
        ),
    ]


BENCHMARKS: dict[str, Benchmark] = {b.key: b for b in _benchmarks()}


def benchmark_keys(category: str | None = None) -> list[str]:
    """All registry keys, optionally filtered by category, in the
    paper's table order."""
    return [
        b.key for b in BENCHMARKS.values() if category is None or b.category == category
    ]


def get_benchmark(key: str) -> Benchmark:
    try:
        return BENCHMARKS[key]
    except KeyError:
        known = ", ".join(BENCHMARKS)
        raise KeyError(f"unknown benchmark {key!r} (known: {known})") from None


def build_benchmark(key: str) -> LogicNetwork:
    """Instantiate a benchmark circuit by key."""
    return get_benchmark(key).build()
