"""Additional arithmetic generators beyond the paper's benchmark set.

These widen the library's usefulness as a circuit-generation toolkit
(and stress the flows with structures the Table I/II set lacks):

* :func:`kogge_stone_adder` — parallel-prefix addition (log-depth
  carry tree, heavy fanout);
* :func:`booth_multiplier` — radix-4 Booth recoding (signed operands,
  MUX-rich partial products);
* :func:`barrel_shifter` — logarithmic shifter (pure MUX network);
* :func:`comparator` — magnitude comparator (long AND-OR chains);
* :func:`parity_tree` — wide XOR reduction.

All are verified against Python integer semantics in the test suite.
"""

from __future__ import annotations

from ..network import LogicNetwork
from .arithmetic import _Namer, _bus, _const, _full_adder, _out_bus, _reduce_columns


def kogge_stone_adder(width: int = 32, name: str = "ks") -> LogicNetwork:
    """Kogge-Stone parallel-prefix adder: a + b + cin."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    cin = net.add_input("cin")

    generate = [net.add_and(namer("g"), a[i], b[i]) for i in range(width)]
    propagate = [net.add_xor(namer("p"), a[i], b[i]) for i in range(width)]

    # Prefix tree: (g, p) pairs combined with the carry operator
    #   (g, p) o (g', p') = (g + p·g', p·p')
    level_g = list(generate)
    level_p = list(propagate)
    distance = 1
    while distance < width:
        next_g = list(level_g)
        next_p = list(level_p)
        for i in range(distance, width):
            term = net.add_and(namer("ks_t"), level_p[i], level_g[i - distance])
            next_g[i] = net.add_or(namer("ks_g"), level_g[i], term)
            next_p[i] = net.add_and(namer("ks_p"), level_p[i], level_p[i - distance])
        level_g, level_p = next_g, next_p
        distance *= 2

    # Carry into position i: prefix(i-1) combined with cin.
    carries = [cin]
    for i in range(width):
        term = net.add_and(namer("cin_t"), level_p[i], cin)
        carries.append(net.add_or(namer("carry"), level_g[i], term))
    sums = [net.add_xor(f"sum{i}", propagate[i], carries[i]) for i in range(width)]
    net.add_buf("cout", carries[width])
    _out_bus(net, sums)
    net.add_output("cout")
    net.sweep_dangling()
    return net


def booth_multiplier(width: int = 8, name: str = "booth") -> LogicNetwork:
    """Radix-4 Booth multiplier for *unsigned* operands.

    Operands are zero-extended two bits so the standard signed Booth
    recoding computes the unsigned product; partial products use
    MUX/XOR rows (negation via XOR + correction bit), giving the
    characteristic Booth structure of select-invert-accumulate.
    """
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    zero = _const(net, namer, False)

    ext_width = width + 2  # zero-extended multiplicand (for 2A and sign)
    multiplicand = [*a, zero, zero]
    # 2A: shifted left one.
    twice = [zero, *multiplicand[:-1]]

    product_columns: list[list[str]] = [[] for _ in range(2 * width + 4)]
    multiplier_bits = [zero, *b, zero, zero]  # b[-1] = 0 guard + zero-extend

    num_groups = (width + 2) // 2
    for group in range(num_groups):
        base = 2 * group
        b_low, b_mid, b_high = (
            multiplier_bits[base],
            multiplier_bits[base + 1],
            multiplier_bits[base + 2],
        )
        # Booth recoding of (b_high b_mid b_low):
        #   select_a   = b_mid xor b_low          (odd multiples)
        #   select_2a  = (b_high xor b_mid)·~select_a
        #   negative   = b_high (when the multiple is non-zero)
        select_a = net.add_xor(namer("sel_a"), b_mid, b_low)
        hm = net.add_xor(namer("hm"), b_high, b_mid)
        not_sel_a = net.add_not(namer("nsel_a"), select_a)
        select_2a = net.add_and(namer("sel_2a"), hm, not_sel_a)
        negative = b_high

        for position in range(ext_width):
            pick_a = net.add_and(namer("pa"), select_a, multiplicand[position])
            pick_2a = net.add_and(namer("p2a"), select_2a, twice[position])
            magnitude = net.add_or(namer("mag"), pick_a, pick_2a)
            signed_bit = net.add_xor(namer("sb"), magnitude, negative)
            product_columns[base + position].append(signed_bit)
        # Sign extension trick: extend the (possibly inverted) top bit.
        top = net.add_xor(
            namer("top"),
            net.add_or(
                namer("mag_top"),
                net.add_and(namer("pa_t"), select_a, multiplicand[-1]),
                net.add_and(namer("p2a_t"), select_2a, twice[-1]),
            ),
            negative,
        )
        for position in range(base + ext_width, 2 * width + 4):
            product_columns[position].append(top)
        # +1 correction for negated multiples.
        product_columns[base].append(negative)

    sums = _reduce_columns(net, namer, product_columns, total_width=2 * width + 4)
    outputs = [net.add_buf(f"prod{i}", s) for i, s in enumerate(sums[: 2 * width])]
    _out_bus(net, outputs)
    net.sweep_dangling()
    return net


def barrel_shifter(width: int = 16, name: str = "barrel") -> LogicNetwork:
    """Logarithmic left barrel shifter: ``out = data << amount``
    (zero fill; ``amount`` has log2(width) bits)."""
    if width & (width - 1):
        raise ValueError("barrel shifter width must be a power of two")
    net = LogicNetwork(name)
    namer = _Namer()
    data = _bus(net, "d", width)
    select_bits = _bus(net, "s", (width - 1).bit_length())
    zero = _const(net, namer, False)

    current = list(data)
    for stage, select in enumerate(select_bits):
        shift = 1 << stage
        shifted = [zero] * shift + current[: width - shift]
        current = [
            net.add_mux(namer(f"st{stage}"), select, shifted[i], current[i])
            for i in range(width)
        ]
    outputs = [net.add_buf(f"q{i}", bit) for i, bit in enumerate(current)]
    _out_bus(net, outputs)
    net.sweep_dangling()
    return net


def comparator(width: int = 16, name: str = "cmp") -> LogicNetwork:
    """Magnitude comparator: outputs ``lt``, ``eq``, ``gt`` for a ? b."""
    net = LogicNetwork(name)
    namer = _Namer()
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)

    eq_bits = [net.add_xnor(namer("e"), a[i], b[i]) for i in range(width)]
    # gt = OR_i ( a_i·~b_i · AND_{j>i} eq_j )
    gt_terms = []
    lt_terms = []
    prefix_eq: str | None = None
    for i in range(width - 1, -1, -1):
        not_b = net.add_not(namer("nb"), b[i])
        not_a = net.add_not(namer("na"), a[i])
        gt_here = net.add_and(namer("gt_h"), a[i], not_b)
        lt_here = net.add_and(namer("lt_h"), not_a, b[i])
        if prefix_eq is None:
            gt_terms.append(gt_here)
            lt_terms.append(lt_here)
            prefix_eq = eq_bits[i]
        else:
            gt_terms.append(net.add_and(namer("gt_t"), gt_here, prefix_eq))
            lt_terms.append(net.add_and(namer("lt_t"), lt_here, prefix_eq))
            prefix_eq = net.add_and(namer("pe"), prefix_eq, eq_bits[i])

    net.add_or("gt", *gt_terms)
    net.add_or("lt", *lt_terms)
    net.add_buf("eq", prefix_eq)
    for output in ("lt", "eq", "gt"):
        net.add_output(output)
    net.sweep_dangling()
    return net


def parity_tree(width: int = 32, name: str = "parity") -> LogicNetwork:
    """Balanced XOR reduction of ``width`` inputs (even parity)."""
    net = LogicNetwork(name)
    namer = _Namer()
    level = _bus(net, "x", width)
    stage = 0
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(
                net.add_xor(namer(f"x{stage}"), level[i], level[i + 1])
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    net.add_buf("p", level[0])
    net.add_output("p")
    net.sweep_dangling()
    return net
