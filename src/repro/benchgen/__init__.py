"""Benchmark circuit generators for the paper's Tables I and II."""

from .arithmetic import (
    array_multiplier,
    carry_lookahead_adder,
    four_operand_adder,
    multiply_accumulate,
    reciprocal,
    restoring_divider,
    ripple_carry_adder,
    square_root,
    wallace_multiplier,
)
from .ecc import hamming_corrector
from .random_logic import (
    key_mixing_network,
    random_control_network,
    random_pla_network,
)
from .registry import (
    BENCHMARKS,
    Benchmark,
    benchmark_keys,
    build_benchmark,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "array_multiplier",
    "benchmark_keys",
    "build_benchmark",
    "carry_lookahead_adder",
    "four_operand_adder",
    "get_benchmark",
    "hamming_corrector",
    "key_mixing_network",
    "multiply_accumulate",
    "random_control_network",
    "random_pla_network",
    "reciprocal",
    "restoring_divider",
    "ripple_carry_adder",
    "square_root",
    "wallace_multiplier",
]
