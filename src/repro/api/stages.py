"""The standard stages the four paper flows are composed from.

Each stage is a small, swappable transformation pass over the
:class:`~repro.api.SynthesisContext` — the structure Amarù-style MIG
optimization and the paper's own Figure 3 describe: ordered passes, not
one monolithic function.  The BDS stages mirror the reference
implementation :func:`repro.flows.bds.bds_optimize` step for step, so a
pipeline produces bit-identical node counts, cache counters and
networks (the equivalence tests in ``tests/api`` pin this).

Scratch-space keys used between stages of one flow:

========== ==========================================================
key        producer -> consumer
========== ==========================================================
partitions ``build-bdds``/``collapse`` -> ``reorder``/``decompose``
trace      ``build-bdds`` -> every later BDS stage (and the batch layer)
builder    ``build-bdds``/``collapse`` -> ``decompose`` -> ``rewrite``
roots      ``decompose``/``rewrite`` tree roots per supernode output
aig        ``strash`` -> ``rewrite`` -> ``emit`` (ABC flow)
hard       ``collapse`` -> ``rewrite`` (DC flow's preserved RTL gates)
emitter    ``collapse`` -> ``rewrite`` (DC flow's gate emitter)
========== ==========================================================
"""

from __future__ import annotations

from ..aig import aig_to_network, network_to_aig, resyn2, resyn_quick
from ..bdd.isop import isop_cover_rows
from ..core import DecompositionEngine, TreeBuilder
from ..core.emit import network_from_trees
from ..flows.bds import (
    BdsTrace,
    normalize_reorder_policy,
    partition_config_for,
    reorder_supernode,
)
from ..flows.common import map_and_analyze, verify_or_raise
from ..mapping.mapper import classify_gate
from ..network import PartitionConfig, partition_with_bdds
from ..sop import GateEmitter, expression_from_cover, factor_expression, simplify_cover
from .context import PipelineError, SynthesisContext


class LoadInput:
    """Resolve the bound :class:`~repro.api.InputItem` into a network.

    A no-op when the pipeline was handed a ready
    :class:`~repro.network.LogicNetwork` directly.
    """

    name = "load-input"
    optimize_timed = False

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        if ctx.network is None:
            if ctx.item is None:
                raise PipelineError(
                    f"pipeline {ctx.flow!r} has no input: pass a network or "
                    "an InputItem"
                )
            ctx.network = ctx.item.load()
        return ctx


# ----------------------------------------------------------------------
# BDS-MAJ / BDS-PGA stages (paper Figure 3)
# ----------------------------------------------------------------------
class BuildBdds:
    """Partition into supernodes and build every local BDD (IV.A).

    Under ``config.reorder == "dynamic"`` the local BDDs are built with
    growth-triggered reordering armed (see
    :class:`~repro.network.PartitionConfig`): clusters whose
    construction-order BDD overflows the node budget are sifted
    mid-build instead of demoted.
    """

    name = "build-bdds"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        config = ctx.config
        partitions = partition_with_bdds(
            ctx.require("network"),
            partition_config_for(
                config.partition, normalize_reorder_policy(config.reorder)
            ),
        )
        trace = BdsTrace()
        trace.supernodes = len(partitions)
        trace.reorderings = sum(mgr.reorderings for _s, mgr, _r in partitions)
        ctx.scratch.update(
            partitions=partitions,
            trace=trace,
            builder=TreeBuilder(),
            roots={},
        )
        return ctx


class ReorderVariables:
    """Per-supernode variable reordering via in-place sifting (IV.B).

    Every supernode is sifted — the in-place engine swaps adjacent
    levels by local node surgery, so there is no size guard anymore.
    The manager and the root edge survive the pass unchanged (only the
    variable order moves), so the partition tuples are reused as-is.
    ``config.reorder`` selects the policy: ``"once"`` (and
    ``"dynamic"``, whose construction-time reorders already ran in
    ``build-bdds``) run one pass, ``"converge"`` repeats passes to a
    fixpoint, ``"none"`` skips the stage.
    """

    name = "reorder"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        policy = normalize_reorder_policy(ctx.config.reorder)
        if policy == "none":
            return ctx
        trace = ctx.scratch["trace"]
        for _supernode, mgr, root in ctx.scratch["partitions"]:
            result = reorder_supernode(mgr, root, policy)
            if result is not None and result.changed:
                trace.sifted += 1
        return ctx


class Decompose:
    """BDD decomposition with MAJ on top of the dominator search (IV.B)."""

    name = "decompose"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        scratch = ctx.scratch
        trace = scratch["trace"]
        builder = scratch["builder"]
        roots = scratch["roots"]
        for supernode, mgr, root in scratch["partitions"]:
            engine = DecompositionEngine(mgr, builder, ctx.config.engine)
            roots[supernode.output] = engine.decompose(root)
            trace.add_cache_stats(engine.cache_report())
            trace.majority_steps += engine.stats.majority
            trace.and_or_steps += engine.stats.and_or
            trace.xor_steps += engine.stats.xor
            trace.mux_steps += engine.stats.mux
        return ctx


class RewriteTrees:
    """Factoring trees with logic sharing -> gate netlist (IV.C).

    Also snapshots the Table-I node counts and the unified op-cache
    counters, completing the flow's deterministic observables.
    """

    name = "rewrite"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        network = ctx.require("network")
        builder = ctx.scratch["builder"]
        roots = ctx.scratch["roots"]
        trace = ctx.scratch["trace"]
        counts = builder.count_ops(roots.values())
        trace.tree_nodes = sum(counts.values())
        ctx.optimized = network_from_trees(
            builder,
            roots,
            inputs=list(network.inputs),
            outputs=list(network.outputs),
            name=network.name,
        )
        ctx.node_counts = counts
        ctx.cache_stats = trace.cache_summary()
        return ctx


# ----------------------------------------------------------------------
# ABC-like stages
# ----------------------------------------------------------------------
class Strash:
    """Structural hashing into an AIG (ABC's ``strash``)."""

    name = "strash"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        ctx.scratch["aig"] = network_to_aig(ctx.require("network"))
        return ctx


class RewriteAig:
    """The balance/rewrite/refactor script (``resyn2``, or the short
    script with ``config.quick``)."""

    name = "rewrite"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        aig = ctx.scratch["aig"]
        ctx.scratch["aig"] = resyn_quick(aig) if ctx.config.quick else resyn2(aig)
        return ctx


class EmitFromAig:
    """AIG back to a gate netlist, recovering the three-AND XOR pattern."""

    name = "emit"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        network = ctx.require("network")
        ctx.optimized = aig_to_network(
            ctx.scratch["aig"], name=network.name, detect_xor=True
        )
        return ctx


# ----------------------------------------------------------------------
# DC-like stages
# ----------------------------------------------------------------------
class CollapseNetwork:
    """Partial collapse preserving RTL XOR/MUX operators (the DC-like
    flow's conservative flattening)."""

    name = "collapse"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        network = ctx.require("network")
        config = ctx.config
        hard: set[str] = set()
        for name in network.topological_order():
            kind, _, _ = classify_gate(network.node(name))
            if kind in ("xor", "mux"):
                hard.add(name)
        partition_config = PartitionConfig(
            max_support=config.partition.max_support,
            max_bdd_nodes=config.partition.max_bdd_nodes,
            max_duplication=config.partition.max_duplication,
            duplication_literals=config.partition.duplication_literals,
            hard_signals=frozenset(hard),
            cache_policy=config.partition.cache_policy,
            cache_capacity=config.partition.cache_capacity,
        )
        builder = TreeBuilder()
        emitter = GateEmitter(
            literal=lambda name, phase: (
                builder.literal(name) if phase else builder.not_(builder.literal(name))
            ),
            and2=builder.and_,
            or2=builder.or_,
            const=builder.const,
        )
        ctx.scratch.update(
            partitions=partition_with_bdds(network, partition_config),
            hard=hard,
            builder=builder,
            emitter=emitter,
            roots={},
        )
        return ctx


class FactorCovers:
    """Minimize each supernode as a two-level cover and factor it into
    gates, re-emitting preserved RTL operators verbatim."""

    name = "rewrite"
    optimize_timed = True

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        network = ctx.require("network")
        scratch = ctx.scratch
        builder = scratch["builder"]
        emitter = scratch["emitter"]
        hard = scratch["hard"]
        roots = scratch["roots"]
        for supernode, mgr, root in scratch["partitions"]:
            name = supernode.output
            if name in hard:
                # Preserved RTL operator: re-emit it verbatim.
                node = network.node(name)
                kind, out_inv, fanins = classify_gate(node)
                if kind == "xor":
                    left = builder.literal(fanins[0])
                    right = builder.literal(fanins[1])
                    tree = (
                        builder.xnor(left, right)
                        if out_inv
                        else builder.xor(left, right)
                    )
                else:  # mux
                    tree = builder.mux(
                        builder.literal(fanins[0]),
                        builder.literal(fanins[1]),
                        builder.literal(fanins[2]),
                    )
                    if out_inv:
                        tree = builder.not_(tree)
                roots[name] = tree
                continue
            rows = isop_cover_rows(mgr, root, supernode.inputs)
            rows = list(simplify_cover(rows))
            if not rows:
                roots[name] = builder.CONST0
                continue
            expression = expression_from_cover(rows, supernode.inputs)
            roots[name] = factor_expression(expression, emitter)
        ctx.optimized = network_from_trees(
            builder,
            roots,
            inputs=list(network.inputs),
            outputs=list(network.outputs),
            name=network.name,
        )
        return ctx


# ----------------------------------------------------------------------
# Shared tail stages
# ----------------------------------------------------------------------
class MapNetwork:
    """Technology mapping + static timing analysis (V.B.1)."""

    name = "map"
    optimize_timed = False

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        ctx.mapped, ctx.timing_report = map_and_analyze(
            ctx.require("optimized"), ctx.library
        )
        return ctx


class VerifyEquivalence:
    """Formal equivalence check of the optimized and mapped networks
    against the source; raises on a counterexample."""

    name = "verify"
    optimize_timed = False

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        if not ctx.verify:
            return ctx
        ctx.equivalence = verify_or_raise(
            ctx.flow,
            ctx.require("network"),
            ctx.require("optimized"),
            ctx.require("mapped"),
        )
        return ctx
