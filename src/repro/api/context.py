"""The state threaded through a synthesis pipeline.

A :class:`SynthesisContext` is created by :meth:`Pipeline.run` and
handed to every stage in turn.  Well-known fields (``network``,
``optimized``, ``mapped``, ``node_counts``, ``cache_stats``, ...) carry
the data the final :class:`~repro.flows.FlowResult` is assembled from;
``scratch`` holds stage-private intermediates (partitions, factoring
trees, AIGs) that downstream stages of the same flow consume; and
``timings`` / ``events`` record what actually ran, per stage, for
observability (the batch service and the future async server stream
progress from them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..flows.common import FlowResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..mapping import MappedCircuit, TimingReport
    from ..mapping.library import CellLibrary
    from ..network import EquivalenceResult, LogicNetwork
    from .inputs import InputItem


class PipelineError(RuntimeError):
    """Raised when a pipeline is driven inconsistently (no input bound,
    result requested before the producing stage ran, unknown stage...)."""


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds one stage took (nondeterministic; never part
    of the serialized deterministic reports)."""

    stage: str
    seconds: float


@dataclass(frozen=True)
class StageEvent:
    """One entry of the context's event log.

    ``kind`` is ``"stage_start"`` or ``"stage_end"``; ``seconds`` is
    filled on end events only.
    """

    kind: str
    stage: str
    seconds: float | None = None

    def to_payload(self) -> dict[str, str | float]:
        """Wire-ready dict (what the serving layer streams); ``seconds``
        is included only on end events."""
        payload: dict[str, str | float] = {"kind": self.kind, "stage": self.stage}
        if self.seconds is not None:
            payload["seconds"] = self.seconds
        return payload


@dataclass
class SynthesisContext:
    """Everything a pipeline run accumulates.

    Stages read the fields earlier stages populated and fill in their
    own; :meth:`to_result` converts a completed context into the
    byte-compatible :class:`~repro.flows.FlowResult` the pre-pipeline
    flow functions returned.
    """

    #: Pipeline (flow) name, e.g. ``"bds-maj"``.
    flow: str
    #: Pending input descriptor; ``load-input`` turns it into ``network``.
    item: "InputItem | None" = None
    #: The source network being synthesized.
    network: "LogicNetwork | None" = None
    #: Flow-specific configuration object (``BdsFlowConfig``...).
    config: Any = None
    #: Equivalence-check the output against the source (``verify`` stage).
    verify: bool = True
    #: Cell library for the ``map`` stage (None = default 22 nm library).
    library: "CellLibrary | None" = None

    # -- produced by the optimization stages ---------------------------
    optimized: "LogicNetwork | None" = None
    node_counts: dict[str, int] = field(default_factory=dict)
    cache_stats: dict[str, int | float] = field(default_factory=dict)

    # -- produced by the map / verify stages ---------------------------
    mapped: "MappedCircuit | None" = None
    timing_report: "TimingReport | None" = None
    equivalence: "EquivalenceResult | None" = None

    # -- observability --------------------------------------------------
    #: Per-stage wall-clock timings, in execution order.
    timings: list[StageTiming] = field(default_factory=list)
    #: Stage start/end event log (what observers saw, kept on the ctx).
    events: list[StageEvent] = field(default_factory=list)
    #: Summed wall-clock of the stages flagged ``optimize_timed`` — the
    #: quantity the paper's Table I reports as optimization runtime.
    optimize_seconds: float = 0.0

    #: Stage-private intermediates (partitions, builders, AIGs...).
    scratch: dict[str, Any] = field(default_factory=dict)

    def require(self, attribute: str) -> Any:
        """Fetch a well-known field, raising a stage-friendly error when
        the producing stage has not run."""
        value = getattr(self, attribute)
        if value is None:
            raise PipelineError(
                f"pipeline {self.flow!r} needs {attribute!r} but no earlier "
                "stage produced it"
            )
        return value

    def to_result(self) -> FlowResult:
        """Assemble the flow's :class:`~repro.flows.FlowResult`.

        Field-compatible with the pre-pipeline flow functions: the
        deterministic batch reports and Table I/II outputs built from it
        are byte-identical.
        """
        network = self.require("network")
        optimized = self.require("optimized")
        if self.mapped is None or self.timing_report is None:
            raise PipelineError(
                f"pipeline {self.flow!r} did not run a map stage; use "
                "run_context() to inspect optimize-only prefixes"
            )
        return FlowResult(
            flow=self.flow,
            benchmark=network.name,
            optimized=optimized,
            mapped=self.mapped,
            timing=self.timing_report,
            optimize_seconds=self.optimize_seconds,
            node_counts=self.node_counts,
            equivalence=self.equivalence,
            cache_stats=self.cache_stats,
        )
