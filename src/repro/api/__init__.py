"""``repro.api`` — the public, composable synthesis-pipeline API.

The paper's Section V compares four flows; this package expresses each
one as an ordered composition of swappable :class:`Stage` passes over a
:class:`SynthesisContext`, instead of a monolithic function:

.. code-block:: python

    from repro.api import get_pipeline
    from repro.benchgen import build_benchmark

    result = get_pipeline("bds-maj").run(build_benchmark("alu2"))
    print(result.node_counts, result.table2_row())

Key pieces:

* :class:`Stage` / :func:`stage` — the pass protocol (``name`` +
  ``run(ctx) -> ctx``) and a decorator for function stages;
* :class:`Pipeline` — ordered stages with per-stage timing and
  ``on_stage_start`` / ``on_stage_end`` observer hooks; composition
  helpers (``up_to`` / ``replace`` / ``insert_after``) derive variants;
* :class:`PipelineRegistry` / :func:`get_pipeline` /
  :func:`register_pipeline` — named flows (``bds-maj``, ``bds-pga``,
  ``abc``, ``dc`` are built in; ``repro.flows.FLOWS`` is now a shim
  over this registry);
* :class:`InputSource` and friends — pluggable circuit inputs
  (registry keys, BLIF files, globs) shared by ``run_batch`` and the
  CLI;
* :mod:`repro.api.standard_stages` — the stage classes the built-in
  flows are composed from, for remixing.

Pipelines produce the same :class:`~repro.flows.FlowResult` records as
the original flow functions — byte-compatible, so deterministic batch
reports and the Table I/II harnesses are unchanged.
"""

from . import stages as standard_stages
from .context import (
    PipelineError,
    StageEvent,
    StageTiming,
    SynthesisContext,
)
from .inputs import (
    BlifFileSource,
    BlifGlobSource,
    InputItem,
    InputSource,
    InputSourceError,
    RegistrySource,
    resolve_source,
)
from .pipeline import Pipeline, PipelineObserver, StageEventExporter
from .registry import (
    DEFAULT_REGISTRY,
    PipelineRegistry,
    get_pipeline,
    pipeline_names,
    register_pipeline,
)
from .stage import FunctionStage, Stage, stage

__all__ = [
    "DEFAULT_REGISTRY",
    "BlifFileSource",
    "BlifGlobSource",
    "FunctionStage",
    "InputItem",
    "InputSource",
    "InputSourceError",
    "Pipeline",
    "PipelineError",
    "PipelineObserver",
    "PipelineRegistry",
    "RegistrySource",
    "Stage",
    "StageEvent",
    "StageEventExporter",
    "StageTiming",
    "SynthesisContext",
    "get_pipeline",
    "pipeline_names",
    "register_pipeline",
    "resolve_source",
    "stage",
    "standard_stages",
]
