"""Composable synthesis pipelines.

A :class:`Pipeline` is an ordered stage list plus a name and a default
configuration factory.  Running it threads a
:class:`~repro.api.SynthesisContext` through the stages, timing each
one and firing ``on_stage_start`` / ``on_stage_end`` observer hooks —
the seam an async serving layer streams per-request progress from.

Pipelines are immutable values: the composition helpers (:meth:`up_to`,
:meth:`replace`, :meth:`insert_after`, :meth:`with_stages`) return new
pipelines, so deriving a custom flow from a registered one is a
one-liner that cannot corrupt the registry.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence

from ..flows.common import FlowResult
from ..network import LogicNetwork
from .context import PipelineError, StageEvent, StageTiming, SynthesisContext
from .inputs import InputItem, resolve_source
from .stage import Stage, stage_is_optimize_timed


class PipelineObserver:
    """Base observer: subclass and override what you need.

    ``on_stage_start(ctx, stage)`` fires before a stage runs;
    ``on_stage_end(ctx, stage, seconds)`` after it finished, with its
    wall-clock duration.  Observers must not mutate the context.
    """

    def on_stage_start(self, ctx: SynthesisContext, stage: Stage) -> None:
        """Called before ``stage`` runs."""

    def on_stage_end(
        self, ctx: SynthesisContext, stage: Stage, seconds: float
    ) -> None:
        """Called after ``stage`` finished."""


class StageEventExporter(PipelineObserver):
    """Observer that forwards every stage start/end as a
    :class:`~repro.api.StageEvent` to ``emit``, as it happens.

    This mirrors the events a run appends to ``ctx.events``, but live —
    the seam through which the batch service and the async serving
    layer (:mod:`repro.serve`) stream per-stage progress while a
    pipeline is still running.  End events carry the stage's wall-clock
    seconds, exactly like the :class:`~repro.api.StageTiming` recorded
    on the context.
    """

    def __init__(self, emit: Callable[[StageEvent], None]) -> None:
        self._emit = emit

    def on_stage_start(self, ctx: SynthesisContext, stage: Stage) -> None:
        self._emit(StageEvent("stage_start", stage.name))

    def on_stage_end(
        self, ctx: SynthesisContext, stage: Stage, seconds: float
    ) -> None:
        self._emit(StageEvent("stage_end", stage.name, seconds))


class _CallbackObserver(PipelineObserver):
    """Adapter wrapping plain callables into an observer."""

    def __init__(
        self,
        on_start: Callable[[SynthesisContext, Stage], None] | None,
        on_end: Callable[[SynthesisContext, Stage, float], None] | None,
    ) -> None:
        self._on_start = on_start
        self._on_end = on_end

    def on_stage_start(self, ctx: SynthesisContext, stage: Stage) -> None:
        if self._on_start is not None:
            self._on_start(ctx, stage)

    def on_stage_end(
        self, ctx: SynthesisContext, stage: Stage, seconds: float
    ) -> None:
        if self._on_end is not None:
            self._on_end(ctx, stage, seconds)


class Pipeline:
    """A named, ordered composition of stages.

    ``default_config`` builds the flow configuration when the caller
    passes none; ``prepare_config`` (optional) normalizes whatever
    configuration is in effect — e.g. the BDS-PGA pipeline forces
    majority decomposition off, preserving the semantics of the old
    ``bdspga_flow`` even for shared config objects.
    """

    def __init__(
        self,
        name: str,
        stages: Iterable[Stage],
        default_config: Callable[[], Any] | None = None,
        prepare_config: Callable[[Any], Any] | None = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.stages = tuple(stages)
        self.default_config = default_config
        self.prepare_config = prepare_config
        self.description = description
        names = [s.name for s in self.stages]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise PipelineError(
                f"pipeline {name!r} has duplicate stage names: {sorted(duplicates)}"
            )

    # ------------------------------------------------------------------
    # Composition (all return new pipelines)
    # ------------------------------------------------------------------
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def _index_of(self, stage_name: str) -> int:
        for i, candidate in enumerate(self.stages):
            if candidate.name == stage_name:
                return i
        raise PipelineError(
            f"pipeline {self.name!r} has no stage {stage_name!r} "
            f"(stages: {list(self.stage_names())})"
        )

    def with_stages(self, stages: Iterable[Stage], name: str | None = None) -> "Pipeline":
        """A copy of this pipeline with a different stage list."""
        return Pipeline(
            name if name is not None else self.name,
            stages,
            default_config=self.default_config,
            prepare_config=self.prepare_config,
            description=self.description,
        )

    def up_to(self, stage_name: str) -> "Pipeline":
        """The prefix ending at (and including) ``stage_name``."""
        return self.with_stages(self.stages[: self._index_of(stage_name) + 1])

    def optimize_prefix(self) -> "Pipeline":
        """The prefix covering every optimization stage — what Table I
        and the batch service run (no mapping, no verification)."""
        last = max(
            (i for i, s in enumerate(self.stages) if stage_is_optimize_timed(s)),
            default=len(self.stages) - 1,
        )
        return self.with_stages(self.stages[: last + 1])

    def replace(self, stage_name: str, stage: Stage) -> "Pipeline":
        """Swap the named stage for another one."""
        index = self._index_of(stage_name)
        stages = list(self.stages)
        stages[index] = stage
        return self.with_stages(stages)

    def insert_after(self, stage_name: str, stage: Stage) -> "Pipeline":
        """Insert ``stage`` right after the named stage."""
        index = self._index_of(stage_name)
        stages = list(self.stages)
        stages.insert(index + 1, stage)
        return self.with_stages(stages)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _bind(self, source: "LogicNetwork | InputItem | str") -> SynthesisContext:
        if isinstance(source, LogicNetwork):
            return SynthesisContext(flow=self.name, network=source)
        if isinstance(source, InputItem):
            return SynthesisContext(flow=self.name, item=source)
        if isinstance(source, str):
            items = resolve_source(source).items()
            if len(items) != 1:
                raise PipelineError(
                    f"spec {source!r} matched {len(items)} circuits; a pipeline "
                    "runs exactly one (use run_batch for suites)"
                )
            return SynthesisContext(flow=self.name, item=items[0])
        raise PipelineError(
            f"cannot run pipeline on {type(source).__name__}: expected a "
            "LogicNetwork, InputItem or spec string"
        )

    def run_context(
        self,
        source: "LogicNetwork | InputItem | str",
        config: Any = None,
        *,
        observers: Sequence[PipelineObserver] = (),
        on_stage_start: Callable[[SynthesisContext, Stage], None] | None = None,
        on_stage_end: Callable[[SynthesisContext, Stage, float], None] | None = None,
    ) -> SynthesisContext:
        """Run every stage and return the full context (use this for
        optimize-only prefixes or to inspect scratch state/timings)."""
        ctx = self._bind(source)
        if config is None and self.default_config is not None:
            config = self.default_config()
        if self.prepare_config is not None:
            config = self.prepare_config(config)
        ctx.config = config
        ctx.verify = bool(getattr(config, "verify", True))
        ctx.library = getattr(config, "library", None)

        all_observers = list(observers)
        if on_stage_start is not None or on_stage_end is not None:
            all_observers.append(_CallbackObserver(on_stage_start, on_stage_end))

        for pipeline_stage in self.stages:
            ctx.events.append(StageEvent("stage_start", pipeline_stage.name))
            for observer in all_observers:
                observer.on_stage_start(ctx, pipeline_stage)
            start = time.perf_counter()
            result = pipeline_stage.run(ctx)
            if result is not None:
                ctx = result
            seconds = time.perf_counter() - start
            ctx.timings.append(StageTiming(pipeline_stage.name, seconds))
            if stage_is_optimize_timed(pipeline_stage):
                ctx.optimize_seconds += seconds
            ctx.events.append(StageEvent("stage_end", pipeline_stage.name, seconds))
            for observer in all_observers:
                observer.on_stage_end(ctx, pipeline_stage, seconds)
        return ctx

    def run(
        self,
        source: "LogicNetwork | InputItem | str",
        config: Any = None,
        *,
        observers: Sequence[PipelineObserver] = (),
        on_stage_start: Callable[[SynthesisContext, Stage], None] | None = None,
        on_stage_end: Callable[[SynthesisContext, Stage, float], None] | None = None,
    ) -> FlowResult:
        """Run the full pipeline and return its :class:`FlowResult`."""
        return self.run_context(
            source,
            config,
            observers=observers,
            on_stage_start=on_stage_start,
            on_stage_end=on_stage_end,
        ).to_result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pipeline {self.name!r} stages={list(self.stage_names())}>"
