"""Pipeline registry: named flows, including the paper's four.

The four Section-V flows are registered here as stage compositions;
``repro.flows.FLOWS`` is now a thin compatibility shim over this
registry.  A fifth built-in, ``"bds-maj-nosift"``, is the reordering
ablation (the paper flow with the sifting stage disabled) — the
baseline ``benchmarks/bench_reorder.py`` compares the in-place sifting
engine against.  Registering a custom flow is a one-liner::

    from repro.api import Pipeline, register_pipeline, standard_stages as S

    register_pipeline(Pipeline(
        "bds-maj-quick",
        [S.LoadInput(), S.BuildBdds(), S.Decompose(), S.RewriteTrees(),
         S.MapNetwork(), S.VerifyEquivalence()],
        default_config=BdsFlowConfig,
    ))
"""

from __future__ import annotations

from typing import Iterator

from ..flows.abc import AbcFlowConfig
from ..flows.bds import BdsFlowConfig
from ..flows.dc import DcFlowConfig
from .context import PipelineError
from .pipeline import Pipeline
from .stages import (
    BuildBdds,
    CollapseNetwork,
    Decompose,
    EmitFromAig,
    FactorCovers,
    LoadInput,
    MapNetwork,
    ReorderVariables,
    RewriteAig,
    RewriteTrees,
    Strash,
    VerifyEquivalence,
)


class PipelineRegistry:
    """Named pipelines, preserved in registration order (the paper's
    Table II column order for the built-ins)."""

    def __init__(self) -> None:
        self._pipelines: dict[str, Pipeline] = {}

    def register(self, pipeline: Pipeline, replace: bool = False) -> Pipeline:
        if not replace and pipeline.name in self._pipelines:
            raise PipelineError(
                f"pipeline {pipeline.name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._pipelines[pipeline.name] = pipeline
        return pipeline

    def get(self, name: str) -> Pipeline:
        try:
            return self._pipelines[name]
        except KeyError:
            known = ", ".join(self._pipelines)
            raise PipelineError(
                f"unknown pipeline {name!r} (registered: {known})"
            ) from None

    def names(self) -> list[str]:
        return list(self._pipelines)

    def __contains__(self, name: object) -> bool:
        return name in self._pipelines

    def __iter__(self) -> Iterator[Pipeline]:
        return iter(self._pipelines.values())

    def __len__(self) -> int:
        return len(self._pipelines)


def _bds_stages() -> list:
    return [
        LoadInput(),
        BuildBdds(),
        ReorderVariables(),
        Decompose(),
        RewriteTrees(),
        MapNetwork(),
        VerifyEquivalence(),
    ]


def _force_pga(config: BdsFlowConfig | None) -> BdsFlowConfig:
    """BDS-PGA is BDS-MAJ with majority decomposition disabled; this
    keeps that invariant even for caller-shared config objects (the
    contract of the old ``bdspga_flow``)."""
    if config is None:
        config = BdsFlowConfig(enable_majority=False)
    else:
        config.enable_majority = False
        config.engine.enable_majority = False
    return config


DEFAULT_REGISTRY = PipelineRegistry()

DEFAULT_REGISTRY.register(
    Pipeline(
        "bds-maj",
        _bds_stages(),
        default_config=lambda: BdsFlowConfig(enable_majority=True),
        description="the paper's flow: BDS decomposition with majority logic",
    )
)
DEFAULT_REGISTRY.register(
    Pipeline(
        "bds-pga",
        _bds_stages(),
        default_config=lambda: BdsFlowConfig(enable_majority=False),
        prepare_config=_force_pga,
        description="the BDS-PGA baseline: same engine, majority disabled",
    )
)
DEFAULT_REGISTRY.register(
    Pipeline(
        "abc",
        [
            LoadInput(),
            Strash(),
            RewriteAig(),
            EmitFromAig(),
            MapNetwork(),
            VerifyEquivalence(),
        ],
        default_config=AbcFlowConfig,
        description="ABC-like baseline: resyn2 + structural mapping",
    )
)
DEFAULT_REGISTRY.register(
    Pipeline(
        "dc",
        [
            LoadInput(),
            CollapseNetwork(),
            FactorCovers(),
            MapNetwork(),
            VerifyEquivalence(),
        ],
        default_config=DcFlowConfig,
        description="Design-Compiler-like baseline: collapse/minimize/factor",
    )
)


def _force_nosift(config: BdsFlowConfig | None) -> BdsFlowConfig:
    """The no-reorder ablation must hold even for caller-shared config
    objects (mirrors :func:`_force_pga`)."""
    if config is None:
        config = BdsFlowConfig(reorder=False)
    else:
        config.reorder = False
    return config


DEFAULT_REGISTRY.register(
    Pipeline(
        "bds-maj-nosift",
        _bds_stages(),
        default_config=lambda: BdsFlowConfig(reorder=False),
        prepare_config=_force_nosift,
        description="reordering ablation: the paper's flow with variable "
        "sifting disabled",
    )
)


def register_pipeline(pipeline: Pipeline, replace: bool = False) -> Pipeline:
    """Register ``pipeline`` in the default registry."""
    return DEFAULT_REGISTRY.register(pipeline, replace=replace)


def get_pipeline(name: str) -> Pipeline:
    """Look up a pipeline in the default registry."""
    return DEFAULT_REGISTRY.get(name)


def pipeline_names() -> list[str]:
    """Registered pipeline names, built-ins first."""
    return DEFAULT_REGISTRY.names()
