"""Pluggable inputs: where circuits come from.

The paper's experiments draw circuits from the built-in benchmark
registry, but a synthesis *service* must also accept user netlists.
An :class:`InputSource` enumerates :class:`InputItem` descriptors —
small, picklable records a multiprocessing worker can load on its own
side of the fork — so ``run_batch``, ``synthesize_one`` and the CLI all
speak one vocabulary:

* :class:`RegistrySource` — registry keys, optionally by category;
* :class:`BlifFileSource` — one BLIF file;
* :class:`BlifGlobSource` — a glob of BLIF files, expanded in sorted
  order so reports stay deterministic;
* :func:`resolve_source` — "do what I mean" dispatch for CLI arguments.
"""

from __future__ import annotations

import glob as _glob
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..benchgen import build_benchmark
from ..benchgen.registry import BENCHMARKS, benchmark_keys
from ..network import LogicNetwork, read_blif

#: ``InputItem.kind`` values.
KIND_REGISTRY = "registry"
KIND_BLIF = "blif"


class InputSourceError(ValueError):
    """Raised when an input specification cannot be resolved (unknown
    registry key, missing file, glob matching nothing...)."""


@dataclass(frozen=True)
class InputItem:
    """One loadable circuit.

    ``name`` is the report/display key; ``kind`` selects the loader
    (``"registry"`` builds from the benchmark registry, ``"blif"``
    parses the file at ``path``).  Frozen and field-only so worker
    processes can unpickle it without importing caller state.
    """

    name: str
    kind: str = KIND_REGISTRY
    path: str | None = None

    def load(self) -> LogicNetwork:
        if self.kind == KIND_REGISTRY:
            return build_benchmark(self.name)
        if self.kind == KIND_BLIF:
            if self.path is None:
                raise InputSourceError(f"BLIF item {self.name!r} has no path")
            with open(self.path) as stream:
                return read_blif(stream)
        raise InputSourceError(f"unknown input kind {self.kind!r}")

    @property
    def origin(self) -> str:
        """Where the circuit comes from (path for files, key otherwise)."""
        return self.path if self.path is not None else self.name


class InputSource:
    """Base class: an ordered, reproducible collection of input items."""

    def items(self) -> list[InputItem]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[InputItem]:
        return iter(self.items())


class RegistrySource(InputSource):
    """Circuits from the benchmark registry, in table order.

    ``keys=None`` selects every registry circuit; ``category`` filters
    to the MCNC or HDL section.  Unknown keys fail eagerly — a batch
    over the registry should not discover typos one error row at a time.
    """

    def __init__(
        self, keys: Sequence[str] | None = None, category: str | None = None
    ) -> None:
        if keys is None:
            keys = benchmark_keys(category)
        else:
            keys = list(keys)
            unknown = [key for key in keys if key not in BENCHMARKS]
            if unknown:
                raise InputSourceError(
                    f"unknown benchmarks: {', '.join(unknown)}"
                )
            if category is not None:
                allowed = set(benchmark_keys(category))
                keys = [key for key in keys if key in allowed]
        self.keys = list(keys)

    def items(self) -> list[InputItem]:
        return [InputItem(name=key, kind=KIND_REGISTRY) for key in self.keys]


class BlifFileSource(InputSource):
    """A single BLIF file; the item is named after the file stem."""

    def __init__(self, path: str) -> None:
        if not Path(path).is_file():
            raise InputSourceError(f"no such BLIF file: {path!r}")
        self.path = str(path)

    def items(self) -> list[InputItem]:
        return [_blif_item(self.path)]


class BlifGlobSource(InputSource):
    """Every BLIF file matching a glob pattern.

    Matches are sorted lexicographically by path, so the item order —
    and therefore every downstream batch report — is independent of
    filesystem enumeration order.  An empty match is an error: a batch
    silently running zero circuits is never what the caller meant.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.paths = sorted(_glob.glob(pattern))
        if not self.paths:
            raise InputSourceError(
                f"pattern {pattern!r} matched no BLIF files"
            )

    def items(self) -> list[InputItem]:
        return [_blif_item(path) for path in self.paths]


def _blif_item(path: str) -> InputItem:
    return InputItem(name=Path(path).stem, kind=KIND_BLIF, path=path)


def resolve_source(spec: str) -> InputSource:
    """Turn a CLI-style circuit spec into an :class:`InputSource`.

    Registry keys win (so ``bdsmaj synth alu2`` keeps meaning the
    registry circuit even if a file of that name exists); specs with
    glob metacharacters become :class:`BlifGlobSource`; everything else
    must be an existing BLIF file.
    """
    if spec in BENCHMARKS:
        return RegistrySource([spec])
    if any(ch in spec for ch in "*?["):
        return BlifGlobSource(spec)
    return BlifFileSource(spec)
