"""The ``Stage`` protocol and helpers for writing custom stages.

A stage is any object with a ``name`` and a
``run(ctx: SynthesisContext) -> SynthesisContext`` method.  Stages that
should count toward the flow's reported optimization runtime (the
Table I ``Sec`` column) set ``optimize_timed = True``; mapping and
verification stages leave it False, matching the pre-pipeline flows
where only the optimization body ran under the stopwatch.

Custom stages can subclass nothing at all (duck typing), or use
:func:`stage` to lift a plain function::

    @stage("strip-buffers", optimize_timed=True)
    def strip_buffers(ctx):
        ctx.optimized = remove_buffers(ctx.optimized)
        return ctx
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .context import SynthesisContext


@runtime_checkable
class Stage(Protocol):
    """Structural interface every pipeline stage satisfies."""

    name: str

    def run(self, ctx: SynthesisContext) -> SynthesisContext: ...


class FunctionStage:
    """Adapter lifting ``fn(ctx) -> ctx`` into a :class:`Stage`.

    A function returning ``None`` is treated as mutating the context in
    place (the common case).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[SynthesisContext], SynthesisContext | None],
        optimize_timed: bool = False,
    ) -> None:
        self.name = name
        self._fn = fn
        self.optimize_timed = optimize_timed

    def run(self, ctx: SynthesisContext) -> SynthesisContext:
        result = self._fn(ctx)
        return ctx if result is None else result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionStage {self.name!r}>"


def stage(
    name: str, *, optimize_timed: bool = False
) -> Callable[[Callable[[SynthesisContext], SynthesisContext | None]], FunctionStage]:
    """Decorator form of :class:`FunctionStage`."""

    def wrap(
        fn: Callable[[SynthesisContext], SynthesisContext | None],
    ) -> FunctionStage:
        return FunctionStage(name, fn, optimize_timed=optimize_timed)

    return wrap


def stage_is_optimize_timed(candidate: Stage) -> bool:
    """Whether ``candidate``'s wall time counts as optimization runtime."""
    return bool(getattr(candidate, "optimize_timed", False))
