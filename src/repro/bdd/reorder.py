"""Variable reordering for BDDs.

The BDS-MAJ decomposition engine reorders each supernode BDD before
searching for dominators (paper Section IV.B: "As a first step, it
performs variable reordering to compact the size of the input BDD").

Because nodes in this package are immutable unique-table entries, a
reorder is realized by *rebuilding* the functions in a fresh manager
with the permuted order (the classical transfer-with-ITE construction).
That is more expensive than in-place sifting on a C package, but the
supernode BDDs produced by network partitioning are small, and the
guards below skip reordering when it could not pay for itself.
"""

from __future__ import annotations

from .manager import BDD

#: Do not attempt sifting above these sizes (rebuild cost would dominate).
DEFAULT_MAX_SIFT_VARS = 14
DEFAULT_MAX_SIFT_NODES = 600


def reorder(mgr: BDD, roots: list[int], order: list[str]) -> tuple[BDD, list[int]]:
    """Rebuild ``roots`` in a fresh manager using variable ``order``.

    ``order`` must contain every variable of ``mgr`` exactly once.
    Returns the new manager and the transferred root edges.
    """
    if sorted(order) != sorted(mgr.var_names):
        raise ValueError("order must be a permutation of the manager's variables")
    target = BDD(
        order,
        cache_capacity=mgr.op_cache.capacity,
        cache_policy=mgr.op_cache.policy,
    )
    return target, [mgr.transfer(root, target) for root in roots]


def sift(
    mgr: BDD,
    roots: list[int],
    max_vars: int = DEFAULT_MAX_SIFT_VARS,
    max_nodes: int = DEFAULT_MAX_SIFT_NODES,
) -> tuple[BDD, list[int]]:
    """One greedy sifting pass (Rudell-style, rebuild-based).

    Variables are visited in decreasing occurrence count; each is tried
    at every position of the order and left at the best one.  Returns a
    (possibly new) manager and the corresponding roots.  When the input
    exceeds the size guards the input is returned unchanged.
    """
    names = list(mgr.var_names)
    if len(names) > max_vars or mgr.size_many(roots) > max_nodes:
        return mgr, roots

    current_mgr, current_roots = mgr, list(roots)
    current_size = current_mgr.size_many(current_roots)

    occurrence = _occurrence_counts(current_mgr, current_roots)
    for name in sorted(names, key=lambda n: -occurrence.get(n, 0)):
        order = list(current_mgr.var_names)
        position = order.index(name)
        best = (current_size, position)
        for candidate_pos in range(len(order)):
            if candidate_pos == position:
                continue
            candidate_order = order[:position] + order[position + 1 :]
            candidate_order.insert(candidate_pos, name)
            trial_mgr, trial_roots = reorder(current_mgr, current_roots, candidate_order)
            trial_size = trial_mgr.size_many(trial_roots)
            if trial_size < best[0]:
                best = (trial_size, candidate_pos)
        if best[1] != position:
            final_order = order[:position] + order[position + 1 :]
            final_order.insert(best[1], name)
            current_mgr, current_roots = reorder(current_mgr, current_roots, final_order)
            current_size = best[0]
    return current_mgr, current_roots


def _occurrence_counts(mgr: BDD, roots: list[int]) -> dict[str, int]:
    """Number of BDD nodes labelled by each variable (sifting priority)."""
    counts: dict[str, int] = {}
    for index in mgr.nodes_reachable(roots):
        level, _, _ = mgr.node_fields(index)
        name = mgr.name_of(level)
        counts[name] = counts.get(name, 0) + 1
    return counts
