"""Variable reordering for BDDs.

The BDS-MAJ decomposition engine reorders each supernode BDD before
searching for dominators (paper Section IV.B: "As a first step, it
performs variable reordering to compact the size of the input BDD").

:func:`sift` is a true in-place Rudell sifting pass: the manager's
per-level unique subtables let :meth:`BDD.swap_adjacent` exchange two
adjacent variables by local node surgery, so trying a variable at every
position costs O(total nodes) instead of one full rebuild *per
position*.  That makes reordering cheap enough to run on every
supernode — there are no size guards anymore (the ``max_vars`` /
``max_nodes`` parameters remain for callers that want to opt out).

:func:`sift_rebuild` keeps the historical transfer-based sifter: each
candidate position is realized by rebuilding the functions in a fresh
manager.  It searches the same neighborhood with the same tie-breaks,
so it reaches the same final order — it is retained as the
equivalence/benchmark baseline (``benchmarks/bench_reorder.py`` pins
the in-place engine to ≥ its quality and a multiple of its speed).
"""

from __future__ import annotations

from typing import Sequence

from .manager import (
    BDD,
    DEFAULT_MAX_GROWTH,
    DEFAULT_MAX_PASSES,
    DEFAULT_REORDER_THRESHOLD,
    SiftResult,
)

#: Historical guard defaults of the rebuild-based sifter (kept for the
#: benchmark baseline; the in-place :func:`sift` no longer guards).
DEFAULT_MAX_SIFT_VARS = 14
DEFAULT_MAX_SIFT_NODES = 600


def reorder(mgr: BDD, roots: list[int], order: list[str]) -> tuple[BDD, list[int]]:
    """Rebuild ``roots`` in a fresh manager using variable ``order``.

    ``order`` must contain every variable of ``mgr`` exactly once.
    Returns the new manager and the transferred root edges.
    """
    if sorted(order) != sorted(mgr.var_names):
        raise ValueError("order must be a permutation of the manager's variables")
    target = BDD(
        order,
        cache_capacity=mgr.op_cache.capacity,
        cache_policy=mgr.op_cache.policy,
    )
    return target, [mgr.transfer(root, target) for root in roots]


def sift(
    mgr: BDD,
    roots: list[int],
    max_vars: int | None = None,
    max_nodes: int | None = None,
    max_growth: float | None = DEFAULT_MAX_GROWTH,
) -> tuple[BDD, list[int]]:
    """One greedy in-place sifting pass (Rudell-style).

    Reorders ``mgr`` itself via :meth:`BDD.sift`; the returned manager
    is the input manager and the returned edges equal ``roots`` (level
    swaps preserve every edge's function), so callers can keep their
    handles.  Edges *not* listed in ``roots`` are invalidated by the
    initial garbage collection.

    ``max_vars`` / ``max_nodes`` opt out of sifting for oversized
    inputs (both default to ``None`` — no guard: the in-place engine is
    cheap enough to always run).  Callers that need the pass outcome
    (did the order change, how many swaps) should call
    :meth:`BDD.sift` directly, which returns a :class:`SiftResult`.
    """
    if max_vars is not None and mgr.num_vars > max_vars:
        return mgr, list(roots)
    if max_nodes is not None and mgr.size_many(roots) > max_nodes:
        return mgr, list(roots)
    mgr.sift(roots, max_growth=max_growth)
    return mgr, list(roots)


def sift_converge(
    mgr: BDD,
    roots: list[int],
    max_passes: int = DEFAULT_MAX_PASSES,
    max_growth: float | None = DEFAULT_MAX_GROWTH,
) -> tuple[BDD, list[int]]:
    """Converge-to-fixpoint sifting (:meth:`BDD.sift_converge`) with the
    same return shape as :func:`sift`, for callers written against the
    rebuild-era interface.  The manager and edges are returned
    unchanged; callers that need the pass outcome should call
    :meth:`BDD.sift_converge` directly."""
    mgr.sift_converge(roots, max_passes=max_passes, max_growth=max_growth)
    return mgr, list(roots)


def sift_groups(
    mgr: BDD,
    roots: list[int],
    groups: Sequence[Sequence[str]] | None = None,
    max_growth: float | None = DEFAULT_MAX_GROWTH,
) -> tuple[BDD, list[int]]:
    """Symmetric group sifting (:meth:`BDD.sift_groups`) with the same
    return shape as :func:`sift`.  ``groups`` defaults to the detected
    :meth:`BDD.symmetry_groups` of ``roots``."""
    mgr.sift_groups(roots, groups=groups, max_growth=max_growth)
    return mgr, list(roots)


def symmetry_groups(mgr: BDD, roots: int | Sequence[int]) -> list[list[str]]:
    """Module-level alias of :meth:`BDD.symmetry_groups`."""
    return mgr.symmetry_groups(roots)


def sift_rebuild(
    mgr: BDD,
    roots: list[int],
    max_vars: int | None = None,
    max_nodes: int | None = None,
) -> tuple[BDD, list[int]]:
    """One greedy sifting pass realized by full rebuilds (the baseline).

    Variables are visited in decreasing occurrence count; each is tried
    at every position of the order — one transfer into a fresh manager
    per candidate position — and left at the best one.  Returns a
    (possibly new) manager and the corresponding roots.  When the input
    exceeds the optional size guards the input is returned unchanged.
    """
    names = list(mgr.var_names)
    if max_vars is not None and len(names) > max_vars:
        return mgr, roots
    if max_nodes is not None and mgr.size_many(roots) > max_nodes:
        return mgr, roots

    current_mgr, current_roots = mgr, list(roots)
    current_size = current_mgr.size_many(current_roots)

    occurrence = _occurrence_counts(current_mgr, current_roots)
    for name in sorted(names, key=lambda n: -occurrence.get(n, 0)):
        order = list(current_mgr.var_names)
        position = order.index(name)
        best = (current_size, position)
        for candidate_pos in range(len(order)):
            if candidate_pos == position:
                continue
            candidate_order = order[:position] + order[position + 1 :]
            candidate_order.insert(candidate_pos, name)
            trial_mgr, trial_roots = reorder(current_mgr, current_roots, candidate_order)
            trial_size = trial_mgr.size_many(trial_roots)
            if trial_size < best[0]:
                best = (trial_size, candidate_pos)
        if best[1] != position:
            final_order = order[:position] + order[position + 1 :]
            final_order.insert(best[1], name)
            current_mgr, current_roots = reorder(current_mgr, current_roots, final_order)
            current_size = best[0]
    return current_mgr, current_roots


def _occurrence_counts(mgr: BDD, roots: list[int]) -> dict[str, int]:
    """Number of BDD nodes labelled by each variable (sifting priority)."""
    counts: dict[str, int] = {}
    for index in mgr.nodes_reachable(roots):
        level, _, _ = mgr.node_fields(index)
        name = mgr.name_of(level)
        counts[name] = counts.get(name, 0) + 1
    return counts


__all__ = [
    "DEFAULT_MAX_GROWTH",
    "DEFAULT_MAX_PASSES",
    "DEFAULT_MAX_SIFT_NODES",
    "DEFAULT_MAX_SIFT_VARS",
    "DEFAULT_REORDER_THRESHOLD",
    "SiftResult",
    "reorder",
    "sift",
    "sift_converge",
    "sift_groups",
    "sift_rebuild",
    "symmetry_groups",
]
