"""Graphviz (dot) export of BDDs.

Used by the Figure 1 reproduction: the BDD of ``F = ab + bc + ac`` with
its non-trivial m-dominator highlighted in red.  Conventions follow the
paper's Figure 1: solid arrows are 1-edges, dashed arrows are 0-edges,
and a dotted arrow marks a complemented 0-edge.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .manager import BDD


def to_dot(
    mgr: BDD,
    roots: Mapping[str, int],
    highlight: Iterable[int] = (),
    graph_name: str = "bdd",
) -> str:
    """Render the BDD(s) rooted at ``roots`` (label -> edge) as dot text.

    ``highlight`` lists node indices to draw in red (e.g. m-dominators).
    """
    highlighted = set(highlight)
    lines = [
        f"digraph {graph_name} {{",
        "  rankdir=TB;",
        '  node [shape=circle, fontname="Helvetica"];',
        '  terminal [label="1", shape=box];',
    ]
    reachable = mgr.nodes_reachable(list(roots.values()))

    by_level: dict[int, list[int]] = {}
    for index in reachable:
        level, _, _ = mgr.node_fields(index)
        by_level.setdefault(level, []).append(index)

    for index in reachable:
        level, _, _ = mgr.node_fields(index)
        name = mgr.name_of(level)
        style = ', color=red, fontcolor=red, penwidth=2.0' if index in highlighted else ""
        lines.append(f'  n{index} [label="{name}"{style}];')

    for level in sorted(by_level):
        members = " ".join(f"n{index};" for index in by_level[level])
        lines.append(f"  {{ rank=same; {members} }}")

    def edge_line(src: str, edge: int, kind: str) -> str:
        target = "terminal" if edge >> 1 == 0 else f"n{edge >> 1}"
        if kind == "one":
            style = "solid"
        elif edge & 1:
            style = "dotted"  # complemented 0-edge
        else:
            style = "dashed"  # regular 0-edge
        return f"  {src} -> {target} [style={style}];"

    for index in reachable:
        _, high, low = mgr.node_fields(index)
        lines.append(edge_line(f"n{index}", high, "one"))
        lines.append(edge_line(f"n{index}", low, "zero"))

    for label, root in roots.items():
        lines.append(f'  f_{_sanitize(label)} [label="{label}", shape=plaintext];')
        lines.append(edge_line(f"f_{_sanitize(label)}", root, "zero" if root & 1 else "one"))

    lines.append("}")
    return "\n".join(lines)


def _sanitize(label: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in label)
