"""BDS-style dominator analysis on BDDs.

BDS (Yang & Ciesielski, the paper's reference [10]) drives logic
decomposition with special node classes:

* **1-dominators** — every path from the root to terminal 1 passes
  through them; they certify a conjunctive (AND) decomposition.
* **0-dominators** — dual, certifying a disjunctive (OR) decomposition.
* **x-dominators** — certifying an XOR/XNOR decomposition.

This module finds candidate nodes structurally (cut nodes, computed in
:mod:`repro.bdd.substitute`) and then *certifies* each candidate
functionally: the upper function is built by replacing the candidate
with a constant and the claimed identity (``F = g·h``, ``F = g+h`` or
``F = g⊕h``) is checked by canonical BDD equality.  A certified
decomposition is correct by construction — the structural conditions
are only a search filter, so subtle interactions with complemented
edges cannot produce wrong decompositions.

It also provides :func:`xor_split`, the "balanced XOR decomposition"
primitive that BDS-MAJ's cyclic optimization (γ-phase, Theorem 3.4)
uses to derive the K and M functions from ``Fb ⊕ Fc``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .manager import BDD
from .substitute import function_at, path_dominators, replace_node

#: Decomposition kinds certified by this module.
KIND_AND = "and"
KIND_OR = "or"
KIND_XOR = "xor"


@dataclass(frozen=True)
class DominatorDecomposition:
    """A certified simple-dominator decomposition ``F = upper <op> lower``.

    ``node`` is the dominator's node index in the source manager;
    ``upper`` and ``lower`` are edges in the same manager.
    """

    kind: str
    node: int
    upper: int
    lower: int

    def describe(self, mgr: BDD) -> str:
        op = {KIND_AND: "AND", KIND_OR: "OR", KIND_XOR: "XOR"}[self.kind]
        return (
            f"{op} decomposition at node {self.node}: "
            f"|upper|={mgr.size(self.upper)} |lower|={mgr.size(self.lower)}"
        )


def classify_cut_node(mgr: BDD, root: int, node_index: int) -> DominatorDecomposition | None:
    """Certify the decomposition induced by ``node_index`` in ``root``.

    Conceptually the node is replaced by a fresh variable ``y`` giving
    an upper function ``U`` with ``F = U[y := h]`` where ``h`` is the
    function rooted at the node.  The decomposition kinds correspond to
    ``U`` being ``g·y``, ``g·y'``, ``g+y``, ``g+y'`` or ``g⊕y`` — the
    primed forms arise because, with complemented edges, a node can be
    reached along paths of odd parity, so ``h`` may participate
    complemented.  Each candidate identity is certified by canonical BDD
    equality; complement variants are folded into ``lower``.

    Returns the first certified decomposition or ``None``.
    """
    lower = function_at(mgr, node_index)
    upper_one = replace_node(mgr, root, node_index, mgr.ONE)
    upper_zero = replace_node(mgr, root, node_index, mgr.ZERO)
    if root == mgr.and_(upper_one, lower):
        return DominatorDecomposition(KIND_AND, node_index, upper_one, lower)
    if root == mgr.and_(upper_zero, lower ^ 1):
        return DominatorDecomposition(KIND_AND, node_index, upper_zero, lower ^ 1)
    if root == mgr.or_(upper_zero, lower):
        return DominatorDecomposition(KIND_OR, node_index, upper_zero, lower)
    if root == mgr.or_(upper_one, lower ^ 1):
        return DominatorDecomposition(KIND_OR, node_index, upper_one, lower ^ 1)
    xor_value = mgr.xor(upper_zero, lower)
    if root == xor_value:
        return DominatorDecomposition(KIND_XOR, node_index, upper_zero, lower)
    if root == xor_value ^ 1:
        # F = g XNOR h == g XOR h'; fold the complement into the lower part.
        return DominatorDecomposition(KIND_XOR, node_index, upper_zero, lower ^ 1)
    return None


def find_simple_decompositions(mgr: BDD, root: int) -> list[DominatorDecomposition]:
    """All certified simple-dominator decompositions of ``root``.

    With complemented edges the BDD has a *single* terminal, so the
    classical "every path to terminal 1 passes through d" condition of
    a 1-dominator is parity-dependent (a path's value is the parity of
    its complement bits).  Rather than tracking parities structurally,
    every internal node below the root is classified and the claimed
    identity certified by BDD equality — the certified set is exactly
    the set of nodes whose substitution yields a valid AND/OR/XOR split,
    which subsumes the parity-aware 0-/1-/x-dominator definitions.
    """
    root_index = root >> 1
    result = []
    for node_index in mgr.nodes_reachable([root]):
        if node_index == root_index:
            continue
        decomposition = classify_cut_node(mgr, root, node_index)
        if decomposition is not None:
            result.append(decomposition)
    return result


def best_simple_decomposition(
    mgr: BDD, root: int, candidates: list[DominatorDecomposition] | None = None
) -> DominatorDecomposition | None:
    """Pick the most balanced certified decomposition (BDS favours
    splits whose two halves have similar BDD sizes, which keeps the
    factoring tree shallow)."""
    if candidates is None:
        candidates = find_simple_decompositions(mgr, root)
    best = None
    best_score = None
    for decomposition in candidates:
        upper_size = mgr.size(decomposition.upper)
        lower_size = mgr.size(decomposition.lower)
        total = mgr.size(root)
        if upper_size >= total or lower_size >= total:
            continue  # no structural progress; would not terminate
        score = (max(upper_size, lower_size), upper_size + lower_size)
        if best_score is None or score < best_score:
            best = decomposition
            best_score = score
    return best


def simple_dominator_nodes(mgr: BDD, root: int) -> set[int]:
    """Node indices that act as simple 0-, 1- or x-dominators of ``root``.

    Used by the m-dominator filter: BDS-MAJ's condition (i) excludes
    these nodes from majority candidates because they already certify a
    cheaper radix-2 decomposition.
    """
    return {
        decomposition.node for decomposition in find_simple_decompositions(mgr, root)
    }


def find_xor_decompositions(mgr: BDD, root: int) -> list[DominatorDecomposition]:
    """XOR-only variant of :func:`find_simple_decompositions`.

    The balancing phase of the majority optimization only needs XOR
    splits, and it runs inside Algorithm 1's innermost loop — checking
    just the two XOR identities per node is ~3x cheaper than the full
    classification.
    """
    root_index = root >> 1
    result = []
    for node_index in mgr.nodes_reachable([root]):
        if node_index == root_index:
            continue
        lower = function_at(mgr, node_index)
        upper_zero = replace_node(mgr, root, node_index, mgr.ZERO)
        xor_value = mgr.xor(upper_zero, lower)
        if root == xor_value:
            result.append(
                DominatorDecomposition(KIND_XOR, node_index, upper_zero, lower)
            )
        elif root == xor_value ^ 1:
            result.append(
                DominatorDecomposition(KIND_XOR, node_index, upper_zero, lower ^ 1)
            )
    return result


# ----------------------------------------------------------------------
# Balanced XOR splitting (used by the γ optimization phase)
# ----------------------------------------------------------------------
def xor_split(mgr: BDD, f: int, max_dominator_nodes: int = 150) -> tuple[int, int]:
    """Split ``f`` into ``(M, K)`` with ``M ⊕ K == f``, preferring a
    balanced pair (similar BDD sizes, both smaller than ``f``).

    Strategy, in order of preference:

    1. x-dominator decomposition of ``f`` (disjoint XOR split), skipped
       above ``max_dominator_nodes`` where the O(N^2) candidate scan
       would dominate runtime;
    2. the disjoint variable split ``f = (v·f|v) ⊕ (v'·f|v')`` over the
       best variable ``v`` of the support;
    3. the trivial split ``(f, 0)``.
    """
    if mgr.is_constant(f):
        return f, mgr.ZERO

    best: tuple[int, int] | None = None
    best_score: tuple[int, int] | None = None

    def consider(m_edge: int, k_edge: int) -> None:
        nonlocal best, best_score
        m_size = mgr.size(m_edge)
        k_size = mgr.size(k_edge)
        score = (max(m_size, k_size), abs(m_size - k_size))
        if best_score is None or score < best_score:
            best = (m_edge, k_edge)
            best_score = score

    if mgr.size(f) <= max_dominator_nodes:
        for decomposition in find_xor_decompositions(mgr, f):
            consider(decomposition.upper, decomposition.lower)

    for level in sorted(mgr.support_levels(f)):
        variable = mgr.var_at(level)
        high = mgr.cofactor(f, level, True)
        low = mgr.cofactor(f, level, False)
        consider(mgr.and_(variable, high), mgr.and_(variable ^ 1, low))

    if best is None:
        return f, mgr.ZERO
    return best
