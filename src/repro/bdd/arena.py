"""Cross-process shared-memory BDD arena.

A :class:`BddArena` is a **read-only snapshot** of a manager's flat
node-store arrays — ``levels``/``highs``/``lows`` with complement-edge
encoding, plus the variable order and a root directory keyed by
caller-chosen strings (the serving layer uses ``"circuit/output"``) —
serialized into one :mod:`multiprocessing.shared_memory` block.

The point is the serving workload: every worker of every job used to
rebuild the same registry circuits' BDDs from scratch.  With an arena,
the server builds them **once**, publishes the block, and each
long-lived pool worker attaches (zero-copy: the arrays are memoryview
casts over the shared block) and pulls individual cones into its
private manager *copy-on-miss* — a linear walk through the unique
table, never the operation cache, so nothing an attached worker
synthesizes changes any published counter.

Block layout (position-independent, one block per arena)::

    [0:8)   little-endian uint64: JSON header length H
    [8:8+H) UTF-8 JSON header {"schema", "vars", "nodes", "roots"}
    then 3 x nodes x int64 columns: levels, highs, lows

Lifecycle: the publishing process owns the block and must
:meth:`~BddArena.unlink` it (the server does so at shutdown); attached
views just :meth:`~BddArena.close`.  Worker-side module state
(:func:`attach_worker_arena` / :func:`current_arena`) lets a
multiprocessing pool initializer attach once per worker process.
"""

from __future__ import annotations

import contextlib
import json
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Mapping

from ..faults import inject as inject_fault
from .manager import BDD

if TYPE_CHECKING:  # pragma: no cover - hints only
    pass

#: Schema tag of the serialized header.
ARENA_SCHEMA = "bdsmaj-arena/v1"

_HEADER_LEN = struct.Struct("<Q")
_INT64 = 8


class ArenaError(RuntimeError):
    """Raised for malformed arena blocks or incompatible attach targets."""


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    An attaching process must never unlink the block: on Pythons before
    3.13 a plain attach still *registers* the segment with the process'
    resource tracker, which would unlink it (with a spurious "leaked
    shared_memory" warning) when the attaching worker exits — killing
    the arena for everyone else.  3.13+ has ``track=False`` for exactly
    this; earlier versions need the explicit unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 path
        block = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(block._name, "shared_memory")  # noqa: SLF001
        except Exception:  # noqa: BLE001 - best effort, tracker details vary
            pass
        return block


class BddArena:
    """One published (or attached) shared-memory BDD snapshot."""

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        var_names: tuple[str, ...],
        num_nodes: int,
        roots: dict[str, int],
        levels,
        highs,
        lows,
        owner: bool,
    ) -> None:
        self._block = block
        self._owner = owner
        self._closed = False
        self.var_names = var_names
        self.num_nodes = num_nodes
        self.roots = roots
        self._levels = levels
        self._highs = highs
        self._lows = lows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls, manager: BDD, roots: Mapping[str, int], name: str | None = None
    ) -> "BddArena":
        """Snapshot the cones of ``roots`` out of ``manager`` into a new
        shared-memory block; the returned arena owns the block."""
        var_names, levels, highs, lows, root_edges = manager.export_arrays(dict(roots))
        header = json.dumps(
            {
                "schema": ARENA_SCHEMA,
                "vars": list(var_names),
                "nodes": len(levels),
                "roots": root_edges,
            },
            sort_keys=True,
        ).encode("utf-8")
        columns = len(levels) * _INT64
        size = _HEADER_LEN.size + len(header) + 3 * columns
        block = shared_memory.SharedMemory(create=True, size=size, name=name)
        buffer = block.buf
        _HEADER_LEN.pack_into(buffer, 0, len(header))
        offset = _HEADER_LEN.size
        buffer[offset : offset + len(header)] = header
        offset += len(header)
        for column in (levels, highs, lows):
            buffer[offset : offset + columns] = column.tobytes()
            offset += columns
        return cls._from_block(block, owner=True)

    @classmethod
    def attach(cls, name: str) -> "BddArena":
        """Attach a read-only view of a published arena by block name."""
        return cls._from_block(_attach_block(name), owner=False)

    @classmethod
    def _from_block(
        cls, block: shared_memory.SharedMemory, owner: bool
    ) -> "BddArena":
        buffer = block.buf
        try:
            (header_len,) = _HEADER_LEN.unpack_from(buffer, 0)
            offset = _HEADER_LEN.size
            header = json.loads(bytes(buffer[offset : offset + header_len]))
            if header.get("schema") != ARENA_SCHEMA:
                raise ArenaError(f"unknown arena schema {header.get('schema')!r}")
            nodes = int(header["nodes"])
            offset += header_len
            columns = nodes * _INT64
            views = []
            for _ in range(3):
                views.append(buffer[offset : offset + columns].cast("q"))
                offset += columns
        except ArenaError:
            block.close()
            raise
        except Exception as exc:
            block.close()
            raise ArenaError(f"malformed arena block {block.name!r}: {exc}") from exc
        return cls(
            block,
            tuple(header["vars"]),
            nodes,
            {str(key): int(edge) for key, edge in header["roots"].items()},
            *views,
            owner=owner,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory block name (what workers attach by)."""
        return self._block.name

    def keys(self) -> list[str]:
        """Root-directory keys, sorted."""
        return sorted(self.roots)

    def __contains__(self, key: str) -> bool:
        return key in self.roots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BddArena {self.name!r} nodes={self.num_nodes} "
            f"roots={len(self.roots)}{' owner' if self._owner else ''}>"
        )

    # ------------------------------------------------------------------
    # Copying cones out
    # ------------------------------------------------------------------
    def manager(self, **manager_kwargs) -> BDD:
        """A fresh private manager declared with the arena's variable
        order — the natural binding target for a worker."""
        return BDD(self.var_names, **manager_kwargs)

    def binding(self, target: BDD) -> "ArenaBinding":
        """Bind ``target`` for copy-on-miss imports.

        The arena's variables must already exist in ``target`` with
        their relative order preserved (any interleaved extra variables
        are fine); otherwise the imported nodes would violate the
        target's ordering invariant.
        """
        level_map: dict[int, int] = {}
        previous = -1
        for arena_level, var in enumerate(self.var_names):
            target_level = target.level_of(var)  # raises on unknown names
            if target_level <= previous:
                raise ArenaError(
                    f"target variable order incompatible with arena at {var!r}"
                )
            previous = target_level
            level_map[arena_level] = target_level
        return ArenaBinding(self, target, level_map)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this view (memoryview casts, then the mapping).
        Idempotent — the worker-detach path and :meth:`unlink` may both
        get here."""
        if self._closed:
            return
        self._closed = True
        for view in (self._levels, self._highs, self._lows):
            if view is not None:
                view.release()
        self._levels = self._highs = self._lows = None
        self._block.close()

    def unlink(self) -> None:
        """Destroy the block (owner only — attached views just close)."""
        self.close()
        if self._owner:
            # Pre-3.13 attaches in fork-mode children share the owner's
            # resource tracker, and their protective unregister (see
            # ``_attach_block``) may have stolen the owner's entry — the
            # tracker would then log a spurious KeyError for unlink's
            # own unregister.  Re-registering first is an idempotent
            # set-add, so unlink always finds its entry.
            with contextlib.suppress(Exception):
                resource_tracker.register(self._block._name, "shared_memory")  # noqa: SLF001
            self._block.unlink()


class ArenaBinding:
    """Copy-on-miss channel from one arena into one private manager.

    Keeps the snapshot-index -> rebuilt-edge memo across copies, so a
    long-lived worker pulls every shared subfunction out of the arena
    exactly once for its whole lifetime.
    """

    def __init__(
        self, arena: BddArena, target: BDD, level_map: dict[int, int]
    ) -> None:
        self.arena = arena
        self.target = target
        self._level_map = level_map
        self._memo: dict[int, int] = {}
        #: Cone copies that found every node already imported.
        self.hits = 0
        #: Cone copies that had to import at least one node.
        self.misses = 0

    def copy(self, key: str) -> int:
        """The arena root ``key`` rebuilt in the target manager."""
        try:
            edge = self.arena.roots[key]
        except KeyError:
            raise ArenaError(f"arena has no root {key!r}") from None
        return self.copy_edge(edge)

    def copy_edge(self, edge: int) -> int:
        before = len(self._memo)
        rebuilt = self.target.import_cone(
            self.arena._levels,  # noqa: SLF001 - binding is the arena's friend
            self.arena._highs,  # noqa: SLF001
            self.arena._lows,  # noqa: SLF001
            edge,
            self._level_map,
            self._memo,
        )
        if len(self._memo) == before:
            self.hits += 1
        else:
            self.misses += 1
        return rebuilt

    def imported_nodes(self) -> int:
        """Snapshot nodes pulled into the target so far."""
        return len(self._memo)


# ----------------------------------------------------------------------
# Worker-process attachment (multiprocessing pool initializer seam)
# ----------------------------------------------------------------------
_worker_arena: BddArena | None = None


def attach_worker_arena(name: "str | BddArena | None") -> None:
    """Attach this process to the arena named ``name`` (pool
    initializers call this once per worker).  A failed attach — the
    server already unlinked, permissions, a torn block — leaves the
    worker arena-less rather than dead: every consumer falls back to
    building from scratch.

    Passing an existing :class:`BddArena` installs that view directly —
    the publishing server does this so its own serial jobs share the
    snapshot without a second mapping.  ``None`` detaches (closing a
    previously attached view; an installed owner view is closed too,
    which its later :meth:`~BddArena.unlink` tolerates).
    """
    global _worker_arena
    previous, _worker_arena = _worker_arena, None
    if previous is not None:
        with contextlib.suppress(Exception):
            previous.close()
    if name is None:
        return
    if isinstance(name, BddArena):
        _worker_arena = name
        return
    try:
        inject_fault("arena.attach", name)
        _worker_arena = BddArena.attach(name)
    except Exception:  # noqa: BLE001 - degraded mode beats a dead worker
        _worker_arena = None


def current_arena() -> BddArena | None:
    """The arena this process attached to, if any."""
    return _worker_arena
