"""Cross-process shared-memory BDD arena.

A :class:`BddArena` is a **read-only snapshot** of a manager's flat
node-store arrays — ``levels``/``highs``/``lows`` with complement-edge
encoding, plus the variable order and a root directory keyed by
caller-chosen strings (the serving layer uses ``"circuit/output"``) —
serialized into one :mod:`multiprocessing.shared_memory` block.

The point is the serving workload: every worker of every job used to
rebuild the same registry circuits' BDDs from scratch.  With an arena,
the server builds them **once**, publishes the block, and each
long-lived pool worker attaches (zero-copy: the arrays are memoryview
casts over the shared block) and pulls individual cones into its
private manager *copy-on-miss* — a linear walk through the unique
table, never the operation cache, so nothing an attached worker
synthesizes changes any published counter.

Block layout (position-independent, one block per arena)::

    [0:8)   little-endian uint64: JSON header length H
    [8:8+H) UTF-8 JSON header {"schema", "vars", "nodes", "roots"}
    then 3 x nodes x int64 columns: levels, highs, lows

Lifecycle: the publishing process owns the block and must
:meth:`~BddArena.unlink` it (the server does so at shutdown); attached
views just :meth:`~BddArena.close`.  Worker-side module state
(:func:`attach_worker_arena` / :func:`current_arena`) lets a
multiprocessing pool initializer attach once per worker process.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import struct
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Mapping

from ..faults import inject as inject_fault
from .manager import TERMINAL_LEVEL, BDD

if TYPE_CHECKING:  # pragma: no cover - hints only
    pass

#: Schema tag of the serialized header.
ARENA_SCHEMA = "bdsmaj-arena/v1"

_HEADER_LEN = struct.Struct("<Q")
_INT64 = 8


class ArenaError(RuntimeError):
    """Raised for malformed arena blocks or incompatible attach targets."""


class SharedStoreFull(ArenaError):
    """The shared unique table ran out of node slots (or one hash
    stripe's bucket segment filled).  Callers fall back to a private
    manager — the store is an accelerator, never a correctness
    dependency."""


def _tracked_name(block: shared_memory.SharedMemory) -> str:
    """The name the resource tracker knows ``block`` by.

    POSIX platforms register the platform-internal slash-prefixed form,
    not the public ``block.name`` — derived here from public attributes
    only, so alternative implementations without the private ``_name``
    still work.
    """
    name = block.name
    if os.name == "posix" and not name.startswith("/"):
        name = "/" + name
    return name


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    An attaching process must never unlink the block: on Pythons before
    3.13 a plain attach still *registers* the segment with the process'
    resource tracker, which would unlink it (with a spurious "leaked
    shared_memory" warning) when the attaching worker exits — killing
    the arena for everyone else.  3.13+ has ``track=False`` for exactly
    this; earlier versions need the explicit unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 path
        block = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(_tracked_name(block), "shared_memory")
        except Exception:  # noqa: BLE001 - best effort: platforms without
            pass  # tracker registration must not kill the worker here
        return block


class BddArena:
    """One published (or attached) shared-memory BDD snapshot."""

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        var_names: tuple[str, ...],
        num_nodes: int,
        roots: dict[str, int],
        levels,
        highs,
        lows,
        owner: bool,
    ) -> None:
        self._block = block
        self._owner = owner
        self._closed = False
        self.var_names = var_names
        self.num_nodes = num_nodes
        self.roots = roots
        self._levels = levels
        self._highs = highs
        self._lows = lows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls, manager: BDD, roots: Mapping[str, int], name: str | None = None
    ) -> "BddArena":
        """Snapshot the cones of ``roots`` out of ``manager`` into a new
        shared-memory block; the returned arena owns the block."""
        var_names, levels, highs, lows, root_edges = manager.export_arrays(dict(roots))
        header = json.dumps(
            {
                "schema": ARENA_SCHEMA,
                "vars": list(var_names),
                "nodes": len(levels),
                "roots": root_edges,
            },
            sort_keys=True,
        ).encode("utf-8")
        columns = len(levels) * _INT64
        size = _HEADER_LEN.size + len(header) + 3 * columns
        block = shared_memory.SharedMemory(create=True, size=size, name=name)
        buffer = block.buf
        _HEADER_LEN.pack_into(buffer, 0, len(header))
        offset = _HEADER_LEN.size
        buffer[offset : offset + len(header)] = header
        offset += len(header)
        for column in (levels, highs, lows):
            buffer[offset : offset + columns] = column.tobytes()
            offset += columns
        return cls._from_block(block, owner=True)

    @classmethod
    def attach(cls, name: str) -> "BddArena":
        """Attach a read-only view of a published arena by block name."""
        return cls._from_block(_attach_block(name), owner=False)

    @classmethod
    def _from_block(
        cls, block: shared_memory.SharedMemory, owner: bool
    ) -> "BddArena":
        buffer = block.buf
        try:
            (header_len,) = _HEADER_LEN.unpack_from(buffer, 0)
            offset = _HEADER_LEN.size
            header = json.loads(bytes(buffer[offset : offset + header_len]))
            if header.get("schema") != ARENA_SCHEMA:
                raise ArenaError(f"unknown arena schema {header.get('schema')!r}")
            nodes = int(header["nodes"])
            offset += header_len
            columns = nodes * _INT64
            views = []
            for _ in range(3):
                views.append(buffer[offset : offset + columns].cast("q"))
                offset += columns
        except ArenaError:
            block.close()
            raise
        except Exception as exc:
            block.close()
            raise ArenaError(f"malformed arena block {block.name!r}: {exc}") from exc
        return cls(
            block,
            tuple(header["vars"]),
            nodes,
            {str(key): int(edge) for key, edge in header["roots"].items()},
            *views,
            owner=owner,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory block name (what workers attach by)."""
        return self._block.name

    def keys(self) -> list[str]:
        """Root-directory keys, sorted."""
        return sorted(self.roots)

    def __contains__(self, key: str) -> bool:
        return key in self.roots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BddArena {self.name!r} nodes={self.num_nodes} "
            f"roots={len(self.roots)}{' owner' if self._owner else ''}>"
        )

    # ------------------------------------------------------------------
    # Copying cones out
    # ------------------------------------------------------------------
    def manager(self, **manager_kwargs) -> BDD:
        """A fresh private manager declared with the arena's variable
        order — the natural binding target for a worker."""
        return BDD(self.var_names, **manager_kwargs)

    def binding(self, target: BDD) -> "ArenaBinding":
        """Bind ``target`` for copy-on-miss imports.

        The arena's variables must already exist in ``target`` with
        their relative order preserved (any interleaved extra variables
        are fine); otherwise the imported nodes would violate the
        target's ordering invariant.
        """
        level_map: dict[int, int] = {}
        previous = -1
        for arena_level, var in enumerate(self.var_names):
            target_level = target.level_of(var)  # raises on unknown names
            if target_level <= previous:
                raise ArenaError(
                    f"target variable order incompatible with arena at {var!r}"
                )
            previous = target_level
            level_map[arena_level] = target_level
        return ArenaBinding(self, target, level_map)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this view (memoryview casts, then the mapping).
        Idempotent — the worker-detach path and :meth:`unlink` may both
        get here."""
        if self._closed:
            return
        self._closed = True
        for view in (self._levels, self._highs, self._lows):
            if view is not None:
                view.release()
        self._levels = self._highs = self._lows = None
        self._block.close()

    def unlink(self) -> None:
        """Destroy the block (owner only — attached views just close)."""
        self.close()
        if self._owner:
            # Pre-3.13 attaches in fork-mode children share the owner's
            # resource tracker, and their protective unregister (see
            # ``_attach_block``) may have stolen the owner's entry — the
            # tracker would then log a spurious KeyError for unlink's
            # own unregister.  Re-registering first is an idempotent
            # set-add, so unlink always finds its entry.
            with contextlib.suppress(Exception):
                resource_tracker.register(_tracked_name(self._block), "shared_memory")
            self._block.unlink()


class ArenaBinding:
    """Copy-on-miss channel from one arena into one private manager.

    Keeps the snapshot-index -> rebuilt-edge memo across copies, so a
    long-lived worker pulls every shared subfunction out of the arena
    exactly once for its whole lifetime.
    """

    def __init__(
        self, arena: BddArena, target: BDD, level_map: dict[int, int]
    ) -> None:
        self.arena = arena
        self.target = target
        self._level_map = level_map
        self._memo: dict[int, int] = {}
        #: Cone copies that found every node already imported.
        self.hits = 0
        #: Cone copies that had to import at least one node.
        self.misses = 0

    def copy(self, key: str) -> int:
        """The arena root ``key`` rebuilt in the target manager."""
        try:
            edge = self.arena.roots[key]
        except KeyError:
            raise ArenaError(f"arena has no root {key!r}") from None
        return self.copy_edge(edge)

    def copy_edge(self, edge: int) -> int:
        before = len(self._memo)
        rebuilt = self.target.import_cone(
            self.arena._levels,  # noqa: SLF001 - binding is the arena's friend
            self.arena._highs,  # noqa: SLF001
            self.arena._lows,  # noqa: SLF001
            edge,
            self._level_map,
            self._memo,
        )
        if len(self._memo) == before:
            self.hits += 1
        else:
            self.misses += 1
        return rebuilt

    def imported_nodes(self) -> int:
        """Snapshot nodes pulled into the target so far."""
        return len(self._memo)


# ----------------------------------------------------------------------
# Writable shared unique table
# ----------------------------------------------------------------------
#: Schema magic of a shared-store block ("BDSMAJS1" little-endian-ish).
STORE_MAGIC = 0x4244534D414A5331

#: Default node capacity of a shared store (3 int64 columns -> 24 MiB).
DEFAULT_STORE_CAPACITY = 1 << 20

#: Default stripe count for the bucket segments / insert locks.
DEFAULT_STORE_STRIPES = 16

#: Default byte budget for the JSON vars+roots directory region.
DEFAULT_STORE_DIR_BYTES = 1 << 16

#: Worker-local hits accumulated before flushing to the shared counter.
_HIT_FLUSH = 256

_MASK64 = (1 << 64) - 1

# Header cell indices (int64 each; _CELLS slots reserved).
_C_MAGIC = 0
_C_CAPACITY = 1
_C_STRIPES = 2
_C_BUCKETS = 3
_C_DIR_BYTES = 4
_C_NEXT_FREE = 5
_C_DIR_VERSION = 6
_C_DIR_LEN = 7
_C_HITS = 8
_C_MISSES = 9
_C_CONTENTION = 10
_CELLS = 16


def _mix(level: int, high: int, low: int) -> int:
    """Deterministic 64-bit arithmetic hash of a node triple.

    splitmix64-style finalizer over a linear combination — the same
    value in every process on every run (the project's determinism
    contract bans the salted builtin ``hash``)."""
    x = (
        level * 0x9E3779B97F4A7C15
        + high * 0xBF58476D1CE4E5B9
        + low * 0x94D049BB133111EB
    ) & _MASK64
    x ^= x >> 31
    x = (x * 0xD6E8FEB86659FD93) & _MASK64
    x ^= x >> 27
    return x


def _store_context() -> multiprocessing.context.BaseContext:
    """Context the store's locks are created from.

    ``forkserver``/``spawn`` locks are named semaphores that survive
    pickling through pool ``initargs`` (a ``fork``-context lock is
    unlinked at creation and cannot cross a spawn boundary); ``fork``
    pools inherit them without pickling, so one context serves every
    pool flavor the batch layer uses."""
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform without forkserver
        return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class SharedStoreHandle:
    """Everything a worker needs to attach a :class:`SharedNodeStore`:
    the block name plus the lock array.  Picklable only through
    multiprocessing channels (pool ``initargs``) — the locks are
    semaphores, not plain data."""

    name: str
    stripe_locks: tuple = field(repr=False)
    alloc_lock: object = field(repr=False)
    meta_lock: object = field(repr=False)


class SharedNodeStore:
    """A writable cross-process BDD unique table in shared memory.

    Layout (one block)::

        [16 int64 header cells]  magic, geometry, next_free high-water
                                 mark, directory seqlock, counters
        [3 x capacity int64]     level / high / low node columns
        [buckets int64]          open-addressed slots, node_index + 1
                                 (0 = empty), partitioned into
                                 ``num_stripes`` contiguous segments
        [dir_bytes]              JSON ``{"vars": [...], "roots": {...}}``

    Concurrency discipline:

    * **find-or-create** probes its stripe's bucket segment *lock-free*
      first (inserts publish the bucket slot last, after the node
      columns — on x86's total store order a racing reader sees either
      an empty slot or a fully published node).  On a miss it takes
      that stripe's lock, re-probes (another process may have inserted
      meanwhile — counted as *contention*), allocates a node index
      under the single ``alloc_lock`` bump allocator, writes the
      columns, and only then publishes the bucket slot.
    * The probe sequence wraps **within one stripe's segment**, so one
      stripe lock fully serializes every key that can land in it.
    * The store is **append-only**: nodes are never freed, moved or
      reordered, which is what keeps every process' private operation
      cache valid forever (indices are stable) and makes the lock-free
      read safe.
    * The vars+roots directory is a seqlock: writers (under
      ``meta_lock``) bump the version odd, rewrite the JSON region,
      bump it even; readers retry on a torn or odd version.
    """

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        handle: SharedStoreHandle,
        owner: bool,
    ) -> None:
        self._block = block
        self._handle = handle
        self._owner = owner
        self._closed = False
        buffer = block.buf
        cells = buffer[: _CELLS * _INT64].cast("q")
        if cells[_C_MAGIC] != STORE_MAGIC:
            cells.release()
            block.close()
            raise ArenaError(f"block {block.name!r} is not a shared node store")
        self._cells = cells
        self._capacity = int(cells[_C_CAPACITY])
        self._num_stripes = int(cells[_C_STRIPES])
        bucket_capacity = int(cells[_C_BUCKETS])
        self._segment = bucket_capacity // self._num_stripes
        dir_bytes = int(cells[_C_DIR_BYTES])
        offset = _CELLS * _INT64
        column = self._capacity * _INT64
        self.levels = buffer[offset : offset + column].cast("q")
        offset += column
        self.highs = buffer[offset : offset + column].cast("q")
        offset += column
        self.lows = buffer[offset : offset + column].cast("q")
        offset += column
        self._buckets = buffer[offset : offset + bucket_capacity * _INT64].cast("q")
        offset += bucket_capacity * _INT64
        self._dir_buf = buffer[offset : offset + dir_bytes]
        self._dir_bytes = dir_bytes
        self._var_index: dict[str, int] = {}
        #: Triple -> index memo.  The store is append-only and nodes are
        #: never reclaimed, so a resolved mapping holds for the lifetime
        #: of the block — repeat lookups from this view skip the shared
        #: probe entirely (a parked pool worker keeps its view, and with
        #: it the memo, across jobs).
        self._memo: dict[tuple[int, int, int], int] = {}
        #: Process-local lookup counters (exact shared miss/contention
        #: counts live in the header cells; hits are flushed in batches).
        self.local_hits = 0
        self.local_misses = 0
        self.local_contention = 0
        self._pending_hits = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        var_names: "tuple[str, ...] | list[str]" = (),
        capacity: int = DEFAULT_STORE_CAPACITY,
        num_stripes: int = DEFAULT_STORE_STRIPES,
        dir_bytes: int = DEFAULT_STORE_DIR_BYTES,
        name: str | None = None,
    ) -> "SharedNodeStore":
        """Create an empty store seeded with ``var_names`` (in order).

        ``capacity`` is the node budget; buckets are sized at twice the
        capacity (load factor <= 0.5 keeps probes short), rounded up to
        a multiple of ``num_stripes``."""
        if capacity < 2:
            raise ArenaError("store capacity must hold the terminal and a node")
        if num_stripes < 1:
            raise ArenaError("store needs at least one stripe")
        bucket_capacity = 2 * capacity
        bucket_capacity += (-bucket_capacity) % num_stripes
        size = (
            _CELLS * _INT64
            + 3 * capacity * _INT64
            + bucket_capacity * _INT64
            + dir_bytes
        )
        block = shared_memory.SharedMemory(create=True, size=size, name=name)
        cells = block.buf[: _CELLS * _INT64].cast("q")
        cells[_C_CAPACITY] = capacity
        cells[_C_STRIPES] = num_stripes
        cells[_C_BUCKETS] = bucket_capacity
        cells[_C_DIR_BYTES] = dir_bytes
        cells[_C_NEXT_FREE] = 1  # node 0 is the terminal
        cells[_C_MAGIC] = STORE_MAGIC  # publish the header last
        cells.release()
        context = _store_context()
        handle = SharedStoreHandle(
            name=block.name,
            stripe_locks=tuple(context.Lock() for _ in range(num_stripes)),
            alloc_lock=context.Lock(),
            meta_lock=context.Lock(),
        )
        store = cls(block, handle, owner=True)
        store.levels[0] = TERMINAL_LEVEL
        store._write_directory({"vars": [], "roots": {}})
        for var in var_names:
            store.ensure_var(var)
        return store

    @classmethod
    def attach(cls, handle: SharedStoreHandle) -> "SharedNodeStore":
        """Attach a worker view of an existing store."""
        return cls(_attach_block(handle.name), handle, owner=False)

    def handle(self) -> SharedStoreHandle:
        """The picklable attach token (pass through pool ``initargs``)."""
        return self._handle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._block.name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Published high-water mark: nodes allocated so far (incl. the
        terminal)."""
        return int(self._cells[_C_NEXT_FREE])

    def counters(self) -> dict[str, int]:
        """Shared (exact miss/contention, batched hits) and
        process-local lookup counters."""
        return {
            "nodes": self.count,
            "capacity": self._capacity,
            "hits": int(self._cells[_C_HITS]) + self._pending_hits,
            "misses": int(self._cells[_C_MISSES]),
            "contention": int(self._cells[_C_CONTENTION]),
            "local_hits": self.local_hits,
            "local_misses": self.local_misses,
            "local_contention": self.local_contention,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedNodeStore {self.name!r} nodes={self.count}/"
            f"{self._capacity}{' owner' if self._owner else ''}>"
        )

    # ------------------------------------------------------------------
    # Find-or-create
    # ------------------------------------------------------------------
    def find_or_create(self, level: int, high: int, low: int) -> int:
        """Index of the node ``(level, high, low)``, inserting it if
        absent.  Callers pass canonical triples (high edge regular,
        ``high != low``); raises :class:`SharedStoreFull` when the node
        budget or the key's bucket segment is exhausted."""
        key = (level, high, low)
        node = self._memo.get(key)
        if node is not None:
            self.local_hits += 1
            self._pending_hits += 1
            if self._pending_hits >= _HIT_FLUSH:
                self._flush_hits()
            return node
        mixed = _mix(level, high, low)
        stripe = mixed % self._num_stripes
        segment = self._segment
        base = stripe * segment
        start = (mixed // self._num_stripes) % segment
        buckets = self._buckets
        levels = self.levels
        highs = self.highs
        lows = self.lows
        index = start
        for _ in range(segment):
            slot = buckets[base + index]
            if slot == 0:
                break
            node = slot - 1
            if levels[node] == level and highs[node] == high and lows[node] == low:
                self._memo[key] = node
                self.local_hits += 1
                self._pending_hits += 1
                if self._pending_hits >= _HIT_FLUSH:
                    self._flush_hits()
                return node
            index += 1
            if index == segment:
                index = 0
        with self._handle.stripe_locks[stripe]:
            index = start
            probes = 0
            while probes < segment:
                slot = buckets[base + index]
                if slot == 0:
                    break
                node = slot - 1
                if (
                    levels[node] == level
                    and highs[node] == high
                    and lows[node] == low
                ):
                    # Lost the race: another process inserted this very
                    # node between our lock-free miss and the lock.
                    self._memo[key] = node
                    self.local_contention += 1
                    self._cells[_C_CONTENTION] += 1
                    return node
                index += 1
                if index == segment:
                    index = 0
                probes += 1
            else:
                raise SharedStoreFull(
                    f"bucket segment of stripe {stripe} is full "
                    f"({segment} slots)"
                )
            with self._handle.alloc_lock:
                node = int(self._cells[_C_NEXT_FREE])
                if node >= self._capacity:
                    raise SharedStoreFull(
                        f"store is full ({self._capacity} nodes)"
                    )
                self._cells[_C_NEXT_FREE] = node + 1
            levels[node] = level
            highs[node] = high
            lows[node] = low
            # Publish the bucket slot *last*: a lock-free reader that
            # sees it non-zero sees fully written node columns.
            buckets[base + index] = node + 1
            self._memo[key] = node
            self.local_misses += 1
            self._cells[_C_MISSES] += 1
            return node

    def _flush_hits(self) -> None:
        """Fold the batched process-local hits into the shared counter
        (under the alloc lock — rare, so the cost stays off the hot
        path)."""
        pending, self._pending_hits = self._pending_hits, 0
        if not pending:
            return
        with self._handle.alloc_lock:
            self._cells[_C_HITS] += pending

    # ------------------------------------------------------------------
    # Vars + roots directory (seqlock over a JSON region)
    # ------------------------------------------------------------------
    def _read_directory(self) -> dict:
        cells = self._cells
        for _ in range(1000):
            before = cells[_C_DIR_VERSION]
            if before & 1:
                continue  # writer mid-rewrite
            length = int(cells[_C_DIR_LEN])
            data = bytes(self._dir_buf[:length])
            if cells[_C_DIR_VERSION] == before:
                return json.loads(data) if data else {"vars": [], "roots": {}}
        # Pathological contention: serialize with the writers instead
        # of spinning forever.
        with self._handle.meta_lock:
            length = int(cells[_C_DIR_LEN])
            data = bytes(self._dir_buf[:length])
        return json.loads(data) if data else {"vars": [], "roots": {}}

    def _write_directory(self, directory: dict) -> None:
        """Rewrite the JSON region; caller holds ``meta_lock`` (or is
        the creating process before the handle escapes)."""
        data = json.dumps(directory, sort_keys=True).encode("utf-8")
        if len(data) > self._dir_bytes:
            raise SharedStoreFull(
                f"directory needs {len(data)} bytes, region holds "
                f"{self._dir_bytes}"
            )
        cells = self._cells
        cells[_C_DIR_VERSION] += 1  # odd: readers back off
        self._dir_buf[: len(data)] = data
        cells[_C_DIR_LEN] = len(data)
        cells[_C_DIR_VERSION] += 1  # even: readers trust again

    def ensure_var(self, name: str) -> int:
        """Level of variable ``name``, declaring it (appended at the
        bottom of the global order) if new.  Globally consistent:
        declaration is serialized under the meta lock, so every process
        agrees on every variable's level forever."""
        cached = self._var_index.get(name)
        if cached is not None:
            return cached
        names = self._read_directory()["vars"]
        if name not in names:
            with self._handle.meta_lock:
                directory = self._read_directory()
                names = directory["vars"]
                if name not in names:
                    names.append(name)
                    self._write_directory(directory)
        self._var_index = {var: level for level, var in enumerate(names)}
        return self._var_index[name]

    def var_names(self) -> tuple[str, ...]:
        """The global variable order (refreshed from shared memory)."""
        names = self._read_directory()["vars"]
        self._var_index = {var: level for level, var in enumerate(names)}
        return tuple(names)

    def publish_roots(self, roots: Mapping[str, int]) -> None:
        """Merge ``roots`` (key -> edge) into the shared directory."""
        with self._handle.meta_lock:
            directory = self._read_directory()
            directory["roots"].update(
                {str(key): int(edge) for key, edge in roots.items()}
            )
            self._write_directory(directory)

    def roots(self) -> dict[str, int]:
        """The shared root directory (key -> edge), a snapshot."""
        return {
            str(key): int(edge)
            for key, edge in self._read_directory()["roots"].items()
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this view.  Idempotent."""
        if self._closed:
            return
        with contextlib.suppress(Exception):
            self._flush_hits()
        self._closed = True
        for view in (
            self.levels,
            self.highs,
            self.lows,
            self._buckets,
            self._dir_buf,
            self._cells,
        ):
            if view is not None:
                view.release()
        self.levels = self.highs = self.lows = None
        self._buckets = self._dir_buf = self._cells = None
        self._block.close()

    def unlink(self) -> None:
        """Destroy the block (owner only)."""
        self.close()
        if self._owner:
            with contextlib.suppress(Exception):
                resource_tracker.register(
                    _tracked_name(self._block), "shared_memory"
                )
            self._block.unlink()


# ----------------------------------------------------------------------
# Worker-process attachment (multiprocessing pool initializer seam)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerArenaSpec:
    """What a pool worker should attach: a read-only arena snapshot
    (by block name), a writable shared store (by handle), either, or
    neither.  Travels through pool ``initargs`` like the bare arena
    name always has."""

    arena: "str | BddArena | None" = None
    store: "SharedStoreHandle | SharedNodeStore | None" = None


_worker_arena: BddArena | None = None
_worker_store: SharedNodeStore | None = None


def attach_worker_arena(
    name: "str | BddArena | WorkerArenaSpec | None",
    *,
    close_previous: bool = True,
) -> None:
    """Attach this process to the arena named ``name`` (pool
    initializers call this once per worker).  A failed attach — the
    server already unlinked, permissions, a torn block — leaves the
    worker arena-less rather than dead: every consumer falls back to
    building from scratch.

    Passing an existing :class:`BddArena` installs that view directly —
    the publishing server does this so its own serial jobs share the
    snapshot without a second mapping.  A :class:`WorkerArenaSpec`
    attaches its arena (same semantics) *and* its shared store (best
    effort too: a failed store attach leaves :func:`current_store`
    empty, and every consumer builds privately).  ``None`` detaches
    both (closing previously attached views; an installed owner view is
    closed too, which its later ``unlink`` tolerates).

    ``close_previous=False`` swaps without closing the outgoing views —
    the serve layer's snapshot *refresh* uses it so an executor thread
    mid-verify on the old arena never reads a released memoryview; the
    retired view's owner stays responsible for its eventual close.  A
    previously installed object that is being re-installed is never
    closed, regardless.
    """
    global _worker_arena, _worker_store
    previous, _worker_arena = _worker_arena, None
    previous_store, _worker_store = _worker_store, None
    if name is not None:
        store_handle: "SharedStoreHandle | SharedNodeStore | None" = None
        if isinstance(name, WorkerArenaSpec):
            store_handle = name.store
            name = name.arena
        if isinstance(store_handle, SharedNodeStore):
            # The owning process installs its own view directly (no
            # second mapping); its later unlink tolerates a close.
            _worker_store = store_handle
        elif store_handle is not None:
            try:
                _worker_store = SharedNodeStore.attach(store_handle)
            except Exception:  # noqa: BLE001 - degraded beats dead
                _worker_store = None
        if isinstance(name, BddArena):
            _worker_arena = name
        elif name is not None:
            try:
                inject_fault("arena.attach", name)
                _worker_arena = BddArena.attach(name)
            except Exception:  # noqa: BLE001 - degraded beats dead
                _worker_arena = None
    if close_previous:
        if previous is not None and previous is not _worker_arena:
            with contextlib.suppress(Exception):
                previous.close()
        if previous_store is not None and previous_store is not _worker_store:
            with contextlib.suppress(Exception):
                previous_store.close()


def current_arena() -> BddArena | None:
    """The arena this process attached to, if any."""
    return _worker_arena


def current_store() -> SharedNodeStore | None:
    """The writable shared store this process attached to, if any."""
    return _worker_store
