"""Generalized cofactors on BDDs: ``restrict`` and ``constrain``.

The BDS-MAJ paper (Section III.C, Equation 3) seeds the majority
decomposition with the generalized cofactors ``H = F|Fa`` and
``W = F|Fa'``, citing Coudert/Madre's *restrict* [17] and *constrain*
[18] operators.  Both operators compute a function ``g`` such that

    f AND c  <=  g  <=  f OR NOT c

i.e. ``g`` agrees with ``f`` everywhere ``c`` holds and is free
(chosen to shrink the BDD) elsewhere.  That interval property is exactly
what Theorem 3.3 needs and is property-tested in the suite.
"""

from __future__ import annotations

from .manager import BDD, BDDError


class CareSetError(BDDError):
    """Raised when a generalized cofactor is taken w.r.t. constant FALSE."""


def constrain(mgr: BDD, f: int, c: int) -> int:
    """Coudert/Madre *constrain* (a.k.a. the image-preserving generalized
    cofactor) of ``f`` w.r.t. care-set ``c``."""
    if c == mgr.ZERO:
        raise CareSetError("constrain w.r.t. the empty care set is undefined")

    cache: dict[tuple[int, int], int] = {}

    def walk(f_edge: int, c_edge: int) -> int:
        if c_edge == mgr.ONE or mgr.is_constant(f_edge):
            return f_edge
        if f_edge == c_edge:
            return mgr.ONE
        if f_edge == c_edge ^ 1:
            return mgr.ZERO
        key = (f_edge, c_edge)
        result = cache.get(key)
        if result is None:
            level = min(mgr.level_of_edge(f_edge), mgr.level_of_edge(c_edge))
            f1, f0 = mgr._cofactors(f_edge, level)
            c1, c0 = mgr._cofactors(c_edge, level)
            if c1 == mgr.ZERO:
                result = walk(f0, c0)
            elif c0 == mgr.ZERO:
                result = walk(f1, c1)
            else:
                result = mgr._mk(level, walk(f1, c1), walk(f0, c0))  # bdslint: disable=ENG002 -- sanctioned friend module: constrain rebuilds nodes through the manager's hash-consing entry point
            cache[key] = result
        return result

    return walk(f, c)


def restrict(mgr: BDD, f: int, c: int) -> int:
    """Coudert/Madre *restrict* (sibling-substitution) generalized
    cofactor of ``f`` w.r.t. care-set ``c``.

    Compared with :func:`constrain`, restrict existentially quantifies
    care-set variables that ``f`` does not depend on, which keeps the
    result's support within the support of ``f``.
    """
    if c == mgr.ZERO:
        raise CareSetError("restrict w.r.t. the empty care set is undefined")

    cache: dict[tuple[int, int], int] = {}

    def walk(f_edge: int, c_edge: int) -> int:
        if c_edge == mgr.ONE or mgr.is_constant(f_edge):
            return f_edge
        if f_edge == c_edge:
            return mgr.ONE
        if f_edge == c_edge ^ 1:
            return mgr.ZERO
        key = (f_edge, c_edge)
        result = cache.get(key)
        if result is None:
            f_level = mgr.level_of_edge(f_edge)
            c_level = mgr.level_of_edge(c_edge)
            if c_level < f_level:
                # The care set constrains a variable f does not test at
                # this point: drop it by existential quantification.
                c1, c0 = mgr._cofactors(c_edge, c_level)
                result = walk(f_edge, mgr.or_(c1, c0))
            else:
                level = f_level
                f1, f0 = mgr._cofactors(f_edge, level)
                c1, c0 = mgr._cofactors(c_edge, level)
                if c1 == mgr.ZERO:
                    result = walk(f0, c0)
                elif c0 == mgr.ZERO:
                    result = walk(f1, c1)
                else:
                    result = mgr._mk(level, walk(f1, c1), walk(f0, c0))  # bdslint: disable=ENG002 -- sanctioned friend module: restrict rebuilds nodes through the manager's hash-consing entry point
            cache[key] = result
        return result

    return walk(f, c)


def generalized_cofactor(mgr: BDD, f: int, c: int, method: str = "restrict") -> int:
    """Dispatch helper used by the majority construction (Equation 3)."""
    if method == "restrict":
        return restrict(mgr, f, c)
    if method == "constrain":
        return constrain(mgr, f, c)
    raise BDDError(f"unknown generalized cofactor method {method!r}")
