"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the central substrate of the BDS-MAJ reproduction.  The design
follows the classic Brace/Rudell/Bryant BDD package (DAC 1990, the
paper's reference [19]):

* nodes live in a shared store and are identified by integer indices;
* an *edge* (the public handle for a Boolean function) is an integer
  ``(node_index << 1) | complement_bit``;
* complement attributes are allowed only on 0-edges (the paper's
  canonical-form condition (iii) in Section II.B), which makes the
  representation canonical: two functions are equal iff their edge
  handles are equal;
* operators are implemented by specialized apply kernels (``and_``,
  ``or_``, ``xor``) plus a memoized generic ``ite``.

The node store is *mutable*, in the style of the C packages:

* the unique table is split into per-level subtables, so
  :meth:`BDD.swap_adjacent` can exchange two adjacent variables by
  local node surgery in O(nodes at the two levels) — the building block
  of in-place Rudell sifting (:meth:`BDD.sift`);
* per-node reference counts of DAG parents plus a free-list let the
  swap free nodes that die during the surgery and recycle their slots;
* :meth:`BDD.gc` is a mark-and-sweep collector over caller-declared
  roots, compacting the subtables so :meth:`BDD.live_nodes` tracks the
  live size (while :meth:`BDD.num_nodes` keeps counting allocations).

The terminal node has index 0 and represents constant TRUE; its
complemented edge represents constant FALSE.

Variables are identified by *level* (position in the global variable
order, 0 = topmost).  Names are kept in a side table so that networks
and tests can speak in terms of signal names; a level swap exchanges
the names, never the node indices, so edge handles held by callers stay
valid across reordering.
"""

from __future__ import annotations

import ast
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .arena import SharedNodeStore

#: Level assigned to the terminal node; deeper than any real variable.
TERMINAL_LEVEL = 1 << 30

#: Level sentinel marking a freed (recyclable) node-store slot.
_FREE_LEVEL = -1

#: Default bound on the number of memoized operation results per manager.
DEFAULT_CACHE_CAPACITY = 1 << 18

#: Default growth bound for :meth:`BDD.sift`: a sifting walk aborts in
#: one direction once the live size exceeds this multiple of the size
#: the variable started from.
DEFAULT_MAX_GROWTH = 4.0

#: Default bound on converge-to-fixpoint sifting passes
#: (:meth:`BDD.sift_converge`).
DEFAULT_MAX_PASSES = 8

#: Default live-node count that arms the first growth-triggered reorder
#: (:meth:`BDD.enable_dynamic_reordering`).  Modelled on CUDD's "first
#: reordering" trigger, scaled down to this package's workloads.
DEFAULT_REORDER_THRESHOLD = 512

# Operation tags for the unified cache keys.  Small ints keep the key
# tuples compact and hash deterministically (no string hashing, so the
# cache behaves identically across processes regardless of
# PYTHONHASHSEED — a requirement of the deterministic batch service).
_OP_ITE = 0
_OP_COFACTOR = 1
_OP_EXISTS = 2
_OP_AND = 3
_OP_XOR = 4


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variable, bad edge...)."""


#: Eviction policies :class:`OperationCache` understands.
CACHE_POLICIES = ("fifo", "lru", "2random")

_MASK64 = (1 << 64) - 1


class OperationCache:
    """Size-bounded memo table shared by every BDD operator.

    One keyed dict serves the apply kernels, ``ite``, ``cofactor`` and
    ``exists``; entries are ``(op_tag, operands...) -> result_edge``.
    When the bound is reached an entry is evicted.  Three policies are
    supported, all fully deterministic for a given operation sequence
    (a requirement of the byte-identical batch reports):

    * ``"fifo"`` (default) — oldest *inserted* entry goes first.  FIFO
      never reorders entries, so it is the safest baseline and the one
      all published counters were measured with.
    * ``"lru"`` — a cache hit refreshes the entry's recency, so the
      oldest *used* entry goes first.
    * ``"2random"`` — power-of-two-choices eviction: a private xorshift
      PRNG (fixed seed, so runs are reproducible) draws two candidate
      entries and the one touched longest ago is evicted.  Approximates
      LRU's hit rate without its per-hit dict churn.
    """

    __slots__ = (
        "capacity",
        "policy",
        "hits",
        "misses",
        "evictions",
        "_data",
        "_keys",
        "_pos",
        "_last",
        "_tick",
        "_rng",
    )

    #: Fixed xorshift64 seed for the ``2random`` candidate draws.
    _RNG_SEED = 0x9E3779B97F4A7C15

    def __init__(
        self, capacity: int = DEFAULT_CACHE_CAPACITY, policy: str = "fifo"
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r} (known: {CACHE_POLICIES})"
            )
        self.capacity = capacity
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict[tuple, int] = {}
        # 2random bookkeeping: an array of keys (for O(1) random picks
        # via swap-remove), each key's array position and last-use tick.
        self._keys: list[tuple] = []
        self._pos: dict[tuple, int] = {}
        self._last: dict[tuple, int] = {}
        self._tick = 0
        self._rng = self._RNG_SEED

    def _rand(self, bound: int) -> int:
        x = self._rng
        x = (x ^ (x << 13)) & _MASK64
        x ^= x >> 7
        x = (x ^ (x << 17)) & _MASK64
        self._rng = x
        return x % bound

    def get(self, key: tuple) -> int | None:
        result = self._data.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.policy == "lru":
                # Refresh recency: move the entry to the back of the
                # insertion order, which `put` evicts from the front of.
                del self._data[key]
                self._data[key] = result
            elif self.policy == "2random":
                self._tick += 1
                self._last[key] = self._tick
        return result

    def put(self, key: tuple, value: int) -> None:
        data = self._data
        if self.policy == "2random":
            if key not in data:
                if len(data) >= self.capacity:
                    self._evict_2random()
                self._pos[key] = len(self._keys)
                self._keys.append(key)
            self._tick += 1
            self._last[key] = self._tick
            data[key] = value
            return
        if key not in data and len(data) >= self.capacity:
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def _evict_2random(self) -> None:
        keys = self._keys
        count = len(keys)
        first = keys[self._rand(count)]
        second = keys[self._rand(count)]
        last = self._last
        victim = first if last[first] <= last[second] else second
        # Swap-remove the victim from the key array.
        position = self._pos[victim]
        tail = keys[-1]
        keys[position] = tail
        self._pos[tail] = position
        keys.pop()
        del self._pos[victim]
        del self._last[victim]
        del self._data[victim]
        self.evictions += 1

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._data.clear()
        self._keys.clear()
        self._pos.clear()
        self._last.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int | float]:
        result = combine_cache_stats(
            [{"hits": self.hits, "misses": self.misses, "evictions": self.evictions}]
        )
        result["entries"] = len(self._data)
        result["capacity"] = self.capacity
        result["policy"] = self.policy
        return result


def combine_cache_stats(
    stats: Iterable[Mapping[str, int | float]],
) -> dict[str, int | float]:
    """Sum hits/misses/evictions over ``stats`` dicts and derive the
    hit rate — the one place that aggregation rule lives (the trace,
    batch and table layers all report through it)."""
    hits = misses = evictions = 0
    for entry in stats:
        hits += int(entry.get("hits", 0))
        misses += int(entry.get("misses", 0))
        evictions += int(entry.get("evictions", 0))
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": evictions,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


@dataclass(frozen=True)
class SiftResult:
    """Outcome of an in-place sifting run (:meth:`BDD.sift`,
    :meth:`BDD.sift_converge`, :meth:`BDD.sift_groups`)."""

    #: Live nodes (incl. terminal) when the run started, post-GC.
    initial_size: int
    #: Live nodes when the run finished.
    final_size: int
    #: Adjacent-level swaps performed (walks plus backtracking).
    swaps: int
    #: True when the run left the variable order different from the
    #: one it started with.
    changed: bool
    #: Sifting passes executed (1 for a plain :meth:`BDD.sift` pass;
    #: :meth:`BDD.sift_converge` counts every pass it ran).
    passes: int = 1


class BDD:
    """A reduced ordered BDD manager with complemented 0-edges.

    Typical use::

        mgr = BDD(["a", "b", "c"])
        a, b, c = (mgr.var(n) for n in "abc")
        f = mgr.or_(mgr.and_(a, b), mgr.and_(c, mgr.xor(a, b)))
        mgr.eval(f, {"a": 1, "b": 0, "c": 1})

    Edges returned by this class are plain ``int`` handles; they are only
    meaningful together with the manager that produced them.  Reordering
    (:meth:`sift`, :meth:`swap_adjacent`) preserves every edge's
    function; :meth:`gc` invalidates edges not reachable from its roots.
    """

    #: Edge handle of constant TRUE.
    ONE = 0
    #: Edge handle of constant FALSE.
    ZERO = 1

    def __init__(
        self,
        var_names: Iterable[str] = (),
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        cache_policy: str = "fifo",
        store: "SharedNodeStore | None" = None,
    ) -> None:
        # Node store (parallel arrays, index = node id).  Node 0 is the
        # terminal; its high/low entries are never read.  `_ref` counts
        # DAG parents only — external handles are pinned explicitly by
        # the operations that free nodes (sift) or declared as roots
        # (gc).  Freed slots carry _FREE_LEVEL and sit on `_free` until
        # `_mk` recycles them.
        #
        # With ``store=`` the manager is a *view over a shared unique
        # table* (:class:`repro.bdd.arena.SharedNodeStore`): the three
        # columns alias the store's shared-memory arrays, `_mk` goes
        # through the store's cross-process find-or-create, and the
        # append-only contract takes over — no gc, no reordering, no
        # reference counts.  Variable levels are the store's *global*
        # arrival-order levels, so edges are meaningful to every
        # store-backed manager in every attached process.  The
        # operation cache stays private: store indices are stable
        # forever (nothing is freed or moved), so memoized entries
        # never go stale.
        self._store = store
        if store is not None:
            self._level = store.levels
            self._high = store.highs
            self._low = store.lows
            self._ref: list[int] = []
            self._free: list[int] = []
            self._created = 0
            self._subtables: list[dict[tuple[int, int], int]] = []
            self._cache = OperationCache(cache_capacity, cache_policy)
            self._op_overlay: dict[tuple, int] | None = None
            self._protected: dict[int, int] = {}
            self._reorder_threshold: int | None = None
            self._kernel_depth = 0
            self._reorderings = 0
            self._names: list[str] = []
            self._level_by_name: dict[str, int] = {}
            self._sync_store_vars()
            for name in var_names:
                if name not in self._level_by_name:
                    self.add_var(name)
            return
        self._level = [TERMINAL_LEVEL]
        self._high = [0]
        self._low = [0]
        self._ref = [0]
        self._free = []
        self._created = 1
        # Unique table, split per level so a level swap touches exactly
        # two subtables.  Keys are (high_edge, low_edge).
        self._subtables = []
        self._cache = OperationCache(cache_capacity, cache_policy)
        # Per-top-level-call memo overlay for ite (see the comment in
        # :meth:`ite`): None outside a call, a dict inside one.
        self._op_overlay: dict[tuple, int] | None = None
        # Dynamic (growth-triggered) reordering state: the registry of
        # externally held edges that must survive an automatic sift
        # (edge -> protect count), the live-node trigger (None while
        # dynamic reordering is disabled), a kernel-depth guard so a
        # reorder only ever fires at the entry of an *outermost* apply
        # call, and a counter of reorders performed.
        self._protected: dict[int, int] = {}
        self._reorder_threshold: int | None = None
        self._kernel_depth = 0
        self._reorderings = 0
        self._names: list[str] = []
        self._level_by_name: dict[str, int] = {}
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Operation-cache introspection
    # ------------------------------------------------------------------
    @property
    def op_cache(self) -> OperationCache:
        """The unified operation cache (all operators share it)."""
        return self._cache

    def cache_stats(self) -> dict[str, int | float]:
        """Hit/miss/eviction counters and occupancy of the op cache."""
        return self._cache.stats()

    def clear_caches(self) -> None:
        """Drop memoized operation results (the unique table stays)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def _sync_store_vars(self) -> None:
        """Mirror the shared store's global variable table locally, so
        levels, names and order agree with every other attached
        manager (store mode only)."""
        names = self._store.var_names()
        self._names = list(names)
        self._level_by_name = {var: level for level, var in enumerate(names)}

    def _require_private(self, operation: str) -> None:
        """Store-backed managers are append-only views: anything that
        frees, moves or renumbers nodes is private-manager-only."""
        if self._store is not None:
            raise BDDError(
                f"{operation} is not available on a shared-store-backed "
                "manager (the store is append-only and never reordered)"
            )

    def add_var(self, name: str) -> int:
        """Append variable ``name`` at the bottom of the order; return its level.

        On a store-backed manager the declaration goes through the
        store's globally consistent table: the returned level is the
        variable's *global* arrival-order level, and variables declared
        by other attached managers become visible here as a side
        effect."""
        if name in self._level_by_name:
            raise BDDError(f"variable {name!r} already declared")
        if self._store is not None:
            self._store.ensure_var(name)
            self._sync_store_vars()
            return self._level_by_name[name]
        level = len(self._names)
        self._names.append(name)
        self._level_by_name[name] = level
        self._subtables.append({})
        return level

    @property
    def var_names(self) -> tuple[str, ...]:
        """Variable names in order (index = level)."""
        return tuple(self._names)

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def level_of(self, name: str) -> int:
        try:
            return self._level_by_name[name]
        except KeyError:
            if self._store is not None:
                # Another attached manager may have declared it since
                # our last sync.
                self._sync_store_vars()
                if name in self._level_by_name:
                    return self._level_by_name[name]
            raise BDDError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        if self._store is not None and level >= len(self._names):
            self._sync_store_vars()
        return self._names[level]

    def var(self, name: str) -> int:
        """Edge for the positive literal of variable ``name``."""
        return self.var_at(self.level_of(name))

    def var_at(self, level: int) -> int:
        """Edge for the positive literal of the variable at ``level``."""
        if self._store is not None and level >= len(self._names):
            self._sync_store_vars()
        if not 0 <= level < len(self._names):
            raise BDDError(f"no variable at level {level}")
        return self._mk(level, self.ONE, self.ZERO)

    # ------------------------------------------------------------------
    # Node level / structure accessors
    # ------------------------------------------------------------------
    @staticmethod
    def node_index(edge: int) -> int:
        """Node id referenced by ``edge`` (complement bit stripped)."""
        return edge >> 1

    @staticmethod
    def is_complemented(edge: int) -> bool:
        return bool(edge & 1)

    @staticmethod
    def regular(edge: int) -> int:
        """``edge`` with the complement attribute cleared."""
        return edge & ~1

    def is_constant(self, edge: int) -> bool:
        return edge >> 1 == 0

    def level_of_edge(self, edge: int) -> int:
        """Level of the node referenced by ``edge`` (terminal = huge)."""
        return self._level[edge >> 1]

    def top_var_name(self, edge: int) -> str:
        """Name of the top variable of ``edge`` (must not be constant)."""
        if self.is_constant(edge):
            raise BDDError("constant edge has no top variable")
        return self._names[self._level[edge >> 1]]

    def node_fields(self, index: int) -> tuple[int, int, int]:
        """``(level, high_edge, low_edge)`` of node ``index``."""
        return self._level[index], self._high[index], self._low[index]

    def num_nodes(self) -> int:
        """Total nodes ever *created* in this manager (incl. terminal).

        A monotone allocation counter: garbage collection and slot
        recycling never decrease it.  Use :meth:`live_nodes` for the
        current size of the store (the :class:`BddSizeExceeded
        <repro.network.BddSizeExceeded>` guards do).

        Store-backed managers report the *shared* store's count — every
        attached process' allocations, not just this manager's.
        """
        if self._store is not None:
            return self._store.count
        return self._created

    def live_nodes(self) -> int:
        """Nodes currently allocated (incl. terminal): created minus
        freed by :meth:`gc` or reordering.  Store-backed managers
        report the shared store's (never-decreasing) count."""
        if self._store is not None:
            return self._store.count
        return len(self._level) - len(self._free)

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, high: int, low: int) -> int:
        """Find-or-create the node ``(level, high, low)`` keeping the
        canonical form: no redundant node, high edge always regular."""
        if high == low:
            return high
        negated = high & 1
        if negated:
            high ^= 1
            low ^= 1
        if self._store is not None:
            # Cross-process find-or-create; canonicalization above is
            # identical to the private path, so the same function maps
            # to the same shared node from every attached manager.
            edge = self._store.find_or_create(level, high, low) << 1
            return edge ^ 1 if negated else edge
        table = self._subtables[level]
        key = (high, low)
        index = table.get(key)
        if index is None:
            free = self._free
            if free:
                index = free.pop()
                self._level[index] = level
                self._high[index] = high
                self._low[index] = low
            else:
                index = len(self._level)
                self._level.append(level)
                self._high.append(high)
                self._low.append(low)
                self._ref.append(0)
            self._ref[high >> 1] += 1
            self._ref[low >> 1] += 1
            table[key] = index
            self._created += 1
        edge = index << 1
        return edge ^ 1 if negated else edge

    def _cofactors(self, edge: int, level: int) -> tuple[int, int]:
        """Shannon cofactors of ``edge`` w.r.t. the variable at ``level``.

        ``level`` must be <= the edge's top level; if the edge does not
        depend on that variable both cofactors are the edge itself.
        """
        index = edge >> 1
        if self._level[index] != level:
            return edge, edge
        high = self._high[index]
        low = self._low[index]
        if edge & 1:
            return high ^ 1, low ^ 1
        return high, low

    # ------------------------------------------------------------------
    # Reference counting, garbage collection
    # ------------------------------------------------------------------
    def _deref(self, edge: int) -> None:
        """Drop one DAG-parent reference from ``edge``'s node, freeing
        it (and cascading into its children) when the count hits zero.
        A no-op in store mode: shared nodes are never freed."""
        if self._store is not None:
            return
        ref = self._ref
        levels = self._level
        highs = self._high
        lows = self._low
        free = self._free
        freed = False
        stack = [edge >> 1]
        while stack:
            index = stack.pop()
            if index == 0:
                continue
            ref[index] -= 1
            if ref[index] > 0:
                continue
            high = highs[index]
            low = lows[index]
            del self._subtables[levels[index]][(high, low)]
            levels[index] = _FREE_LEVEL
            free.append(index)
            freed = True
            stack.append(high >> 1)
            stack.append(low >> 1)
        if freed and len(self._cache):
            # Freed slots may be recycled by _mk; memoized results
            # referencing them by index would go stale.
            self._cache.clear()

    def pin(self, edge: int) -> None:
        """Protect ``edge``'s node from being freed by level swaps.

        :meth:`swap_adjacent` frees nodes whose last DAG parent is
        rewritten away; an external handle is invisible to the
        reference counts, so callers driving raw swaps must pin the
        edges they hold (:meth:`sift` pins its roots itself).  Pins are
        dropped by :meth:`gc`, which re-derives exact counts.  A no-op
        in store mode (nothing is ever freed, so nothing needs pins)."""
        if self._store is not None:
            return
        if edge >> 1:
            self._ref[edge >> 1] += 1

    def unpin(self, edge: int) -> None:
        """Release a :meth:`pin`.  Never frees the node — an unpinned,
        unparented node stays live (like a fresh root) until gc."""
        if self._store is not None:
            return
        if edge >> 1:
            self._ref[edge >> 1] -= 1

    # ------------------------------------------------------------------
    # Dynamic (growth-triggered) reordering
    # ------------------------------------------------------------------
    def protect(self, edge: int) -> int:
        """Register ``edge`` as a root every automatic reorder preserves.

        With dynamic reordering enabled (:meth:`enable_dynamic_reordering`)
        an apply kernel may sift — and therefore :meth:`gc` — the store
        at its entry point.  The sift's roots are the protected edges
        plus the kernel's own operands, so a builder must protect every
        edge it holds *across* kernel calls (and :meth:`unprotect` it
        when the handle dies).  Protection nests: each call adds one
        count.  Returns ``edge`` so builders can protect inline."""
        self._protected[edge] = self._protected.get(edge, 0) + 1
        return edge

    def unprotect(self, edge: int) -> None:
        """Drop one :meth:`protect` count from ``edge``."""
        count = self._protected.get(edge, 0)
        if count <= 1:
            if count == 0:
                raise BDDError(f"edge {edge} is not protected")
            del self._protected[edge]
        else:
            self._protected[edge] = count - 1

    def protected_edges(self) -> list[int]:
        """The currently protected edges (sorted, each listed once)."""
        return sorted(self._protected)

    def clear_protected(self) -> None:
        """Empty the protection registry (builders call this once their
        construction is complete and ordinary root discipline resumes)."""
        self._protected.clear()

    def enable_dynamic_reordering(
        self, threshold: int = DEFAULT_REORDER_THRESHOLD
    ) -> None:
        """Arm growth-triggered reordering, CUDD-style.

        Once :meth:`live_nodes` exceeds ``threshold`` at the entry of an
        outermost apply call (``and_``/``xor``/``ite`` and everything
        built on them), the manager sifts the protected edges plus the
        call's operands, then re-arms the trigger at double the size the
        store settled at (the doubling schedule keeps reorder cost
        amortized against construction cost).  **Contract:** while
        enabled, callers must :meth:`protect` every edge they hold
        across kernel calls — the sift garbage-collects everything else.
        """
        self._require_private("dynamic reordering")
        if threshold < 1:
            raise BDDError("reorder threshold must be positive")
        self._reorder_threshold = threshold

    def disable_dynamic_reordering(self) -> None:
        """Disarm growth-triggered reordering (the protection registry
        is kept; :meth:`clear_protected` drops it)."""
        self._reorder_threshold = None

    @property
    def reorder_threshold(self) -> int | None:
        """Current live-node trigger (None = dynamic reordering off)."""
        return self._reorder_threshold

    @property
    def reorderings(self) -> int:
        """Growth-triggered reorders performed by this manager."""
        return self._reorderings

    def note_reordering(self) -> None:
        """Count an externally driven growth-triggered reorder — the
        construction-rescue path (:func:`repro.network.bdds.supernode_bdd`)
        sifts via the public API, which must still show up in
        :attr:`reorderings` telemetry."""
        self._reorderings += 1

    def _maybe_reorder(self, operands: tuple[int, ...]) -> None:
        """Entry-point check of the apply kernels: sift when the store
        outgrew the trigger.  Only called at kernel depth 0, so no
        in-flight recursion holds unprotected intermediate edges."""
        threshold = self._reorder_threshold
        if threshold is None or self.live_nodes() <= threshold:
            return
        roots = list(self._protected)
        roots.extend(operands)
        self.sift(roots)
        self._reorderings += 1
        # Doubling schedule: re-arm at twice the settled size so each
        # reorder buys a construction phase proportional to the store.
        self._reorder_threshold = max(2 * threshold, 2 * self.live_nodes())

    def gc(self, roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep: free every node not reachable from ``roots``.

        Compacts the unique subtables, recycles the freed slots, resets
        reference counts to exact DAG-parent counts and clears the
        operation cache (whose entries may reference freed indices).
        Returns the number of nodes collected.

        **Every edge not reachable from ``roots`` is invalidated** —
        callers must re-derive any other handles they hold (variable
        edges are recreated on demand by :meth:`var`).  Edges in the
        :meth:`protect` registry are implicit roots: a manual gc can
        never leave the dynamic-reordering registry dangling.
        """
        self._require_private("gc")
        levels = self._level
        highs = self._high
        lows = self._low
        reachable = bytearray(len(levels))
        reachable[0] = 1
        stack = [edge >> 1 for edge in roots]
        stack.extend(edge >> 1 for edge in self._protected)
        while stack:
            index = stack.pop()
            if reachable[index]:
                continue
            reachable[index] = 1
            stack.append(highs[index] >> 1)
            stack.append(lows[index] >> 1)
        ref = self._ref
        free = self._free
        collected = 0
        for index in range(1, len(levels)):
            level = levels[index]
            if level == _FREE_LEVEL:
                continue
            if reachable[index]:
                ref[index] = 0
                continue
            del self._subtables[level][(highs[index], lows[index])]
            levels[index] = _FREE_LEVEL
            free.append(index)
            ref[index] = 0
            collected += 1
        for index in range(1, len(levels)):
            if levels[index] != _FREE_LEVEL:
                ref[highs[index] >> 1] += 1
                ref[lows[index] >> 1] += 1
        if collected and len(self._cache):
            self._cache.clear()
        return collected

    # ------------------------------------------------------------------
    # In-place reordering
    # ------------------------------------------------------------------
    def swap_adjacent(self, level: int) -> int:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Local node surgery in O(nodes at the two levels): nodes that do
        not depend on both variables migrate between the two subtables;
        nodes that do are rewritten *in place* (same index, so every
        edge handle keeps denoting the same Boolean function over the
        named variables).  Nodes of the lower level that die in the
        surgery are freed exactly, via the reference counts.  Returns
        :meth:`live_nodes` after the swap.
        """
        self._require_private("swap_adjacent")
        if not 0 <= level < len(self._names) - 1:
            raise BDDError(f"no adjacent variable pair at level {level}")
        if len(self._cache):
            # Cofactor/exists results are memoized *by level*, and this
            # swap changes which variable a level denotes — those
            # entries would silently answer for the wrong variable.
            # (Edge-keyed entries would survive — every node index
            # keeps its function — but one flush covers both, and a
            # sifting pass only pays it on the first swap.)
            self._cache.clear()
        upper, lower = level, level + 1
        levels = self._level
        highs = self._high
        lows = self._low
        ref = self._ref
        # Classify the upper level before touching anything: a node
        # whose children avoid the lower level just migrates ("mover");
        # one that depends on the lower variable is rewritten in place
        # ("stayer").  Grandchild cofactors are captured now, while the
        # level fields are still consistent.
        movers: list[tuple[tuple[int, int], int]] = []
        stayers: list[tuple[int, int, int, int, int, int, int]] = []
        for key, index in self._subtables[upper].items():
            f1, f0 = key
            if levels[f1 >> 1] == lower or levels[f0 >> 1] == lower:
                f11, f10 = self._cofactors(f1, lower)
                f01, f00 = self._cofactors(f0, lower)
                stayers.append((index, f1, f0, f11, f10, f01, f00))
            else:
                movers.append((key, index))
        # Lower-level nodes do not depend on the upper variable: they
        # keep their children and just move up one level.
        new_upper: dict[tuple[int, int], int] = {}
        for key, index in self._subtables[lower].items():
            levels[index] = upper
            new_upper[key] = index
        new_lower: dict[tuple[int, int], int] = {}
        for key, index in movers:
            levels[index] = lower
            new_lower[key] = index
        self._subtables[upper] = new_upper
        self._subtables[lower] = new_lower
        # Rewrite the stayers: f = v2·(v1·f11 + v1'·f01) + v2'·(v1·f10
        # + v1'·f00) after the swap.  The new high edge is regular
        # because f11/f10 come off a regular 1-edge, so the in-place
        # update cannot flip the node's polarity.
        for index, f1, f0, f11, f10, f01, f00 in stayers:
            high = self._mk(lower, f11, f01)
            low = self._mk(lower, f10, f00)
            ref[high >> 1] += 1
            ref[low >> 1] += 1
            highs[index] = high
            lows[index] = low
            new_upper[(high, low)] = index
            self._deref(f1)
            self._deref(f0)
        names = self._names
        names[upper], names[lower] = names[lower], names[upper]
        self._level_by_name[names[upper]] = upper
        self._level_by_name[names[lower]] = lower
        return self.live_nodes()

    def sift(
        self,
        roots: Sequence[int],
        max_growth: float | None = DEFAULT_MAX_GROWTH,
    ) -> SiftResult:
        """One greedy Rudell sifting pass, in place.

        Private managers only (store-backed managers never reorder).
        Starts with :meth:`gc` over ``roots`` (so the live size *is*
        the size of the functions being reordered — **edges not
        reachable from ``roots`` are invalidated**), then walks each
        variable — most populous level first — through every position
        of the order via adjacent swaps, recording the live size at
        each stop, and backtracks it to the best position seen.  A walk
        direction is abandoned early once the size exceeds
        ``max_growth`` times the size the variable started from
        (``None`` disables the abort).

        ``roots`` edges remain valid and keep denoting the same
        functions; only the variable order (and therefore the node
        population) changes.  :meth:`protect`-ed edges are implicitly
        pinned roots too.
        """
        pins = list(roots) + self.protected_edges()
        self.gc(pins)
        for edge in pins:
            self.pin(edge)
        try:
            return self._sift_pinned(max_growth)
        finally:
            for edge in pins:
                self.unpin(edge)

    def _sift_pinned(self, max_growth: float | None) -> SiftResult:
        count = len(self._names)
        initial = self.live_nodes()
        if count < 2:
            return SiftResult(initial, initial, 0, False)
        # Visit order: decreasing node population (ties keep the
        # current level order — `sorted` is stable).
        population = {
            name: len(self._subtables[level])
            for level, name in enumerate(self._names)
        }
        current_size = initial
        swaps = 0
        changed = False
        for name in sorted(self._names, key=lambda n: -population[n]):
            position = self._level_by_name[name]
            sizes = {position: current_size}
            limit = None if max_growth is None else max_growth * current_size
            pos = position
            while pos > 0:
                size = self.swap_adjacent(pos - 1)
                swaps += 1
                pos -= 1
                sizes[pos] = size
                if limit is not None and size > limit:
                    break
            while pos < count - 1:
                size = self.swap_adjacent(pos)
                swaps += 1
                pos += 1
                sizes[pos] = size
                if limit is not None and size > limit:
                    break
            # Best position seen; the starting position wins ties, then
            # the topmost candidate (the tie-break the rebuild-based
            # sifter used, so both produce identical orders).
            best_size, best_pos = sizes[position], position
            for candidate in sorted(sizes):
                if candidate != position and sizes[candidate] < best_size:
                    best_size, best_pos = sizes[candidate], candidate
            while pos > best_pos:
                self.swap_adjacent(pos - 1)
                swaps += 1
                pos -= 1
            while pos < best_pos:
                self.swap_adjacent(pos)
                swaps += 1
                pos += 1
            current_size = best_size
            if best_pos != position:
                changed = True
        return SiftResult(initial, current_size, swaps, changed)

    def sift_converge(
        self,
        roots: Sequence[int],
        max_passes: int = DEFAULT_MAX_PASSES,
        max_growth: float | None = DEFAULT_MAX_GROWTH,
    ) -> SiftResult:
        """Sift to a fixpoint: repeat :meth:`sift` passes until a pass
        yields no size gain, bounded by ``max_passes``.

        One greedy pass can unlock further gains (moving variable *a*
        may open a better position for *b* that the first pass already
        visited), so converging never produces a larger diagram than a
        single pass from the same starting order — each pass backtracks
        to the best position it saw.  Same root contract as
        :meth:`sift`: **edges not reachable from ``roots`` are
        invalidated** by the initial garbage collection.
        """
        if max_passes < 1:
            raise BDDError("max_passes must be positive")
        pins = list(roots) + self.protected_edges()
        self.gc(pins)
        for edge in pins:
            self.pin(edge)
        try:
            initial = self.live_nodes()
            swaps = 0
            changed = False
            passes = 0
            while passes < max_passes:
                result = self._sift_pinned(max_growth)
                passes += 1
                swaps += result.swaps
                changed = changed or result.changed
                if result.final_size >= result.initial_size:
                    break  # fixpoint: the pass yielded no gain
            return SiftResult(initial, self.live_nodes(), swaps, changed, passes)
        finally:
            for edge in pins:
                self.unpin(edge)

    # ------------------------------------------------------------------
    # Symmetric-variable detection and group sifting
    # ------------------------------------------------------------------
    def symmetric_pair(self, roots: Sequence[int], i: int, j: int) -> bool:
        """True when every function in ``roots`` is invariant under
        swapping the variables at levels ``i`` and ``j``.

        The classic cofactor test: ``f`` is symmetric in ``(x, y)`` iff
        ``f[x=1, y=0] == f[x=0, y=1]`` — an edge-handle comparison,
        thanks to canonicity.  Cofactor results are memoized in the
        shared operation cache, so scanning all pairs of a sift sweep
        reuses most of the work.
        """
        for root in roots:
            high = self.cofactor(self.cofactor(root, i, True), j, False)
            low = self.cofactor(self.cofactor(root, i, False), j, True)
            if high != low:
                return False
        return True

    def symmetry_groups(self, roots: int | Sequence[int]) -> list[list[str]]:
        """Partition the variables into symmetry groups of ``roots``.

        Two variables belong to one group when *every* root function is
        invariant under swapping them (checked pairwise with
        :meth:`symmetric_pair`; pairwise symmetry is transitive, so the
        union-find closure is exact).  Variables outside every root's
        support are mutually symmetric and form their own group.
        Returns the groups as name lists in current level order,
        top-down (singletons included), so the result is a full
        partition :meth:`sift_groups` can consume directly.
        """
        if isinstance(roots, int):
            roots = [roots]
        roots = list(roots)
        count = len(self._names)
        parent = list(range(count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in range(count):
            for j in range(i + 1, count):
                root_i, root_j = find(i), find(j)
                if root_i == root_j:
                    continue
                if self.symmetric_pair(roots, i, j):
                    parent[max(root_i, root_j)] = min(root_i, root_j)
        groups: dict[int, list[str]] = {}
        for level in range(count):
            groups.setdefault(find(level), []).append(self._names[level])
        return [groups[key] for key in sorted(groups)]

    def sift_groups(
        self,
        roots: Sequence[int],
        groups: Sequence[Sequence[str]] | None = None,
        max_growth: float | None = DEFAULT_MAX_GROWTH,
    ) -> SiftResult:
        """One Rudell pass over variable *blocks* instead of variables.

        ``groups`` partitions the variable names into blocks that move
        as contiguous units (default: the detected
        :meth:`symmetry_groups` of ``roots`` — symmetric variables gain
        nothing from relative reordering, so sifting them as one block
        searches a smaller, better-shaped neighborhood).  Names missing
        from ``groups`` sift as singleton blocks.  The pass first
        gathers each block contiguous (members keep their relative
        order, pulled up to the topmost member), then walks every block
        through every block position with best-position backtracking —
        block swaps are realized as ``width * width`` runs of
        :meth:`swap_adjacent` surgery.  Same root contract as
        :meth:`sift`.
        """
        roots = list(roots)
        if groups is None:
            detect_roots = [edge for edge in roots if edge >> 1]
            groups = (
                self.symmetry_groups(detect_roots)
                if detect_roots
                else [[name] for name in self._names]
            )
        blocks = self._normalize_groups(groups)
        pins = roots + self.protected_edges()
        self.gc(pins)
        for edge in pins:
            self.pin(edge)
        try:
            return self._sift_blocks_pinned(blocks, max_growth)
        finally:
            for edge in pins:
                self.unpin(edge)

    def _normalize_groups(
        self, groups: Sequence[Sequence[str]]
    ) -> list[tuple[str, ...]]:
        """Validate ``groups`` into a full partition of the variables:
        unknown or duplicated names raise; unmentioned names become
        singleton blocks.  Blocks are ordered by their topmost member."""
        seen: set[str] = set()
        blocks: list[tuple[str, ...]] = []
        for group in groups:
            members = tuple(group)
            if not members:
                continue
            for name in members:
                if name not in self._level_by_name:
                    raise BDDError(f"unknown variable {name!r} in group")
                if name in seen:
                    raise BDDError(f"variable {name!r} appears in two groups")
                seen.add(name)
            blocks.append(tuple(sorted(members, key=self._level_by_name.__getitem__)))
        blocks.extend((name,) for name in self._names if name not in seen)
        blocks.sort(key=lambda block: self._level_by_name[block[0]])
        return blocks

    def _gather_block(self, block: tuple[str, ...]) -> int:
        """Make ``block``'s members contiguous (relative order kept),
        pulled up to the topmost member.  Returns swaps performed."""
        swaps = 0
        anchor = self._level_by_name[block[0]]
        for offset, name in enumerate(block[1:], start=1):
            level = self._level_by_name[name]
            while level > anchor + offset:
                self.swap_adjacent(level - 1)
                swaps += 1
                level -= 1
        return swaps

    def _swap_adjacent_blocks(self, level: int, upper: int, lower: int) -> tuple[int, int]:
        """Exchange the adjacent variable blocks occupying levels
        ``[level, level+upper)`` and ``[level+upper, level+upper+lower)``
        (each block's internal order preserved).  Returns
        ``(live_nodes_after, swaps_performed)``."""
        size = self.live_nodes()
        swaps = 0
        for i in range(upper):
            # Bubble the current bottom variable of the upper block down
            # through the whole lower block.
            start = level + upper - 1 - i
            for step in range(lower):
                size = self.swap_adjacent(start + step)
            swaps += lower
        return size, swaps

    def _sift_blocks_pinned(
        self, blocks: list[tuple[str, ...]], max_growth: float | None
    ) -> SiftResult:
        initial = self.live_nodes()
        swaps = 0
        changed_order = tuple(self._names)
        for block in blocks:
            if len(block) > 1:
                swaps += self._gather_block(block)
        if len(blocks) < 2:
            final = self.live_nodes()
            return SiftResult(
                initial, final, swaps, tuple(self._names) != changed_order
            )
        # Visit order: decreasing total node population over the block's
        # levels (stable sort keeps current block order for ties).
        population = {
            block: sum(
                len(self._subtables[self._level_by_name[name]]) for name in block
            )
            for block in blocks
        }

        current_size = self.live_nodes()
        for block in sorted(blocks, key=lambda b: -population[b]):
            # Current top-down block order (blocks stay contiguous, and
            # each block's first member stays its topmost variable).
            order = sorted(blocks, key=lambda b: self._level_by_name[b[0]])
            position = order.index(block)
            widths = [len(b) for b in order]
            sizes = {position: current_size}
            limit = None if max_growth is None else max_growth * current_size
            pos = position
            while pos > 0:
                start = sum(widths[: pos - 1])
                size, done = self._swap_adjacent_blocks(
                    start, widths[pos - 1], widths[pos]
                )
                swaps += done
                order[pos - 1], order[pos] = order[pos], order[pos - 1]
                widths[pos - 1], widths[pos] = widths[pos], widths[pos - 1]
                pos -= 1
                sizes[pos] = size
                if limit is not None and size > limit:
                    break
            while pos < len(order) - 1:
                start = sum(widths[:pos])
                size, done = self._swap_adjacent_blocks(
                    start, widths[pos], widths[pos + 1]
                )
                swaps += done
                order[pos], order[pos + 1] = order[pos + 1], order[pos]
                widths[pos], widths[pos + 1] = widths[pos + 1], widths[pos]
                pos += 1
                sizes[pos] = size
                if limit is not None and size > limit:
                    break
            # Best block position seen; ties keep the starting position,
            # then prefer the topmost candidate (mirrors `sift`).
            best_size, best_pos = sizes[position], position
            for candidate in sorted(sizes):
                if candidate != position and sizes[candidate] < best_size:
                    best_size, best_pos = sizes[candidate], candidate
            while pos > best_pos:
                start = sum(widths[: pos - 1])
                _, done = self._swap_adjacent_blocks(
                    start, widths[pos - 1], widths[pos]
                )
                swaps += done
                order[pos - 1], order[pos] = order[pos], order[pos - 1]
                widths[pos - 1], widths[pos] = widths[pos], widths[pos - 1]
                pos -= 1
            while pos < best_pos:
                start = sum(widths[:pos])
                _, done = self._swap_adjacent_blocks(
                    start, widths[pos], widths[pos + 1]
                )
                swaps += done
                order[pos], order[pos + 1] = order[pos + 1], order[pos]
                widths[pos], widths[pos + 1] = widths[pos + 1], widths[pos]
                pos += 1
            current_size = best_size
        return SiftResult(
            initial,
            self.live_nodes(),
            swaps,
            tuple(self._names) != changed_order,
        )

    def check_invariants(self) -> None:
        """Verify store and canonical-form invariants; raises
        :class:`BDDError` on the first violation (tests and debugging —
        cost is O(live nodes))."""
        if self._store is not None:
            # The private subtable / refcount machinery doesn't exist
            # in store mode; shared-column canonicity is the store
            # tests' job.
            return
        levels = self._level
        seen = 0
        for level, table in enumerate(self._subtables):
            for (high, low), index in table.items():
                if levels[index] != level:
                    raise BDDError(f"node {index}: level field != subtable level")
                if self._high[index] != high or self._low[index] != low:
                    raise BDDError(f"node {index}: subtable key != node fields")
                if high & 1:
                    raise BDDError(f"node {index}: complemented high edge")
                if high == low:
                    raise BDDError(f"node {index}: redundant node")
                if levels[high >> 1] <= level or levels[low >> 1] <= level:
                    raise BDDError(f"node {index}: child above parent")
                seen += 1
        if seen != self.live_nodes() - 1:
            raise BDDError(
                f"subtables index {seen} nodes, store holds {self.live_nodes() - 1}"
            )
        parents = [0] * len(levels)
        for index in range(1, len(levels)):
            if levels[index] == _FREE_LEVEL:
                continue
            parents[self._high[index] >> 1] += 1
            parents[self._low[index] >> 1] += 1
        for index in range(1, len(levels)):
            if levels[index] != _FREE_LEVEL and self._ref[index] < parents[index]:
                raise BDDError(
                    f"node {index}: ref {self._ref[index]} < parents {parents[index]}"
                )

    # ------------------------------------------------------------------
    # Specialized apply kernels
    # ------------------------------------------------------------------
    def _and_terminal(self, f: int, g: int) -> int | None:
        if f == g:
            return f
        if f ^ g == 1:
            return self.ZERO
        if f == self.ONE:
            return g
        if g == self.ONE:
            return f
        if f == self.ZERO or g == self.ZERO:
            return self.ZERO
        return None

    def _and_lookup(self, f: int, g: int, local: dict[tuple[int, int], int]) -> int:
        result = self._and_terminal(f, g)
        if result is not None:
            return result
        if (g >> 1) < (f >> 1):
            f, g = g, f
        return local[(f, g)]

    def and_(self, f: int, g: int) -> int:
        """Conjunction, via a dedicated iterative apply kernel.

        Cheaper than routing through :meth:`ite`: AND needs no
        standard-triple normalization (operands are just ordered by
        node index so commuted calls share one ``_OP_AND`` cache
        entry), and the explicit stack makes the recursion depth
        independent of the variable count.
        """
        result = self._and_terminal(f, g)
        if result is not None:
            return result
        if self._reorder_threshold is not None and self._kernel_depth == 0:
            # Safe point of dynamic reordering: no apply recursion is in
            # flight, so the only live edges are the protected registry
            # plus this call's own operands.
            self._maybe_reorder((f, g))
        if (g >> 1) < (f >> 1):
            f, g = g, f
        levels = self._level
        cache = self._cache
        # `local` guarantees each distinct operand pair is expanded at
        # most once per top-level call, even when the shared cache is
        # too small for the working set (same role as ite's overlay).
        # None marks an in-flight pair; stack discipline guarantees it
        # resolves before any parent pair reduces.
        local: dict[tuple[int, int], int | None] = {}
        stack = [(f, g, False)]
        while stack:
            a, b, ready = stack.pop()
            key = (a, b)
            if not ready:
                if key in local:
                    continue
                cached = cache.get((_OP_AND, a, b))
                if cached is not None:
                    local[key] = cached
                    continue
                local[key] = None
                top = min(levels[a >> 1], levels[b >> 1])
                a1, a0 = self._cofactors(a, top)
                b1, b0 = self._cofactors(b, top)
                stack.append((a, b, True))
                for x, y in ((a1, b1), (a0, b0)):
                    if self._and_terminal(x, y) is None:
                        if (y >> 1) < (x >> 1):
                            x, y = y, x
                        if (x, y) not in local:
                            stack.append((x, y, False))
            else:
                top = min(levels[a >> 1], levels[b >> 1])
                a1, a0 = self._cofactors(a, top)
                b1, b0 = self._cofactors(b, top)
                result = self._mk(
                    top,
                    self._and_lookup(a1, b1, local),
                    self._and_lookup(a0, b0, local),
                )
                cache.put((_OP_AND, a, b), result)
                local[key] = result
        return local[(f, g)]

    def or_(self, f: int, g: int) -> int:
        """Disjunction — De Morgan over the AND kernel, so commuted and
        complemented calls all share the same ``_OP_AND`` cache entry."""
        return self.and_(f ^ 1, g ^ 1) ^ 1

    def _xor_terminal(self, f: int, g: int) -> int | None:
        if f == g:
            return self.ZERO
        if f ^ g == 1:
            return self.ONE
        if f == self.ZERO:
            return g
        if f == self.ONE:
            return g ^ 1
        if g == self.ZERO:
            return f
        if g == self.ONE:
            return f ^ 1
        return None

    def _xor_lookup(self, f: int, g: int, local: dict[tuple[int, int], int]) -> int:
        result = self._xor_terminal(f, g)
        if result is not None:
            return result
        negate = (f & 1) ^ (g & 1)
        f &= ~1
        g &= ~1
        if (g >> 1) < (f >> 1):
            f, g = g, f
        return local[(f, g)] ^ negate

    def xor(self, f: int, g: int) -> int:
        """Exclusive-or, via a dedicated iterative apply kernel.

        XOR tolerates complement on either operand (the result just
        flips), so the kernel canonicalizes every pair to two regular,
        index-ordered edges — XOR/XNOR of either operand order all hit
        one ``_OP_XOR`` cache entry.
        """
        result = self._xor_terminal(f, g)
        if result is not None:
            return result
        if self._reorder_threshold is not None and self._kernel_depth == 0:
            self._maybe_reorder((f, g))
        negate = (f & 1) ^ (g & 1)
        f &= ~1
        g &= ~1
        if (g >> 1) < (f >> 1):
            f, g = g, f
        levels = self._level
        cache = self._cache
        local: dict[tuple[int, int], int | None] = {}
        stack = [(f, g, False)]
        while stack:
            a, b, ready = stack.pop()
            key = (a, b)
            if not ready:
                if key in local:
                    continue
                cached = cache.get((_OP_XOR, a, b))
                if cached is not None:
                    local[key] = cached
                    continue
                local[key] = None
                top = min(levels[a >> 1], levels[b >> 1])
                a1, a0 = self._cofactors(a, top)
                b1, b0 = self._cofactors(b, top)
                stack.append((a, b, True))
                for x, y in ((a1, b1), (a0, b0)):
                    if self._xor_terminal(x, y) is None:
                        x &= ~1
                        y &= ~1
                        if (y >> 1) < (x >> 1):
                            x, y = y, x
                        if (x, y) not in local:
                            stack.append((x, y, False))
            else:
                top = min(levels[a >> 1], levels[b >> 1])
                a1, a0 = self._cofactors(a, top)
                b1, b0 = self._cofactors(b, top)
                result = self._mk(
                    top,
                    self._xor_lookup(a1, b1, local),
                    self._xor_lookup(a0, b0, local),
                )
                cache.put((_OP_XOR, a, b), result)
                local[key] = result
        return local[(f, g)] ^ negate

    def xnor(self, f: int, g: int) -> int:
        return self.xor(f, g) ^ 1

    def nand(self, f: int, g: int) -> int:
        return self.and_(f, g) ^ 1

    def nor(self, f: int, g: int) -> int:
        return self.or_(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        return self.or_(f ^ 1, g)

    # ------------------------------------------------------------------
    # ITE and derived operators
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + f'·h`` (the universal BDD operator)."""
        # Terminal and identity simplifications (Brace/Rudell/Bryant).
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if self._reorder_threshold is not None and self._kernel_depth == 0:
            # Dynamic-reorder safe point; the depth guard below keeps
            # recursive calls and two-operand dispatches from sifting
            # while this call holds intermediate edges.
            self._maybe_reorder((f, g, h))
            self._kernel_depth += 1
            try:
                return self.ite(f, g, h)
            finally:
                self._kernel_depth -= 1
        if g == f:
            g = self.ONE
        elif g == f ^ 1:
            g = self.ZERO
        if h == f:
            h = self.ZERO
        elif h == f ^ 1:
            h = self.ONE
        if g == self.ONE and h == self.ZERO:
            return f
        if g == self.ZERO and h == self.ONE:
            return f ^ 1
        if g == h:
            return g
        # Two-operand shapes go to the specialized kernels (their cache
        # entries, their terminal cases — no triple normalization).
        if g == self.ONE:
            return self.or_(f, h)
        if g == self.ZERO:
            return self.and_(f ^ 1, h)
        if h == self.ZERO:
            return self.and_(f, g)
        if h == self.ONE:
            return self.or_(f ^ 1, g)
        if h == g ^ 1:
            return self.xnor(f, g)
        # Canonicalize: predicate regular, then then-branch regular.
        if f & 1:
            f ^= 1
            g, h = h, g
        negate_out = False
        if g & 1:
            g ^= 1
            h ^= 1
            negate_out = True
        # Per-call overlay: even if the shared cache is smaller than
        # this call's working set and evicts subresults mid-recursion,
        # every distinct subtriple is still computed at most once per
        # top-level call (the old unbounded cache's guarantee).
        key = (_OP_ITE, f, g, h)
        local = self._op_overlay
        outermost = local is None
        if outermost:
            local = self._op_overlay = {}
        try:
            result = local.get(key)
            if result is None:
                cache = self._cache
                result = cache.get(key)
                if result is None:
                    levels = self._level
                    top = min(levels[f >> 1], levels[g >> 1], levels[h >> 1])
                    f1, f0 = self._cofactors(f, top)
                    g1, g0 = self._cofactors(g, top)
                    h1, h0 = self._cofactors(h, top)
                    then_edge = self.ite(f1, g1, h1)
                    else_edge = self.ite(f0, g0, h0)
                    result = self._mk(top, then_edge, else_edge)
                    cache.put(key, result)
                local[key] = result
        finally:
            if outermost:
                self._op_overlay = None
        return result ^ 1 if negate_out else result

    def not_(self, f: int) -> int:
        """Complement (free with complemented edges)."""
        return f ^ 1

    def maj(self, a: int, b: int, c: int) -> int:
        """Three-input majority ``ab + ac + bc`` — the paper's MAJ operator."""
        if self._reorder_threshold is not None:
            # Dynamic reordering: `a` and the OR intermediate are held
            # across kernel calls, so they must survive a mid-expression
            # growth-triggered sift.
            self.protect(a)
            try:
                left = self.protect(self.or_(b, c))
                try:
                    right = self.and_(b, c)
                finally:
                    self.unprotect(left)
            finally:
                self.unprotect(a)
            return self.ite(a, left, right)
        return self.ite(a, self.or_(b, c), self.and_(b, c))

    def and_many(self, edges: Iterable[int]) -> int:
        result = self.ONE
        for edge in edges:
            result = self.and_(result, edge)
        return result

    def or_many(self, edges: Iterable[int]) -> int:
        result = self.ZERO
        for edge in edges:
            result = self.or_(result, edge)
        return result

    def xor_many(self, edges: Iterable[int]) -> int:
        result = self.ZERO
        for edge in edges:
            result = self.xor(result, edge)
        return result

    # ------------------------------------------------------------------
    # Cofactors w.r.t. arbitrary variables
    # ------------------------------------------------------------------
    def cofactor(self, edge: int, level: int, value: bool) -> int:
        """Cofactor of ``edge`` w.r.t. the variable at ``level`` set to ``value``.

        Unlike :meth:`_cofactors` this works for variables anywhere in
        the order, rebuilding the BDD above ``level``.  Results are
        memoized in the shared operation cache, so repeated cofactors of
        the same function (the quantifier and compose patterns) are hits.
        """
        value = bool(value)
        cache = self._cache
        # Per-call overlay: guarantees every node is expanded at most
        # once per walk even when the shared cache is smaller than the
        # traversal (eviction mid-walk must not reintroduce the
        # exponential re-expansion the old local memo prevented).
        local: dict[int, int] = {}

        def walk(e: int) -> int:
            index = e >> 1
            node_level = self._level[index]
            if node_level > level:
                return e
            complement = e & 1
            if node_level == level:
                branch = self._high[index] if value else self._low[index]
                return branch ^ complement
            regular_e = e ^ complement
            cached = local.get(regular_e)
            if cached is None:
                key = (_OP_COFACTOR, regular_e, level, value)
                cached = cache.get(key)
                if cached is None:
                    cached = self._mk(
                        node_level, walk(self._high[index]), walk(self._low[index])
                    )
                    cache.put(key, cached)
                local[regular_e] = cached
            return cached ^ complement

        return walk(edge)

    def exists_at(self, edge: int, level: int) -> int:
        """Existentially quantify the variable at ``level`` out of ``edge``.

        Single-variable building block of :func:`repro.bdd.quantify.exists`;
        recursion results share the unified operation cache.
        """
        if not 0 <= level < len(self._names):
            raise BDDError(f"no variable at level {level}")
        cache = self._cache
        # Per-call overlay for the same reason as in :meth:`cofactor`.
        local: dict[int, int] = {}

        def walk(e: int) -> int:
            node_level = self._level[e >> 1]
            if node_level > level:
                return e
            if node_level == level:
                high, low = self._cofactors(e, level)
                return self.or_(high, low)
            cached = local.get(e)
            if cached is None:
                key = (_OP_EXISTS, e, level)
                cached = cache.get(key)
                if cached is None:
                    high, low = self._cofactors(e, node_level)
                    cached = self._mk(node_level, walk(high), walk(low))
                    cache.put(key, cached)
                local[e] = cached
            return cached

        return walk(edge)

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function ``g`` for the variable at ``level`` in ``f``."""
        high = self.cofactor(f, level, True)
        low = self.cofactor(f, level, False)
        return self.ite(g, high, low)

    # ------------------------------------------------------------------
    # Evaluation and inspection
    # ------------------------------------------------------------------
    def eval(self, edge: int, assignment: Mapping[str, object]) -> bool:
        """Evaluate ``edge`` under ``assignment`` (name -> truthy value)."""
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            name = self._names[self._level[index]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(f"assignment missing variable {name!r}") from None
            edge = self._high[index] if value else self._low[index]
            complement ^= edge & 1
            index = edge >> 1
        return not complement

    def eval_levels(self, edge: int, values: Sequence[int]) -> bool:
        """Evaluate ``edge``; ``values[level]`` gives each variable's value."""
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            edge = self._high[index] if values[self._level[index]] else self._low[index]
            complement ^= edge & 1
            index = edge >> 1
        return not complement

    def size(self, edge: int) -> int:
        """Number of internal nodes reachable from ``edge`` (0 for constants)."""
        return self.size_many([edge])

    def size_many(self, edges: Iterable[int]) -> int:
        """Internal nodes reachable from any edge in ``edges`` (shared once)."""
        seen: set[int] = set()
        stack = [e >> 1 for e in edges]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            stack.append(self._high[index] >> 1)
            stack.append(self._low[index] >> 1)
        return len(seen)

    def support_levels(self, edge: int) -> set[int]:
        """Set of variable levels ``edge`` depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [edge >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            levels.add(self._level[index])
            stack.append(self._high[index] >> 1)
            stack.append(self._low[index] >> 1)
        return levels

    def support(self, edge: int) -> set[str]:
        """Set of variable names ``edge`` depends on."""
        return {self._names[level] for level in self.support_levels(edge)}

    def nodes_reachable(self, edges: Iterable[int]) -> list[int]:
        """Internal node ids reachable from ``edges`` in topological order
        (parents before children)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(index: int) -> None:
            if index == 0 or index in seen:
                return
            seen.add(index)
            order.append(index)
            visit(self._high[index] >> 1)
            visit(self._low[index] >> 1)

        roots = [e >> 1 for e in edges]
        for root in roots:
            visit(root)
        return order

    def count_sat(self, edge: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (default: all declared variables)."""
        if num_vars is None:
            num_vars = len(self._names)
        cache: dict[int, int] = {}

        def node_level(index: int) -> int:
            return min(self._level[index], num_vars)

        def count_node(index: int) -> int:
            """Satisfying count of node ``index`` (regular polarity) over
            the variables at levels ``[level(index), num_vars)``."""
            if index == 0:
                return 1
            cached = cache.get(index)
            if cached is not None:
                return cached
            level = self._level[index]
            result = 0
            for child in (self._high[index], self._low[index]):
                child_index = child >> 1
                child_level = node_level(child_index)
                child_count = count_node(child_index)
                if child & 1:
                    child_count = (1 << (num_vars - child_level)) - child_count
                result += child_count << (child_level - level - 1)
            cache[index] = result
            return result

        index = edge >> 1
        level = node_level(index)
        sat = count_node(index)
        if edge & 1:
            sat = (1 << (num_vars - level)) - sat
        return sat << level

    def pick_assignment(self, edge: int) -> dict[str, bool] | None:
        """One satisfying assignment of ``edge`` or ``None`` if unsat.

        Variables not on the chosen path are omitted (don't-cares).
        """
        if edge == self.ZERO:
            return None
        assignment: dict[str, bool] = {}
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            name = self._names[self._level[index]]
            high, low = self._high[index], self._low[index]
            # Follow a branch that can still reach TRUE (i.e. is not the
            # constant FALSE once parity is folded in).
            high_value = high ^ complement
            if high_value != self.ZERO:
                assignment[name] = True
                edge = high
            else:
                assignment[name] = False
                edge = low
            complement ^= edge & 1
            index = edge >> 1
        return assignment

    def truth_table(self, edge: int, names: Sequence[str] | None = None) -> int:
        """Truth table of ``edge`` as an int bitmask.

        Bit ``i`` holds the function value when the j-th name in
        ``names`` takes bit j of i (LSB-first).  Only intended for small
        supports (<= 20 variables).
        """
        if names is None:
            names = sorted(self.support(edge), key=self.level_of)
        num = len(names)
        if num > 20:
            raise BDDError("truth_table limited to 20 variables")
        table = 0
        assignment: dict[str, bool] = {}
        for row in range(1 << num):
            for j, name in enumerate(names):
                assignment[name] = bool(row >> j & 1)
            if self.eval(edge, assignment):
                table |= 1 << row
        return table

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def cube(self, literals: Mapping[str, object]) -> int:
        """Conjunction of literals: name -> phase (truthy = positive)."""
        result = self.ONE
        for name, phase in literals.items():
            literal = self.var(name)
            result = self.and_(result, literal if phase else literal ^ 1)
        return result

    def from_truth_table(self, table: int, names: Sequence[str]) -> int:
        """Build the function whose truth table (LSB-first over ``names``)
        is the bitmask ``table``."""
        minterms = []
        for row in range(1 << len(names)):
            if table >> row & 1:
                minterms.append(
                    self.cube({name: bool(row >> j & 1) for j, name in enumerate(names)})
                )
        return self.or_many(minterms)

    def from_expr(self, text: str) -> int:
        """Build a function from a Python-syntax Boolean expression.

        Supported operators: ``&`` (AND), ``|`` (OR), ``^`` (XOR),
        ``~`` (NOT), integer constants 0/1, and declared variable names.
        Undeclared names are added to the order on first use.
        """
        tree = ast.parse(text, mode="eval")

        def build(node: ast.AST) -> int:
            if isinstance(node, ast.Expression):
                return build(node.body)
            if isinstance(node, ast.BinOp):
                left = build(node.left)
                right = build(node.right)
                if isinstance(node.op, ast.BitAnd):
                    return self.and_(left, right)
                if isinstance(node.op, ast.BitOr):
                    return self.or_(left, right)
                if isinstance(node.op, ast.BitXor):
                    return self.xor(left, right)
                raise BDDError(f"unsupported operator {node.op!r}")
            if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
                return build(node.operand) ^ 1
            if isinstance(node, ast.Name):
                if node.id not in self._level_by_name:
                    self.add_var(node.id)
                return self.var(node.id)
            if isinstance(node, ast.Constant):
                if node.value in (0, False):
                    return self.ZERO
                if node.value in (1, True):
                    return self.ONE
            raise BDDError(f"unsupported expression element {node!r}")

        return build(tree)

    # ------------------------------------------------------------------
    # Flat-array export / import (the shared-memory arena substrate)
    # ------------------------------------------------------------------
    def export_arrays(
        self, roots: Mapping[str, int]
    ) -> tuple[tuple[str, ...], "array", "array", "array", dict[str, int]]:
        """Snapshot the cones of ``roots`` as compact parallel arrays.

        Returns ``(var_names, levels, highs, lows, root_edges)`` where
        the three ``array('q')`` columns describe a renumbered node
        store: index 0 is the terminal, and every node's children have
        *larger* indices than the node itself (topological order), so
        :meth:`import_cone` can rebuild bottom-up without recursion
        bookkeeping.  Edges keep the ``(index << 1) | complement``
        encoding.  The snapshot is self-contained and position-
        independent — exactly what :class:`repro.bdd.arena.BddArena`
        serializes into shared memory.
        """
        order = self.nodes_reachable(roots.values())
        index_map = {0: 0}
        for new_index, old_index in enumerate(order, start=1):
            index_map[old_index] = new_index

        def map_edge(edge: int) -> int:
            return (index_map[edge >> 1] << 1) | (edge & 1)

        levels = array("q", [TERMINAL_LEVEL])
        highs = array("q", [0])
        lows = array("q", [0])
        for old_index in order:
            levels.append(self._level[old_index])
            highs.append(map_edge(self._high[old_index]))
            lows.append(map_edge(self._low[old_index]))
        return (
            tuple(self._names),
            levels,
            highs,
            lows,
            {key: map_edge(edge) for key, edge in roots.items()},
        )

    def import_cone(
        self,
        levels: Sequence[int],
        highs: Sequence[int],
        lows: Sequence[int],
        edge: int,
        level_map: Mapping[int, int],
        memo: dict[int, int] | None = None,
    ) -> int:
        """Rebuild the cone of ``edge`` from an :meth:`export_arrays`
        snapshot into *this* manager; returns the rebuilt edge.

        ``level_map`` translates snapshot levels to this manager's
        levels (the relative order of the mapped variables must match
        the snapshot's, or the rebuilt store would violate ordering).
        ``memo`` maps snapshot node index -> rebuilt edge; passing the
        same dict across calls makes repeated imports copy-on-miss —
        cones already pulled in (including shared subfunctions) cost
        one dict lookup.  The rebuild goes straight through the unique
        table (:meth:`_mk`), never the operation cache, so importing a
        cone perturbs no memoized counters.
        """
        if memo is None:
            memo = {}

        def walk(e: int) -> int:
            index = e >> 1
            if index == 0:
                return self.ONE ^ (e & 1)
            rebuilt = memo.get(index)
            if rebuilt is None:
                rebuilt = self._mk(
                    level_map[levels[index]], walk(highs[index]), walk(lows[index])
                )
                memo[index] = rebuilt
            return rebuilt ^ (e & 1)

        return walk(edge)

    # ------------------------------------------------------------------
    # Transfer / iteration helpers
    # ------------------------------------------------------------------
    def transfer(self, edge: int, target: "BDD") -> int:
        """Rebuild ``edge`` inside ``target``.

        The target manager may use a different variable order; missing
        variables are declared on demand.  Cost grows with the size of
        the *result*, which can exceed the source size when the orders
        differ substantially.
        """
        for name in self.support(edge):
            if name not in target._level_by_name:
                target.add_var(name)

        cache: dict[int, int] = {}

        def walk(e: int) -> int:
            complement = e & 1
            index = e >> 1
            if index == 0:
                return target.ONE ^ complement
            cached = cache.get(index)
            if cached is None:
                name = self._names[self._level[index]]
                high = walk(self._high[index])
                low = walk(self._low[index])
                cached = target.ite(target.var(name), high, low)
                cache[index] = cached
            return cached ^ complement

        return walk(edge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BDD vars={len(self._names)} live={self.live_nodes()} "
            f"created={self._created}>"
        )


def maj3(values: Sequence[object]) -> bool:
    """Python-level 3-input majority, used by tests and evaluators."""
    a, b, c = (bool(v) for v in values)
    return (a and b) or (a and c) or (b and c)
