"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the central substrate of the BDS-MAJ reproduction.  The design
follows the classic Brace/Rudell/Bryant BDD package (DAC 1990, the
paper's reference [19]):

* nodes live in a shared store and are identified by integer indices;
* an *edge* (the public handle for a Boolean function) is an integer
  ``(node_index << 1) | complement_bit``;
* complement attributes are allowed only on 0-edges (the paper's
  canonical-form condition (iii) in Section II.B), which makes the
  representation canonical: two functions are equal iff their edge
  handles are equal;
* all operators are implemented on top of a memoized ``ite``.

The terminal node has index 0 and represents constant TRUE; its
complemented edge represents constant FALSE.

Variables are identified by *level* (position in the global variable
order, 0 = topmost).  Names are kept in a side table so that networks
and tests can speak in terms of signal names.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping, Sequence

#: Level assigned to the terminal node; deeper than any real variable.
TERMINAL_LEVEL = 1 << 30

#: Default bound on the number of memoized operation results per manager.
DEFAULT_CACHE_CAPACITY = 1 << 18

# Operation tags for the unified cache keys.  Small ints keep the key
# tuples compact and hash deterministically (no string hashing, so the
# cache behaves identically across processes regardless of
# PYTHONHASHSEED — a requirement of the deterministic batch service).
_OP_ITE = 0
_OP_COFACTOR = 1
_OP_EXISTS = 2


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variable, bad edge...)."""


#: Eviction policies :class:`OperationCache` understands.
CACHE_POLICIES = ("fifo", "lru")


class OperationCache:
    """Size-bounded memo table shared by every BDD operator.

    One keyed dict serves ``ite``, ``cofactor`` and ``exists``; entries
    are ``(op_tag, operands...) -> result_edge``.  When the bound is
    reached the oldest entry is evicted.  Two policies are supported:

    * ``"fifo"`` (default) — oldest *inserted* entry goes first.  Both
      policies are deterministic for a given operation sequence, but
      FIFO never reorders entries, so it is the safest baseline and the
      one all published counters were measured with.
    * ``"lru"`` — a cache hit refreshes the entry's recency, so the
      oldest *used* entry goes first.  Still fully deterministic (the
      recency order is a pure function of the operation sequence), just
      a different — often higher-hit-rate — eviction order under
      capacity pressure.
    """

    __slots__ = ("capacity", "policy", "hits", "misses", "evictions", "_data")

    def __init__(
        self, capacity: int = DEFAULT_CACHE_CAPACITY, policy: str = "fifo"
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r} (known: {CACHE_POLICIES})"
            )
        self.capacity = capacity
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict[tuple, int] = {}

    def get(self, key: tuple) -> int | None:
        result = self._data.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.policy == "lru":
                # Refresh recency: move the entry to the back of the
                # insertion order, which `put` evicts from the front of.
                del self._data[key]
                self._data[key] = result
        return result

    def put(self, key: tuple, value: int) -> None:
        data = self._data
        if key not in data and len(data) >= self.capacity:
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._data.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int | float]:
        result = combine_cache_stats(
            [{"hits": self.hits, "misses": self.misses, "evictions": self.evictions}]
        )
        result["entries"] = len(self._data)
        result["capacity"] = self.capacity
        result["policy"] = self.policy
        return result


def combine_cache_stats(
    stats: Iterable[Mapping[str, int | float]],
) -> dict[str, int | float]:
    """Sum hits/misses/evictions over ``stats`` dicts and derive the
    hit rate — the one place that aggregation rule lives (the trace,
    batch and table layers all report through it)."""
    hits = misses = evictions = 0
    for entry in stats:
        hits += int(entry.get("hits", 0))
        misses += int(entry.get("misses", 0))
        evictions += int(entry.get("evictions", 0))
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": evictions,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


class BDD:
    """A reduced ordered BDD manager with complemented 0-edges.

    Typical use::

        mgr = BDD(["a", "b", "c"])
        a, b, c = (mgr.var(n) for n in "abc")
        f = mgr.or_(mgr.and_(a, b), mgr.and_(c, mgr.xor(a, b)))
        mgr.eval(f, {"a": 1, "b": 0, "c": 1})

    Edges returned by this class are plain ``int`` handles; they are only
    meaningful together with the manager that produced them.
    """

    #: Edge handle of constant TRUE.
    ONE = 0
    #: Edge handle of constant FALSE.
    ZERO = 1

    def __init__(
        self,
        var_names: Iterable[str] = (),
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        cache_policy: str = "fifo",
    ) -> None:
        # Node store (parallel arrays, index = node id).  Node 0 is the
        # terminal; its high/low entries are never read.
        self._level: list[int] = [TERMINAL_LEVEL]
        self._high: list[int] = [0]
        self._low: list[int] = [0]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._cache = OperationCache(cache_capacity, cache_policy)
        # Per-top-level-call memo overlay for ite (see the comment in
        # :meth:`cofactor`): None outside a call, a dict inside one.
        self._ite_overlay: dict[tuple, int] | None = None
        self._names: list[str] = []
        self._level_by_name: dict[str, int] = {}
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Operation-cache introspection
    # ------------------------------------------------------------------
    @property
    def op_cache(self) -> OperationCache:
        """The unified operation cache (ite/cofactor/exists share it)."""
        return self._cache

    def cache_stats(self) -> dict[str, int | float]:
        """Hit/miss/eviction counters and occupancy of the op cache."""
        return self._cache.stats()

    def clear_caches(self) -> None:
        """Drop memoized operation results (the unique table stays)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Append variable ``name`` at the bottom of the order; return its level."""
        if name in self._level_by_name:
            raise BDDError(f"variable {name!r} already declared")
        level = len(self._names)
        self._names.append(name)
        self._level_by_name[name] = level
        return level

    @property
    def var_names(self) -> tuple[str, ...]:
        """Variable names in order (index = level)."""
        return tuple(self._names)

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def level_of(self, name: str) -> int:
        try:
            return self._level_by_name[name]
        except KeyError:
            raise BDDError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        return self._names[level]

    def var(self, name: str) -> int:
        """Edge for the positive literal of variable ``name``."""
        return self.var_at(self.level_of(name))

    def var_at(self, level: int) -> int:
        """Edge for the positive literal of the variable at ``level``."""
        if not 0 <= level < len(self._names):
            raise BDDError(f"no variable at level {level}")
        return self._mk(level, self.ONE, self.ZERO)

    # ------------------------------------------------------------------
    # Node level / structure accessors
    # ------------------------------------------------------------------
    @staticmethod
    def node_index(edge: int) -> int:
        """Node id referenced by ``edge`` (complement bit stripped)."""
        return edge >> 1

    @staticmethod
    def is_complemented(edge: int) -> bool:
        return bool(edge & 1)

    @staticmethod
    def regular(edge: int) -> int:
        """``edge`` with the complement attribute cleared."""
        return edge & ~1

    def is_constant(self, edge: int) -> bool:
        return edge >> 1 == 0

    def level_of_edge(self, edge: int) -> int:
        """Level of the node referenced by ``edge`` (terminal = huge)."""
        return self._level[edge >> 1]

    def top_var_name(self, edge: int) -> str:
        """Name of the top variable of ``edge`` (must not be constant)."""
        if self.is_constant(edge):
            raise BDDError("constant edge has no top variable")
        return self._names[self._level[edge >> 1]]

    def node_fields(self, index: int) -> tuple[int, int, int]:
        """``(level, high_edge, low_edge)`` of node ``index``."""
        return self._level[index], self._high[index], self._low[index]

    def num_nodes(self) -> int:
        """Total nodes ever created in this manager (incl. terminal)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, high: int, low: int) -> int:
        """Find-or-create the node ``(level, high, low)`` keeping the
        canonical form: no redundant node, high edge always regular."""
        if high == low:
            return high
        negated = high & 1
        if negated:
            high ^= 1
            low ^= 1
        key = (level, high, low)
        index = self._unique.get(key)
        if index is None:
            index = len(self._level)
            self._level.append(level)
            self._high.append(high)
            self._low.append(low)
            self._unique[key] = index
        edge = index << 1
        return edge ^ 1 if negated else edge

    def _cofactors(self, edge: int, level: int) -> tuple[int, int]:
        """Shannon cofactors of ``edge`` w.r.t. the variable at ``level``.

        ``level`` must be <= the edge's top level; if the edge does not
        depend on that variable both cofactors are the edge itself.
        """
        index = edge >> 1
        if self._level[index] != level:
            return edge, edge
        high = self._high[index]
        low = self._low[index]
        if edge & 1:
            return high ^ 1, low ^ 1
        return high, low

    # ------------------------------------------------------------------
    # ITE and derived operators
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + f'·h`` (the universal BDD operator)."""
        # Terminal and identity simplifications (Brace/Rudell/Bryant).
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if g == f:
            g = self.ONE
        elif g == f ^ 1:
            g = self.ZERO
        if h == f:
            h = self.ZERO
        elif h == f ^ 1:
            h = self.ONE
        if g == self.ONE and h == self.ZERO:
            return f
        if g == self.ZERO and h == self.ONE:
            return f ^ 1
        if g == h:
            return g
        # Standard-triple normalization (Brace/Rudell/Bryant): when one
        # operand is constant or the complement of another, the call is
        # a commutative two-operand gate — rewrite it so the operand
        # with the smaller node index drives, collapsing equivalent
        # calls onto a single cache entry:
        #   ITE(f,1,h) = ITE(h,1,f)          (OR commutes)
        #   ITE(f,0,h) = ITE(h',0,f')        (NOR-shape commutes)
        #   ITE(f,g,0) = ITE(g,f,0)          (AND commutes)
        #   ITE(f,g,1) = ITE(g',f',1)        (implication contraposes)
        #   ITE(f,g,g') = ITE(g,f,f')        (XNOR commutes)
        if g == self.ONE:
            if (h >> 1) < (f >> 1):
                f, h = h, f
        elif g == self.ZERO:
            if (h >> 1) < (f >> 1):
                f, h = h ^ 1, f ^ 1
        elif h == self.ZERO:
            if (g >> 1) < (f >> 1):
                f, g = g, f
        elif h == self.ONE:
            if (g >> 1) < (f >> 1):
                f, g = g ^ 1, f ^ 1
        elif h == g ^ 1 and (g >> 1) < (f >> 1):
            f, g, h = g, f, f ^ 1
        # Canonicalize: predicate regular, then then-branch regular.
        if f & 1:
            f ^= 1
            g, h = h, g
        negate_out = False
        if g & 1:
            g ^= 1
            h ^= 1
            negate_out = True
        # Per-call overlay: even if the shared FIFO cache is smaller
        # than this call's working set and evicts subresults mid-
        # recursion, every distinct subtriple is still computed at most
        # once per top-level call (the old unbounded cache's guarantee).
        key = (_OP_ITE, f, g, h)
        local = self._ite_overlay
        outermost = local is None
        if outermost:
            local = self._ite_overlay = {}
        try:
            result = local.get(key)
            if result is None:
                cache = self._cache
                result = cache.get(key)
                if result is None:
                    levels = self._level
                    top = min(levels[f >> 1], levels[g >> 1], levels[h >> 1])
                    f1, f0 = self._cofactors(f, top)
                    g1, g0 = self._cofactors(g, top)
                    h1, h0 = self._cofactors(h, top)
                    then_edge = self.ite(f1, g1, h1)
                    else_edge = self.ite(f0, g0, h0)
                    result = self._mk(top, then_edge, else_edge)
                    cache.put(key, result)
                local[key] = result
        finally:
            if outermost:
                self._ite_overlay = None
        return result ^ 1 if negate_out else result

    def not_(self, f: int) -> int:
        """Complement (free with complemented edges)."""
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.ONE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, g ^ 1, g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, g ^ 1)

    def nand(self, f: int, g: int) -> int:
        return self.and_(f, g) ^ 1

    def nor(self, f: int, g: int) -> int:
        return self.or_(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.ONE)

    def maj(self, a: int, b: int, c: int) -> int:
        """Three-input majority ``ab + ac + bc`` — the paper's MAJ operator."""
        return self.ite(a, self.or_(b, c), self.and_(b, c))

    def and_many(self, edges: Iterable[int]) -> int:
        result = self.ONE
        for edge in edges:
            result = self.and_(result, edge)
        return result

    def or_many(self, edges: Iterable[int]) -> int:
        result = self.ZERO
        for edge in edges:
            result = self.or_(result, edge)
        return result

    def xor_many(self, edges: Iterable[int]) -> int:
        result = self.ZERO
        for edge in edges:
            result = self.xor(result, edge)
        return result

    # ------------------------------------------------------------------
    # Cofactors w.r.t. arbitrary variables
    # ------------------------------------------------------------------
    def cofactor(self, edge: int, level: int, value: bool) -> int:
        """Cofactor of ``edge`` w.r.t. the variable at ``level`` set to ``value``.

        Unlike :meth:`_cofactors` this works for variables anywhere in
        the order, rebuilding the BDD above ``level``.  Results are
        memoized in the shared operation cache, so repeated cofactors of
        the same function (the quantifier and compose patterns) are hits.
        """
        value = bool(value)
        cache = self._cache
        # Per-call overlay: guarantees every node is expanded at most
        # once per walk even when the shared cache is smaller than the
        # traversal (FIFO eviction mid-walk must not reintroduce the
        # exponential re-expansion the old local memo prevented).
        local: dict[int, int] = {}

        def walk(e: int) -> int:
            index = e >> 1
            node_level = self._level[index]
            if node_level > level:
                return e
            complement = e & 1
            if node_level == level:
                branch = self._high[index] if value else self._low[index]
                return branch ^ complement
            regular_e = e ^ complement
            cached = local.get(regular_e)
            if cached is None:
                key = (_OP_COFACTOR, regular_e, level, value)
                cached = cache.get(key)
                if cached is None:
                    cached = self._mk(
                        node_level, walk(self._high[index]), walk(self._low[index])
                    )
                    cache.put(key, cached)
                local[regular_e] = cached
            return cached ^ complement

        return walk(edge)

    def exists_at(self, edge: int, level: int) -> int:
        """Existentially quantify the variable at ``level`` out of ``edge``.

        Single-variable building block of :func:`repro.bdd.quantify.exists`;
        recursion results share the unified operation cache.
        """
        if not 0 <= level < len(self._names):
            raise BDDError(f"no variable at level {level}")
        cache = self._cache
        # Per-call overlay for the same reason as in :meth:`cofactor`.
        local: dict[int, int] = {}

        def walk(e: int) -> int:
            node_level = self._level[e >> 1]
            if node_level > level:
                return e
            if node_level == level:
                high, low = self._cofactors(e, level)
                return self.or_(high, low)
            cached = local.get(e)
            if cached is None:
                key = (_OP_EXISTS, e, level)
                cached = cache.get(key)
                if cached is None:
                    high, low = self._cofactors(e, node_level)
                    cached = self._mk(node_level, walk(high), walk(low))
                    cache.put(key, cached)
                local[e] = cached
            return cached

        return walk(edge)

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function ``g`` for the variable at ``level`` in ``f``."""
        high = self.cofactor(f, level, True)
        low = self.cofactor(f, level, False)
        return self.ite(g, high, low)

    # ------------------------------------------------------------------
    # Evaluation and inspection
    # ------------------------------------------------------------------
    def eval(self, edge: int, assignment: Mapping[str, object]) -> bool:
        """Evaluate ``edge`` under ``assignment`` (name -> truthy value)."""
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            name = self._names[self._level[index]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(f"assignment missing variable {name!r}") from None
            edge = self._high[index] if value else self._low[index]
            complement ^= edge & 1
            index = edge >> 1
        return not complement

    def eval_levels(self, edge: int, values: Sequence[int]) -> bool:
        """Evaluate ``edge``; ``values[level]`` gives each variable's value."""
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            edge = self._high[index] if values[self._level[index]] else self._low[index]
            complement ^= edge & 1
            index = edge >> 1
        return not complement

    def size(self, edge: int) -> int:
        """Number of internal nodes reachable from ``edge`` (0 for constants)."""
        return self.size_many([edge])

    def size_many(self, edges: Iterable[int]) -> int:
        """Internal nodes reachable from any edge in ``edges`` (shared once)."""
        seen: set[int] = set()
        stack = [e >> 1 for e in edges]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            stack.append(self._high[index] >> 1)
            stack.append(self._low[index] >> 1)
        return len(seen)

    def support_levels(self, edge: int) -> set[int]:
        """Set of variable levels ``edge`` depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [edge >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            levels.add(self._level[index])
            stack.append(self._high[index] >> 1)
            stack.append(self._low[index] >> 1)
        return levels

    def support(self, edge: int) -> set[str]:
        """Set of variable names ``edge`` depends on."""
        return {self._names[level] for level in self.support_levels(edge)}

    def nodes_reachable(self, edges: Iterable[int]) -> list[int]:
        """Internal node ids reachable from ``edges`` in topological order
        (parents before children)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(index: int) -> None:
            if index == 0 or index in seen:
                return
            seen.add(index)
            order.append(index)
            visit(self._high[index] >> 1)
            visit(self._low[index] >> 1)

        roots = [e >> 1 for e in edges]
        for root in roots:
            visit(root)
        return order

    def count_sat(self, edge: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (default: all declared variables)."""
        if num_vars is None:
            num_vars = len(self._names)
        cache: dict[int, int] = {}

        def node_level(index: int) -> int:
            return min(self._level[index], num_vars)

        def count_node(index: int) -> int:
            """Satisfying count of node ``index`` (regular polarity) over
            the variables at levels ``[level(index), num_vars)``."""
            if index == 0:
                return 1
            cached = cache.get(index)
            if cached is not None:
                return cached
            level = self._level[index]
            result = 0
            for child in (self._high[index], self._low[index]):
                child_index = child >> 1
                child_level = node_level(child_index)
                child_count = count_node(child_index)
                if child & 1:
                    child_count = (1 << (num_vars - child_level)) - child_count
                result += child_count << (child_level - level - 1)
            cache[index] = result
            return result

        index = edge >> 1
        level = node_level(index)
        sat = count_node(index)
        if edge & 1:
            sat = (1 << (num_vars - level)) - sat
        return sat << level

    def pick_assignment(self, edge: int) -> dict[str, bool] | None:
        """One satisfying assignment of ``edge`` or ``None`` if unsat.

        Variables not on the chosen path are omitted (don't-cares).
        """
        if edge == self.ZERO:
            return None
        assignment: dict[str, bool] = {}
        complement = edge & 1
        index = edge >> 1
        while index != 0:
            name = self._names[self._level[index]]
            high, low = self._high[index], self._low[index]
            # Follow a branch that can still reach TRUE (i.e. is not the
            # constant FALSE once parity is folded in).
            high_value = high ^ complement
            if high_value != self.ZERO:
                assignment[name] = True
                edge = high
            else:
                assignment[name] = False
                edge = low
            complement ^= edge & 1
            index = edge >> 1
        return assignment

    def truth_table(self, edge: int, names: Sequence[str] | None = None) -> int:
        """Truth table of ``edge`` as an int bitmask.

        Bit ``i`` holds the function value when the j-th name in
        ``names`` takes bit j of i (LSB-first).  Only intended for small
        supports (<= 20 variables).
        """
        if names is None:
            names = sorted(self.support(edge), key=self.level_of)
        num = len(names)
        if num > 20:
            raise BDDError("truth_table limited to 20 variables")
        table = 0
        assignment: dict[str, bool] = {}
        for row in range(1 << num):
            for j, name in enumerate(names):
                assignment[name] = bool(row >> j & 1)
            if self.eval(edge, assignment):
                table |= 1 << row
        return table

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def cube(self, literals: Mapping[str, object]) -> int:
        """Conjunction of literals: name -> phase (truthy = positive)."""
        result = self.ONE
        for name, phase in literals.items():
            literal = self.var(name)
            result = self.and_(result, literal if phase else literal ^ 1)
        return result

    def from_truth_table(self, table: int, names: Sequence[str]) -> int:
        """Build the function whose truth table (LSB-first over ``names``)
        is the bitmask ``table``."""
        minterms = []
        for row in range(1 << len(names)):
            if table >> row & 1:
                minterms.append(
                    self.cube({name: bool(row >> j & 1) for j, name in enumerate(names)})
                )
        return self.or_many(minterms)

    def from_expr(self, text: str) -> int:
        """Build a function from a Python-syntax Boolean expression.

        Supported operators: ``&`` (AND), ``|`` (OR), ``^`` (XOR),
        ``~`` (NOT), integer constants 0/1, and declared variable names.
        Undeclared names are added to the order on first use.
        """
        tree = ast.parse(text, mode="eval")

        def build(node: ast.AST) -> int:
            if isinstance(node, ast.Expression):
                return build(node.body)
            if isinstance(node, ast.BinOp):
                left = build(node.left)
                right = build(node.right)
                if isinstance(node.op, ast.BitAnd):
                    return self.and_(left, right)
                if isinstance(node.op, ast.BitOr):
                    return self.or_(left, right)
                if isinstance(node.op, ast.BitXor):
                    return self.xor(left, right)
                raise BDDError(f"unsupported operator {node.op!r}")
            if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
                return build(node.operand) ^ 1
            if isinstance(node, ast.Name):
                if node.id not in self._level_by_name:
                    self.add_var(node.id)
                return self.var(node.id)
            if isinstance(node, ast.Constant):
                if node.value in (0, False):
                    return self.ZERO
                if node.value in (1, True):
                    return self.ONE
            raise BDDError(f"unsupported expression element {node!r}")

        return build(tree)

    # ------------------------------------------------------------------
    # Transfer / iteration helpers
    # ------------------------------------------------------------------
    def transfer(self, edge: int, target: "BDD") -> int:
        """Rebuild ``edge`` inside ``target``.

        The target manager may use a different variable order; missing
        variables are declared on demand.  Cost grows with the size of
        the *result*, which can exceed the source size when the orders
        differ substantially.
        """
        for name in self.support(edge):
            if name not in target._level_by_name:
                target.add_var(name)

        cache: dict[int, int] = {}

        def walk(e: int) -> int:
            complement = e & 1
            index = e >> 1
            if index == 0:
                return target.ONE ^ complement
            cached = cache.get(index)
            if cached is None:
                name = self._names[self._level[index]]
                high = walk(self._high[index])
                low = walk(self._low[index])
                cached = target.ite(target.var(name), high, low)
                cache[index] = cached
            return cached ^ complement

        return walk(edge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BDD vars={len(self._names)} nodes={len(self._level)}>"


def maj3(values: Sequence[object]) -> bool:
    """Python-level 3-input majority, used by tests and evaluators."""
    a, b, c = (bool(v) for v in values)
    return (a and b) or (a and c) or (b and c)
